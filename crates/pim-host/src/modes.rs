//! The three experiment shapes of §5.
//!
//! * [`align_pairs`] — the S-dataset mode (Tables 2–4): each pair is a job,
//!   pairs are grouped into `rounds × ranks` batches, LPT-balanced over
//!   DPUs inside each batch. Most communication-heavy shape.
//! * [`all_vs_all`] — the 16S mode (Table 5): the whole dataset fits one
//!   MRAM, so it is **broadcast** once and each DPU gets a statically
//!   assigned, equally sized slice of the pair index space; score-only
//!   (no CIGAR is needed for phylogeny distances).
//! * [`align_sets`] — the PacBio consensus mode (Table 6): sets of reads
//!   are LPT-balanced over DPUs; each set's reads are stored once per DPU
//!   and aligned all-against-all; CIGARs are required.

use crate::dispatch::{
    execute_rounds, group_jobs, plan_rank, plan_rank_into, DispatchConfig, DispatchOutcome,
    DpuPlan, Engine, RankPlan,
};
use crate::encode::Encoder;
use crate::pipeline::{execute_pipelined_with, execute_rounds_pipelined, PipelineOptions};
use crate::report::ExecutionReport;
use dpu_kernel::layout::{JobBatchBuilder, JobResult, SeqRef};
use nw_core::seq::{DnaSeq, PackedSeq};
use pim_sim::{PimServer, SimError};

/// Run prebuilt rounds through the configured engine. Both engines return
/// bit-identical outcomes; only host wall-clock (and the presence of
/// pipeline metrics) differs.
fn run_engine(
    server: &mut PimServer,
    cfg: &DispatchConfig,
    rounds: Vec<Vec<RankPlan>>,
) -> Result<DispatchOutcome, SimError> {
    match cfg.engine {
        Engine::Lockstep => execute_rounds(server, &cfg.kernel, rounds, cfg.sim_threads),
        Engine::Pipelined { fifo_depth } => execute_rounds_pipelined(
            server,
            &cfg.kernel,
            rounds,
            &PipelineOptions {
                fifo_depth,
                sim_threads: cfg.sim_threads,
                ..Default::default()
            },
        ),
    }
}

/// Align a list of read pairs (S-dataset shape). Returns the report plus
/// per-pair results in input order.
pub fn align_pairs(
    server: &mut PimServer,
    cfg: &DispatchConfig,
    pairs: &[(DnaSeq, DnaSeq)],
) -> Result<(ExecutionReport, Vec<JobResult>), SimError> {
    let n_ranks = server.rank_count();
    let dpus = server.cfg().dpus_per_rank;
    let mram = server.cfg().dpu.mram_size;
    let pools = cfg.kernel.pool_cfg.pools;

    // On-the-fly 2-bit encode (§4.1.1).
    let mut encoder = Encoder::new(0xDA7A);
    let packed: Vec<(PackedSeq, PackedSeq)> = pairs
        .iter()
        .map(|(a, b)| (encoder.encode_seq(a), encoder.encode_seq(b)))
        .collect();
    let encode_seconds = encoder.stats().ascii_bytes as f64 / cfg.encode_rate;

    // Group into rounds x ranks balanced batches (eq.-6 workload units,
    // same model the per-rank LPT uses), then LPT within each.
    let workloads = crate::balance::pair_workloads(&packed, cfg.params.band);
    let rounds_n = cfg.rounds.max(1);
    let groups = group_jobs(&workloads, rounds_n * n_ranks);

    let mut outcome = match cfg.engine {
        Engine::Lockstep => {
            let mut rounds = Vec::with_capacity(rounds_n);
            for k in 0..rounds_n {
                let mut plans = Vec::with_capacity(n_ranks);
                for r in 0..n_ranks {
                    let ids = &groups[k * n_ranks + r];
                    let jobs: Vec<(PackedSeq, PackedSeq)> =
                        ids.iter().map(|&i| packed[i].clone()).collect();
                    plans.push(plan_rank(&jobs, ids, dpus, cfg.params, pools, mram)?);
                }
                rounds.push(plans);
            }
            execute_rounds(server, &cfg.kernel, rounds, cfg.sim_threads)?
        }
        Engine::Pipelined { fifo_depth } => {
            // Streaming planner: round k+1's MRAM images are serialized
            // (from recycled buffers) while round k executes.
            let opts = PipelineOptions {
                fifo_depth,
                sim_threads: cfg.sim_threads,
                ..Default::default()
            };
            execute_pipelined_with(server, &cfg.kernel, &opts, rounds_n, |k, r, pool| {
                let ids = &groups[k * n_ranks + r];
                let jobs: Vec<(PackedSeq, PackedSeq)> =
                    ids.iter().map(|&i| packed[i].clone()).collect();
                plan_rank_into(&jobs, ids, dpus, cfg.params, pools, mram, pool)
            })?
        }
    };
    let results = scatter(std::mem::take(&mut outcome.results), pairs.len());
    let mut report = make_report("pairs", encode_seconds, &results, outcome);
    if cfg.audit {
        // Host-side end-to-end audit of the strict path: every returned
        // alignment is validated against its sequences and rescored. On a
        // healthy server this is a (counted) no-op; the counts make "zero
        // wrong results delivered" checkable from the report.
        for (pair, res) in packed.iter().zip(&results) {
            report.fault.audit_checked += 1;
            if !crate::recovery::audit_ok(pair, res, &cfg.params.scheme) {
                report.fault.audit_failures += 1;
            }
        }
    }
    Ok((report, results))
}

/// All-vs-all score-only comparison over one sequence set (16S shape).
/// Returns the report plus, for each pair `(i, j)` with `i < j` in
/// lexicographic order, the score result.
pub fn all_vs_all(
    server: &mut PimServer,
    cfg: &DispatchConfig,
    seqs: &[DnaSeq],
) -> Result<(ExecutionReport, Vec<JobResult>), SimError> {
    let n_ranks = server.rank_count();
    let dpus = server.cfg().dpus_per_rank;
    let mram = server.cfg().dpu.mram_size;
    let pools = cfg.kernel.pool_cfg.pools;
    let mut params = cfg.params;
    params.score_only = true; // §5.3: scores without CIGARs

    // Build the broadcast arena in the top half of MRAM.
    let arena_base = mram / 2;
    let mut encoder = Encoder::new(0x165);
    let mut arena_bytes: Vec<u8> = Vec::new();
    let mut refs: Vec<SeqRef> = Vec::with_capacity(seqs.len());
    for s in seqs {
        let packed = encoder.encode_seq(s);
        let off = arena_base + arena_bytes.len();
        refs.push(SeqRef {
            off: off as u32,
            len: packed.len() as u32,
        });
        arena_bytes.extend_from_slice(packed.as_bytes());
        while !arena_bytes.len().is_multiple_of(8) {
            arena_bytes.push(0);
        }
    }
    if arena_base + arena_bytes.len() > mram {
        return Err(SimError::MramOutOfBounds {
            offset: arena_base,
            len: arena_bytes.len(),
            mram_size: mram,
        });
    }
    let encode_seconds = encoder.stats().ascii_bytes as f64 / cfg.encode_rate;
    server.broadcast_to_mram(arena_base, &arena_bytes)?;

    // Static split: equal pair counts per DPU (§5.3).
    let n = seqs.len();
    let mut pair_ids: Vec<(usize, usize)> = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            pair_ids.push((i, j));
        }
    }
    let total_dpus = n_ranks * dpus;
    let per_dpu = pair_ids.len().div_ceil(total_dpus.max(1)).max(1);
    let mut plans: Vec<RankPlan> = Vec::with_capacity(n_ranks);
    for r in 0..n_ranks {
        let mut rank_plan = RankPlan {
            params: Some(params),
            ..Default::default()
        };
        for d in 0..dpus {
            let dpu_idx = r * dpus + d;
            let lo = (dpu_idx * per_dpu).min(pair_ids.len());
            let hi = ((dpu_idx + 1) * per_dpu).min(pair_ids.len());
            if lo >= hi {
                rank_plan.dpus.push(None);
                continue;
            }
            let mut builder = JobBatchBuilder::new(params, pools);
            builder.set_footprint_limit(arena_base);
            let mut job_ids = Vec::with_capacity(hi - lo);
            for (offset, &(i, j)) in pair_ids[lo..hi].iter().enumerate() {
                builder.add_pair_external(refs[i], refs[j]);
                job_ids.push(lo + offset);
            }
            rank_plan.dpus.push(Some(DpuPlan {
                job_ids,
                batch: builder.build(mram)?,
            }));
        }
        plans.push(rank_plan);
    }

    let mut outcome = run_engine(server, cfg, vec![plans])?;
    // The broadcast is one bus transfer, not per-DPU (§5.3's "broadcast
    // mechanism ... limits the data transfer footprint").
    outcome.bytes_in += arena_bytes.len() as u64;
    outcome.transfer_seconds += arena_bytes.len() as f64 / server.cfg().host_bandwidth;
    let results = scatter(std::mem::take(&mut outcome.results), pair_ids.len());
    let report = make_report("all-vs-all", encode_seconds, &results, outcome);
    Ok((report, results))
}

/// A set of reads to align all-against-all (PacBio shape).
pub type ReadSetSeqs = Vec<DnaSeq>;

/// Align sets of reads (PacBio consensus shape). Returns the report plus
/// per-set, per-pair results: `results[s]` holds set `s`'s pairs in
/// `(i, j), i < j` order.
pub fn align_sets(
    server: &mut PimServer,
    cfg: &DispatchConfig,
    sets: &[ReadSetSeqs],
) -> Result<(ExecutionReport, Vec<Vec<JobResult>>), SimError> {
    let n_ranks = server.rank_count();
    let dpus = server.cfg().dpus_per_rank;
    let mram = server.cfg().dpu.mram_size;
    let pools = cfg.kernel.pool_cfg.pools;
    let band = cfg.params.band;

    // Encode each read once.
    let mut encoder = Encoder::new(0x9AC);
    let packed_sets: Vec<Vec<PackedSeq>> = sets
        .iter()
        .map(|reads| reads.iter().map(|r| encoder.encode_seq(r)).collect())
        .collect();
    let encode_seconds = encoder.stats().ascii_bytes as f64 / cfg.encode_rate;

    // LPT whole sets over all DPUs (a set's pairs share its reads, so a set
    // never splits across DPUs — the locality §5.4 relies on).
    let set_workloads: Vec<u64> = packed_sets
        .iter()
        .map(|reads| {
            let mut wl = 0u64;
            for i in 0..reads.len() {
                for j in (i + 1)..reads.len() {
                    wl += crate::balance::workload(reads[i].len(), reads[j].len(), band);
                }
            }
            wl
        })
        .collect();
    let total_dpus = n_ranks * dpus;
    let assignment = crate::balance::lpt_assign(&set_workloads, total_dpus);

    // Global pair ids: sets in order, pairs in (i, j) order within a set.
    let mut set_pair_base: Vec<usize> = Vec::with_capacity(sets.len());
    let mut next = 0usize;
    for reads in &packed_sets {
        set_pair_base.push(next);
        next += reads.len() * (reads.len().saturating_sub(1)) / 2;
    }
    let total_pairs = next;

    let mut plans: Vec<RankPlan> = Vec::with_capacity(n_ranks);
    for r in 0..n_ranks {
        let mut rank_plan = RankPlan {
            params: Some(cfg.params),
            ..Default::default()
        };
        for d in 0..dpus {
            let bin = &assignment[r * dpus + d];
            if bin.is_empty() {
                rank_plan.dpus.push(None);
                continue;
            }
            let mut builder = JobBatchBuilder::new(cfg.params, pools);
            let mut job_ids = Vec::new();
            for &set_idx in bin {
                let reads = &packed_sets[set_idx];
                let arena_ids: Vec<usize> =
                    reads.iter().map(|p| builder.add_seq(p.clone())).collect();
                let mut pair_no = 0usize;
                for i in 0..reads.len() {
                    for j in (i + 1)..reads.len() {
                        builder.add_pair_idx(arena_ids[i], arena_ids[j]);
                        job_ids.push(set_pair_base[set_idx] + pair_no);
                        pair_no += 1;
                    }
                }
            }
            rank_plan.dpus.push(Some(DpuPlan {
                job_ids,
                batch: builder.build(mram)?,
            }));
        }
        plans.push(rank_plan);
    }

    let mut outcome = run_engine(server, cfg, vec![plans])?;
    let flat = scatter(std::mem::take(&mut outcome.results), total_pairs);
    let report = make_report("sets", encode_seconds, &flat, outcome);

    // Regroup per set.
    let mut grouped: Vec<Vec<JobResult>> = Vec::with_capacity(sets.len());
    let mut it = flat.into_iter();
    for reads in &packed_sets {
        let count = reads.len() * (reads.len().saturating_sub(1)) / 2;
        grouped.push(it.by_ref().take(count).collect());
    }
    Ok((report, grouped))
}

/// Place `(id, result)` pairs into a dense, input-ordered vector. A
/// missing job id is a dispatch bug and panics — complete delivery is the
/// recovery layer's invariant. Interrupted runs, which legitimately leave
/// jobs unfinished, go through [`scatter_partial`] instead.
pub(crate) fn scatter(tagged: Vec<(usize, JobResult)>, len: usize) -> Vec<JobResult> {
    let mut slots = scatter_slots(tagged, len);
    slots
        .drain(..)
        .enumerate()
        .map(|(id, s)| s.unwrap_or_else(|| panic!("job id {id} missing")))
        .collect()
}

/// [`scatter`] for a run that was cut short: job ids with no result fill
/// their slot with [`JobStatus::Cancelled`] so the caller still gets one
/// entry per input, each either a real result or an explicit cancellation.
pub(crate) fn scatter_partial(tagged: Vec<(usize, JobResult)>, len: usize) -> Vec<JobResult> {
    let mut slots = scatter_slots(tagged, len);
    slots
        .drain(..)
        .map(|s| {
            s.unwrap_or(JobResult {
                status: dpu_kernel::layout::JobStatus::Cancelled,
                score: 0,
                cigar: nw_core::cigar::Cigar::new(),
            })
        })
        .collect()
}

fn scatter_slots(tagged: Vec<(usize, JobResult)>, len: usize) -> Vec<Option<JobResult>> {
    let mut slots: Vec<Option<JobResult>> = (0..len).map(|_| None).collect();
    for (id, r) in tagged {
        assert!(slots[id].is_none(), "job id {id} produced twice");
        slots[id] = Some(r);
    }
    slots
}

pub(crate) fn make_report(
    mode: &'static str,
    encode_seconds: f64,
    results: &[JobResult],
    outcome: crate::dispatch::DispatchOutcome,
) -> ExecutionReport {
    let failed = results
        .iter()
        .filter(|r| r.status != dpu_kernel::layout::JobStatus::Ok)
        .count();
    ExecutionReport {
        mode,
        alignments: results.len(),
        ok: results.len() - failed,
        failed,
        transfer_in_bytes: outcome.bytes_in,
        transfer_out_bytes: outcome.bytes_out,
        transfer_seconds: outcome.transfer_seconds,
        encode_seconds,
        dpu_seconds: outcome.dpu_seconds,
        rank_seconds: outcome.rank_seconds,
        stats: outcome.stats,
        workload: outcome.workload,
        mean_rank_imbalance: outcome.mean_rank_imbalance,
        fault: outcome.fault,
        pipeline: outcome.pipeline,
        router: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_kernel::{KernelParams, KernelVariant, NwKernel, PoolConfig};
    use nw_core::adaptive::AdaptiveAligner;
    use nw_core::ScoringScheme;
    use pim_sim::ServerConfig;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    fn small_server() -> PimServer {
        let mut cfg = ServerConfig::with_ranks(2);
        cfg.dpus_per_rank = 4;
        PimServer::new(cfg)
    }

    fn config() -> DispatchConfig {
        let kernel = NwKernel::new(
            PoolConfig {
                pools: 2,
                tasklets: 4,
            },
            KernelVariant::Asm,
        );
        let params = KernelParams {
            band: 16,
            scheme: ScoringScheme::default(),
            score_only: false,
        };
        DispatchConfig::new(kernel, params)
    }

    fn mutated_pairs(n: usize) -> Vec<(DnaSeq, DnaSeq)> {
        (0..n)
            .map(|k| {
                let a = "GATTACAT".repeat(6 + k % 4);
                let mut b = a.clone();
                b.insert_str(3 + k % 5, "CG");
                (seq(&a), seq(&b))
            })
            .collect()
    }

    #[test]
    fn align_pairs_matches_host_aligner() {
        let pairs = mutated_pairs(10);
        let cfg = config();
        let mut server = small_server();
        let (report, results) = align_pairs(&mut server, &cfg, &pairs).unwrap();
        assert_eq!(results.len(), 10);
        assert_eq!(report.alignments, 10);
        assert_eq!(report.failed, 0);
        let reference = AdaptiveAligner::new(cfg.params.scheme, cfg.params.band);
        for (r, (a, b)) in results.iter().zip(&pairs) {
            let host = reference.align(a, b).unwrap();
            assert_eq!(r.score, host.score);
            assert_eq!(r.cigar, host.cigar);
        }
        assert!(report.total_seconds() > 0.0);
        assert!(report.transfer_in_bytes > 0);
        assert!(report.workload > 0);
    }

    #[test]
    fn all_vs_all_scores_every_pair() {
        let seqs: Vec<DnaSeq> = (0..6)
            .map(|k| {
                let mut t = "ACGTGGTCAT".repeat(5);
                t.insert(k + 2, 'T');
                seq(&t)
            })
            .collect();
        let cfg = config();
        let mut server = small_server();
        let (report, results) = all_vs_all(&mut server, &cfg, &seqs).unwrap();
        assert_eq!(results.len(), 15);
        assert_eq!(report.alignments, 15);
        let reference = AdaptiveAligner::new(cfg.params.scheme, cfg.params.band);
        let mut idx = 0;
        for i in 0..6 {
            for j in (i + 1)..6 {
                let host = reference.score(&seqs[i], &seqs[j]).unwrap();
                assert_eq!(results[idx].score, host, "pair ({i},{j})");
                assert!(results[idx].cigar.runs().is_empty(), "score-only mode");
                idx += 1;
            }
        }
    }

    #[test]
    fn align_sets_groups_results_per_set() {
        let sets: Vec<Vec<DnaSeq>> = (0..3)
            .map(|s| {
                (0..3 + s)
                    .map(|k| {
                        let mut t = "ACGTTGCAGG".repeat(4);
                        t.insert_str(5 + k, "AA");
                        seq(&t)
                    })
                    .collect()
            })
            .collect();
        let cfg = config();
        let mut server = small_server();
        let (report, grouped) = align_sets(&mut server, &cfg, &sets).unwrap();
        assert_eq!(grouped.len(), 3);
        assert_eq!(grouped[0].len(), 3); // C(3,2)
        assert_eq!(grouped[1].len(), 6); // C(4,2)
        assert_eq!(grouped[2].len(), 10); // C(5,2)
        assert_eq!(report.alignments, 19);
        let reference = AdaptiveAligner::new(cfg.params.scheme, cfg.params.band);
        for (s, set) in sets.iter().enumerate() {
            let mut idx = 0;
            for i in 0..set.len() {
                for j in (i + 1)..set.len() {
                    let host = reference.align(&set[i], &set[j]).unwrap();
                    assert_eq!(grouped[s][idx].score, host.score, "set {s} pair ({i},{j})");
                    assert_eq!(grouped[s][idx].cigar, host.cigar);
                    idx += 1;
                }
            }
        }
    }

    #[test]
    fn broadcast_transfers_less_than_per_pair_shipping() {
        // 16S claim: broadcasting the dataset once moves far fewer bytes
        // than shipping both sequences of every pair.
        let seqs: Vec<DnaSeq> = (0..12)
            .map(|k| {
                let mut t = "ACGTGGTCAT".repeat(24);
                t.insert(k, 'C');
                seq(&t)
            })
            .collect();
        let cfg = config();
        let mut server = small_server();
        let (rep_bcast, _) = all_vs_all(&mut server, &cfg, &seqs).unwrap();

        let mut pairs = Vec::new();
        for i in 0..seqs.len() {
            for j in (i + 1)..seqs.len() {
                pairs.push((seqs[i].clone(), seqs[j].clone()));
            }
        }
        let mut cfg2 = config();
        cfg2.params.score_only = true;
        let mut server2 = small_server();
        let (rep_pairs, _) = align_pairs(&mut server2, &cfg2, &pairs).unwrap();
        assert!(
            rep_bcast.transfer_in_bytes < rep_pairs.transfer_in_bytes / 2,
            "broadcast {} vs pairs {}",
            rep_bcast.transfer_in_bytes,
            rep_pairs.transfer_in_bytes
        );
    }

    #[test]
    fn empty_inputs_are_fine() {
        let cfg = config();
        let mut server = small_server();
        let (report, results) = align_pairs(&mut server, &cfg, &[]).unwrap();
        assert!(results.is_empty());
        assert_eq!(report.alignments, 0);
    }
}
