//! Execution reports: the time/energy breakdown every experiment mode
//! produces, in the units the paper's tables use.

use crate::pipeline::PipelineMetrics;
use crate::recovery::FaultReport;
use pim_sim::stats::AggregateStats;

/// End-to-end accounting for one experiment run.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// Mode label ("pairs", "all-vs-all", "sets").
    pub mode: &'static str,
    /// Alignments performed.
    pub alignments: usize,
    /// Alignments that produced a result.
    pub ok: usize,
    /// Alignments that failed (band could not cover the pair).
    pub failed: usize,
    /// Bytes moved host -> MRAM.
    pub transfer_in_bytes: u64,
    /// Bytes moved MRAM -> host (results).
    pub transfer_out_bytes: u64,
    /// Modeled transfer time (both directions), seconds.
    pub transfer_seconds: f64,
    /// Modeled on-the-fly 2-bit encode time, seconds.
    pub encode_seconds: f64,
    /// DPU execution time: the per-rank FIFO makespan (max over ranks of
    /// their accumulated barrier times), seconds.
    pub dpu_seconds: f64,
    /// Per-rank busy seconds (transfer + execute + collect).
    pub rank_seconds: Vec<f64>,
    /// Aggregate DPU counters summed over every launch.
    pub stats: AggregateStats,
    /// Total workload per eq. 6.
    pub workload: u64,
    /// Mean intra-rank load imbalance over launches (`(max-min)/max`).
    pub mean_rank_imbalance: f64,
    /// Fault/recovery accounting (clean outside the recovery path).
    pub fault: FaultReport,
    /// Host pipeline measurements (`None` under the lockstep engine).
    pub pipeline: Option<PipelineMetrics>,
    /// Backend-router and cache telemetry (`None` unless the run went
    /// through [`crate::router::route_pairs`]).
    pub router: Option<crate::router::RouterReport>,
}

impl ExecutionReport {
    /// End-to-end wall time: encoding is a serial prefix (the read/encode
    /// thread), then the rank FIFO runs; transfers are inside the per-rank
    /// times already.
    pub fn total_seconds(&self) -> f64 {
        self.encode_seconds + self.rank_seconds.iter().cloned().fold(0.0, f64::max)
    }

    /// Fraction of total time spent in host-side work (encode + transfers)
    /// rather than DPU execution — the paper's "overhead of the host
    /// orchestration" (15 % on S1000, < 0.1 % on S30000).
    pub fn host_overhead_fraction(&self) -> f64 {
        let total = self.total_seconds();
        if total == 0.0 {
            return 0.0;
        }
        (self.encode_seconds + self.transfer_seconds) / total
    }

    /// Pipeline utilization over all DPU work.
    pub fn pipeline_utilization(&self) -> f64 {
        self.stats.total.pipeline_utilization()
    }

    /// Alignments per second of total wall time.
    pub fn alignments_per_second(&self) -> f64 {
        let total = self.total_seconds();
        if total == 0.0 {
            return 0.0;
        }
        self.alignments as f64 / total
    }

    /// Fold another run's report into this one (the serve daemon aggregates
    /// per-request reports into one service-lifetime report this way).
    /// Counters and times add; `rank_seconds` adds element-wise (growing to
    /// the longer vector); the imbalance becomes an alignment-weighted mean;
    /// pipeline metrics are dropped (they describe one engine run, not a
    /// concatenation); the mode label of `self` wins.
    pub fn merge(&mut self, other: &ExecutionReport) {
        let (n0, n1) = (self.alignments as f64, other.alignments as f64);
        if n0 + n1 > 0.0 {
            self.mean_rank_imbalance =
                (self.mean_rank_imbalance * n0 + other.mean_rank_imbalance * n1) / (n0 + n1);
        }
        self.alignments += other.alignments;
        self.ok += other.ok;
        self.failed += other.failed;
        self.transfer_in_bytes += other.transfer_in_bytes;
        self.transfer_out_bytes += other.transfer_out_bytes;
        self.transfer_seconds += other.transfer_seconds;
        self.encode_seconds += other.encode_seconds;
        self.dpu_seconds += other.dpu_seconds;
        if self.rank_seconds.len() < other.rank_seconds.len() {
            self.rank_seconds.resize(other.rank_seconds.len(), 0.0);
        }
        for (acc, s) in self.rank_seconds.iter_mut().zip(&other.rank_seconds) {
            *acc += s;
        }
        self.stats.absorb(&other.stats);
        self.workload += other.workload;
        self.fault.merge(&other.fault);
        self.pipeline = None;
        match (self.router.as_mut(), other.router.as_ref()) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, Some(theirs)) => self.router = Some(theirs.clone()),
            _ => {}
        }
    }

    /// A one-line summary for harness logs.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{}: {} alignments ({} failed) in {:.3}s [encode {:.3}s, transfer {:.3}s, dpu {:.3}s], util {:.1}%, host overhead {:.1}%",
            self.mode,
            self.alignments,
            self.failed,
            self.total_seconds(),
            self.encode_seconds,
            self.transfer_seconds,
            self.dpu_seconds,
            100.0 * self.pipeline_utilization(),
            100.0 * self.host_overhead_fraction(),
        );
        if self.fault.audit_checked > 0 {
            s.push_str(&format!(
                ", audited {} ({} failed)",
                self.fault.audit_checked, self.fault.audit_failures
            ));
        }
        if let Some(router) = &self.router {
            s.push_str("; ");
            s.push_str(&router.summary());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExecutionReport {
        ExecutionReport {
            mode: "pairs",
            alignments: 100,
            ok: 99,
            failed: 1,
            transfer_in_bytes: 1000,
            transfer_out_bytes: 100,
            transfer_seconds: 0.5,
            encode_seconds: 0.5,
            dpu_seconds: 8.0,
            rank_seconds: vec![9.0, 9.5],
            workload: 12345,
            ..Default::default()
        }
    }

    #[test]
    fn total_is_encode_plus_slowest_rank() {
        assert!((report().total_seconds() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn host_overhead_fraction_matches_components() {
        let r = report();
        assert!((r.host_overhead_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn throughput() {
        assert!((report().alignments_per_second() - 10.0).abs() < 1e-9);
        assert_eq!(ExecutionReport::default().alignments_per_second(), 0.0);
    }

    #[test]
    fn merge_adds_counts_and_weights_imbalance() {
        let mut a = report();
        a.mean_rank_imbalance = 0.2;
        a.fault.retried_jobs = 3;
        let mut b = report();
        b.alignments = 300;
        b.mean_rank_imbalance = 0.6;
        b.rank_seconds = vec![1.0, 1.0, 2.0];
        b.fault.cpu_fallbacks = 5;
        a.merge(&b);
        assert_eq!(a.alignments, 400);
        assert_eq!(a.ok, 198);
        assert_eq!(a.failed, 2);
        assert_eq!(a.transfer_in_bytes, 2000);
        assert!((a.encode_seconds - 1.0).abs() < 1e-12);
        assert_eq!(a.rank_seconds, vec![10.0, 10.5, 2.0]);
        // 100 alignments at 0.2 + 300 at 0.6 -> 0.5.
        assert!((a.mean_rank_imbalance - 0.5).abs() < 1e-12);
        assert_eq!(a.fault.retried_jobs, 3);
        assert_eq!(a.fault.cpu_fallbacks, 5);
        assert!(a.pipeline.is_none());
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let s = report().summary();
        assert!(s.contains("100 alignments"));
        assert!(s.contains("(1 failed)"));
        assert!(s.contains("pairs"));
        assert!(!s.contains("audited"), "no audit ran");
        let mut audited = report();
        audited.fault.audit_checked = 100;
        audited.fault.audit_failures = 2;
        let s = audited.summary();
        assert!(s.contains("audited 100 (2 failed)"), "{s}");
    }
}
