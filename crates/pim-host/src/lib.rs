#![warn(missing_docs)]

//! # pim-host — the host program (§4.1)
//!
//! Everything the x86 host does around the DPUs:
//!
//! * [`encode`] — on-the-fly 2-bit encoding of ASCII reads (§4.1.1): divides
//!   the transfer volume by 4; the encode cost is modeled at a calibrated
//!   bytes/second rate and reported separately.
//! * [`balance`] — the load-balancing heuristics of §4.1.2: workload
//!   estimation via eq. 6 (`(m + n) × w`), the LPT greedy ("sort the pairs
//!   by decreasing workload, keep assigning the largest to the least loaded
//!   DPU") and a naive round-robin for the ablation bench.
//! * [`dispatch`] — batch construction, the rank FIFO, rank-parallel
//!   launches (real threads — ranks are independent once loaded) and the
//!   virtual-clock accounting that turns simulated DPU cycles plus modeled
//!   transfers into end-to-end runtimes.
//! * [`modes`] — the three experiment shapes: pair alignment (S-datasets,
//!   Tables 2–4), broadcast all-vs-all score-only (16S, Table 5), and
//!   read-set alignment with per-set locality (PacBio, Table 6).
//! * [`report`] — the [`report::ExecutionReport`] every mode produces:
//!   transfer/encode/compute breakdown, per-rank busy times, aggregate DPU
//!   statistics, pipeline utilization and load imbalance.
//! * [`recovery`] — fault-tolerant dispatch on a faulty server: integrity
//!   failures and DPU/rank faults are retried on healthy DPUs, flaky DPUs
//!   are quarantined, and jobs out of attempts fall back to the CPU with
//!   the kernel-identical adaptive aligner.
//! * [`pipeline`] — the pipelined asynchronous dispatch engine: persistent
//!   per-rank worker threads fed through bounded FIFO channels, with
//!   planning and result decoding overlapped on the driver thread. The
//!   default engine; bit-identical to lockstep dispatch.
//! * [`persistent`] — the non-draining engine the serve daemon drives:
//!   the same rank workers kept alive across requests, with per-ticket
//!   recovery, cancellation, and CPU fallback.
//! * [`backend`] — the [`backend::Backend`] trait: PiM and the CPU pool as
//!   first-class peers, each self-reporting measured eq.-6 units/second.
//! * [`router`] — the cost-model router: every batch goes to whichever
//!   backend clears it soonest given queue depth and the measured rates.
//! * [`cache`] — the content-addressed result cache in front of the
//!   router, keyed by [`nw_core::JobKey`], audit-gated on insert.
//! * [`wal`] — crash-safe persistence for the cache: checksummed
//!   write-ahead log plus compacted snapshots, with a recovery path that
//!   tolerates torn tails and flipped bits and re-admits every entry
//!   through the audit gate.

pub mod backend;
pub mod balance;
pub mod cache;
pub mod deadline;
pub mod dispatch;
pub mod encode;
pub mod hetero;
pub mod interrupt;
pub mod modes;
pub mod persistent;
pub mod pipeline;
pub mod recovery;
pub mod report;
pub mod router;
pub mod wal;

pub use backend::{Backend, BackendBatch, CpuPoolBackend, SimPimBackend};
pub use balance::{lpt_assign, pair_workloads, round_robin_assign};
pub use cache::{CacheStats, ResultCache};
pub use deadline::DeadlinePolicy;
pub use dispatch::{DispatchConfig, Engine};
pub use hetero::{align_pairs_hetero, align_pairs_hetero_cached, HeteroConfig, HeteroOutcome};
pub use modes::{align_pairs, align_sets, all_vs_all};
pub use persistent::{with_persistent_engine, EngineCtl, EngineStats, TicketDone};
pub use pipeline::{
    execute_pipelined_with, execute_rounds_pipelined, BufferPool, PipelineMetrics, PipelineOptions,
};
pub use recovery::{
    align_pairs_recovering, execute_jobs_recovering, execute_jobs_recovering_pipelined,
    FaultReport, HealthTracker, RecoveryConfig,
};
pub use report::ExecutionReport;
pub use router::{route_pairs, RouterConfig, RouterOutcome, RouterReport};
pub use wal::{CacheRecovery, CacheStore, PersistStats, StoreOptions, WAL_SCHEMA_VERSION};
