//! On-the-fly 2-bit encoding (§4.1.1).
//!
//! Reads arrive as ASCII ("as it comes from a human-readable text file on
//! disk"); the host packs them to 2 bits/base while distributing batches,
//! which brings the transfer below 15 % of total execution on S1000 and to
//! a negligible fraction on long-read datasets.

use nw_core::error::AlignError;
use nw_core::rng::SplitMix64;
use nw_core::seq::{Base, DnaSeq, NPolicy, PackedSeq};

/// Encoding statistics (feeds the transfer/encode cost model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncodeStats {
    /// ASCII bytes consumed.
    pub ascii_bytes: u64,
    /// Packed bytes produced.
    pub packed_bytes: u64,
    /// Ambiguous `N` bases substituted.
    pub n_substituted: u64,
}

impl EncodeStats {
    /// Compression ratio achieved (4.0 in the limit).
    pub fn ratio(&self) -> f64 {
        if self.packed_bytes == 0 {
            return 0.0;
        }
        self.ascii_bytes as f64 / self.packed_bytes as f64
    }

    /// Fold in another stats block.
    pub fn merge(&mut self, other: &EncodeStats) {
        self.ascii_bytes += other.ascii_bytes;
        self.packed_bytes += other.packed_bytes;
        self.n_substituted += other.n_substituted;
    }
}

/// The host-side encoder.
#[derive(Debug, Clone)]
pub struct Encoder {
    policy: NPolicy,
    pub(crate) stats: EncodeStats,
}

impl Encoder {
    /// Encoder with the paper's `N` policy (random substitution).
    pub fn new(seed: u64) -> Self {
        Self {
            policy: NPolicy::RandomSubstitute { seed },
            stats: EncodeStats::default(),
        }
    }

    /// Encoder with an explicit policy.
    pub fn with_policy(policy: NPolicy) -> Self {
        Self {
            policy,
            stats: EncodeStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> EncodeStats {
        self.stats
    }

    /// Encode ASCII directly to the packed wire format in a single pass —
    /// no intermediate unpacked sequence is materialized, mirroring the
    /// "done on the fly while also distributing the data" of §4.1.1.
    pub fn encode_ascii(&mut self, text: &[u8]) -> Result<PackedSeq, AlignError> {
        let mut data = vec![0u8; text.len().div_ceil(4)];
        for (i, &byte) in text.iter().enumerate() {
            let code = match Base::from_ascii(byte) {
                Some(b) => b.code(),
                None if matches!(byte, b'N' | b'n') => match self.policy {
                    NPolicy::Reject => return Err(AlignError::InvalidBase { position: i, byte }),
                    NPolicy::RandomSubstitute { seed } => {
                        self.stats.n_substituted += 1;
                        let mut rng = SplitMix64::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
                        rng.below(4) as u8
                    }
                    NPolicy::FixedSubstitute(b) => {
                        self.stats.n_substituted += 1;
                        b.code()
                    }
                },
                None => return Err(AlignError::InvalidBase { position: i, byte }),
            };
            data[i / 4] |= code << ((i % 4) * 2);
        }
        self.stats.ascii_bytes += text.len() as u64;
        self.stats.packed_bytes += data.len() as u64;
        Ok(PackedSeq::from_raw(data, text.len()).expect("sized correctly"))
    }

    /// Encode an already-parsed sequence (generator output). Counted in the
    /// stats as if it had been ASCII, since that is what the real pipeline
    /// reads from disk.
    pub fn encode_seq(&mut self, seq: &DnaSeq) -> PackedSeq {
        let packed = seq.pack();
        self.stats.ascii_bytes += seq.len() as u64;
        self.stats.packed_bytes += packed.byte_len() as u64;
        packed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_encoding_matches_parse_then_pack() {
        let text = b"ACGTACGTGGTTCA";
        let mut enc = Encoder::new(1);
        let direct = enc.encode_ascii(text).unwrap();
        let via_seq = DnaSeq::from_ascii(text).unwrap().pack();
        assert_eq!(direct, via_seq);
        assert_eq!(enc.stats().ascii_bytes, 14);
        assert_eq!(enc.stats().packed_bytes, 4);
    }

    #[test]
    fn n_substitution_matches_dnaseq_policy() {
        // The encoder must produce the same bases as DnaSeq's policy so
        // host-side and test-side views agree.
        let text = b"ACNNGT";
        let policy = NPolicy::RandomSubstitute { seed: 77 };
        let mut enc = Encoder::with_policy(policy);
        let packed = enc.encode_ascii(text).unwrap();
        let seq = DnaSeq::from_ascii_with(text, policy).unwrap();
        assert_eq!(packed.unpack(), seq);
        assert_eq!(enc.stats().n_substituted, 2);
    }

    #[test]
    fn rejects_bad_bytes() {
        let mut enc = Encoder::new(0);
        assert!(enc.encode_ascii(b"ACGZ").is_err());
        let mut strict = Encoder::with_policy(NPolicy::Reject);
        assert!(strict.encode_ascii(b"ACGN").is_err());
    }

    #[test]
    fn ratio_approaches_four() {
        let mut enc = Encoder::new(0);
        enc.encode_ascii(&b"ACGT".repeat(1000)).unwrap();
        let r = enc.stats().ratio();
        assert!((3.9..=4.0).contains(&r), "ratio {r}");
    }

    #[test]
    fn stats_merge() {
        let mut a = EncodeStats {
            ascii_bytes: 4,
            packed_bytes: 1,
            n_substituted: 0,
        };
        a.merge(&EncodeStats {
            ascii_bytes: 8,
            packed_bytes: 2,
            n_substituted: 3,
        });
        assert_eq!(
            a,
            EncodeStats {
                ascii_bytes: 12,
                packed_bytes: 3,
                n_substituted: 3
            }
        );
        assert_eq!(EncodeStats::default().ratio(), 0.0);
    }
}
