//! Kill-injection integration test: drives the real `upmem-nw` binary
//! through the `chaos --crash` harness. The harness itself enforces the
//! durability contract (bit-identical results, conservation across the
//! crash, audit-gated recovery, warm restart) and errors on any
//! violation, so these tests mostly assert that it runs to completion
//! with a fixed seed — plus spot-checks on the summary it prints.

use std::path::PathBuf;
use upmem_nw_cli::{cmd_chaos_crash, CrashOpts};

fn opts(name: &str, seed: u64) -> CrashOpts {
    CrashOpts {
        seed,
        kills: 3,
        bin: Some(PathBuf::from(env!("CARGO_BIN_EXE_upmem-nw"))),
        state_root: Some(
            std::env::temp_dir().join(format!("upmem-nw-crash-test-{}-{name}", std::process::id())),
        ),
        ..CrashOpts::default()
    }
}

#[test]
fn kill_injection_recovers_bit_identical_results() {
    let opts = opts("clean", 0xD1CE);
    let summary = cmd_chaos_crash(&opts).expect("durability contract holds across 3 kills");
    assert!(
        summary.contains("books balanced"),
        "summary missing conservation line: {summary}"
    );
    assert!(
        summary.contains("every one bit-identical"),
        "summary missing bit-identity line: {summary}"
    );
    let _ = std::fs::remove_dir_all(opts.state_root.unwrap());
}

#[test]
fn corrupted_cache_record_is_skipped_not_served() {
    let opts = CrashOpts {
        corrupt_wal: true,
        ..opts("corrupt", 0xBAD5EED)
    };
    let summary = cmd_chaos_crash(&opts).expect("recovery skips the damaged record");
    assert!(
        summary.contains("damaged record(s) skipped at recovery"),
        "summary missing corruption-drill line: {summary}"
    );
    let _ = std::fs::remove_dir_all(opts.state_root.unwrap());
}
