//! The `serve` subcommand and the `bench --serve` load benchmark.
//!
//! `cmd_serve` runs the persistent daemon ([`upmem_nw_service::run_serve`])
//! until it drains, prints the one-line summary and optionally writes the
//! full [`ServiceReport`] JSON.
//!
//! `cmd_bench_serve` measures how the service behaves under load. It first
//! estimates the engine's capacity with a closed-loop client (a fixed
//! window of outstanding requests), then drives three open-loop Poisson
//! phases at 0.5x, 1x, and 2x that capacity — open-loop because a client
//! that waits for responses before sending can never overload the server,
//! which is exactly the regime admission control exists for. Each phase
//! reports sustained throughput, p50/p99 latency, and the reject / shed /
//! deadline-miss rates, and the conservation law is asserted on every
//! phase: overload must surface as explicit rejections, sheds, and
//! deadline misses, never as silently lost requests.

use crate::CliError;
use datasets::synthetic::{SyntheticParams, SyntheticPreset};
use pim_sim::fault::mix64;
use std::fmt::Write as _;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};
use upmem_nw_service::json::Json;
use upmem_nw_service::{
    proto, run_serve, Client, Priority, ServeOptions, ServiceReport, SCHEMA_VERSION,
};

/// Run the daemon until it drains (SIGTERM/SIGINT or a client `drain`
/// request); print the summary, and write the full report JSON to
/// `json_path` when given.
pub fn cmd_serve(opts: &ServeOptions, json_path: Option<&str>) -> Result<String, CliError> {
    eprintln!(
        "serving on {} ({} ranks x {} DPUs, band {}, queue {} requests / {} pairs, \
         {} open tickets); drain with SIGTERM or {{\"op\":\"drain\"}}",
        opts.socket.display(),
        opts.ranks.max(1),
        opts.dpus.max(1),
        opts.band.next_multiple_of(16).max(16),
        opts.queue_requests,
        opts.queue_pairs,
        opts.max_open_tickets,
    );
    let rep = run_serve(opts).map_err(|e| CliError::Align(e.to_string()))?;
    let mut out = rep.summary();
    out.push('\n');
    if let Some(path) = json_path {
        std::fs::write(path, rep.to_json())?;
        let _ = writeln!(out, "wrote {path}");
    }
    if !rep.consistent() {
        return Err(CliError::Align(format!(
            "service accounting violated its conservation law\n{out}"
        )));
    }
    Ok(out)
}

/// Knobs for the `bench --serve` load benchmark.
#[derive(Debug, Clone)]
pub struct BenchServeOpts {
    /// Simulated ranks.
    pub ranks: usize,
    /// DPUs per rank.
    pub dpus: usize,
    /// Band width (rounded up to a multiple of 16).
    pub band: usize,
    /// Per-rank FIFO depth of the persistent engine.
    pub fifo_depth: usize,
    /// Simulation threads per rank worker (0 = auto).
    pub sim_threads: usize,
    /// Seed for the dataset and the Poisson arrival stream.
    pub seed: u64,
    /// Pairs per request.
    pub pairs_per_request: usize,
    /// Requests per phase (and for the capacity estimate).
    pub requests: usize,
    /// Shrink the run for a fast CI smoke.
    pub smoke: bool,
    /// Where to write the JSON report (default `BENCH_serve.json`).
    pub json_path: Option<String>,
}

impl Default for BenchServeOpts {
    fn default() -> Self {
        Self {
            ranks: 2,
            dpus: 4,
            band: 64,
            fifo_depth: 2,
            sim_threads: 0,
            seed: 42,
            pairs_per_request: 4,
            requests: 48,
            smoke: false,
            json_path: None,
        }
    }
}

/// The daemon's `max_open_tickets` in every phase.
const OPEN_WINDOW: usize = 4;
/// Outstanding-request window of the closed-loop capacity client: twice
/// the open-ticket bound so the admission queue always has the next batch
/// ready and the estimate reflects saturated pipelining, not round trips.
const CAP_WINDOW: usize = 2 * OPEN_WINDOW;
/// Admission bound (queued requests) during the load phases — deliberately
/// small so 2x overload hits the queue, not just the deadlines.
const PHASE_QUEUE: usize = 8;
/// Request deadline as a multiple of the measured mean service time.
const DEADLINE_SERVICE_MULTIPLE: f64 = 8.0;
/// The offered-load multiples of the three open-loop phases.
const MULTIPLES: [f64; 3] = [0.5, 1.0, 2.0];

fn bench_sock(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("upmem-nw-bench-{}-{tag}.sock", std::process::id()))
}

fn base_opts(opts: &BenchServeOpts, tag: &str) -> ServeOptions {
    ServeOptions {
        socket: bench_sock(tag),
        ranks: opts.ranks.max(1),
        dpus: opts.dpus.max(1),
        band: opts.band,
        fifo_depth: opts.fifo_depth,
        sim_threads: opts.sim_threads,
        max_open_tickets: OPEN_WINDOW,
        queue_requests: PHASE_QUEUE,
        queue_pairs: PHASE_QUEUE * opts.pairs_per_request.max(1),
        ..ServeOptions::default()
    }
}

fn ascii_pairs(opts: &BenchServeOpts) -> Vec<(String, String)> {
    SyntheticParams::preset(SyntheticPreset::S1000, opts.seed)
        .generate(opts.pairs_per_request.max(1))
        .into_iter()
        .map(|(a, b)| {
            (
                String::from_utf8(a.to_ascii()).unwrap(),
                String::from_utf8(b.to_ascii()).unwrap(),
            )
        })
        .collect()
}

/// A unit-mean exponential deviate from the seeded counter stream — the
/// Poisson arrival process, without any global RNG state.
fn exp_deviate(seed: u64, i: u64) -> f64 {
    let bits = mix64(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let u = ((bits >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
    -u.ln()
}

/// Reader-thread loop: count terminal answers, signalling each on `tx`
/// (closed-loop mode) until the daemon drains the connection.
fn read_until_eof(mut c: Client, tx: Option<mpsc::Sender<()>>) -> usize {
    let mut terminal = 0usize;
    while let Ok(Some(v)) = c.recv() {
        match v.get("type").and_then(Json::as_str) {
            Some("result") | Some("reject") | Some("shed") | Some("error") => {
                terminal += 1;
                if let Some(tx) = &tx {
                    let _ = tx.send(());
                }
            }
            _ => {}
        }
    }
    terminal
}

fn spawn_daemon(opts: &ServeOptions) -> thread::JoinHandle<Result<ServiceReport, String>> {
    let opts = opts.clone();
    thread::spawn(move || run_serve(&opts).map_err(|e| e.to_string()))
}

fn join_daemon(
    h: thread::JoinHandle<Result<ServiceReport, String>>,
) -> Result<ServiceReport, CliError> {
    h.join()
        .map_err(|_| CliError::Align("serve daemon panicked".into()))?
        .map_err(CliError::Align)
}

/// Closed-loop capacity estimate: keep [`CAP_WINDOW`] requests
/// outstanding, measure completed pairs per second of client wall time.
fn closed_loop_capacity(
    opts: &BenchServeOpts,
    pairs: &[(String, String)],
) -> Result<(f64, ServiceReport), CliError> {
    let sopts = base_opts(opts, "capacity");
    let daemon = spawn_daemon(&sopts);
    let mut c = Client::connect_retry(&sopts.socket, Duration::from_secs(10))?;
    let reader = c.try_split()?;
    let (tx, rx) = mpsc::channel::<()>();
    let reader = thread::spawn(move || read_until_eof(reader, Some(tx)));

    let n = opts.requests.max(1);
    let t0 = Instant::now();
    let mut sent = 0usize;
    while sent < n.min(CAP_WINDOW) {
        c.send(&proto::align_line(
            &format!("cap-{sent}"),
            Priority::Normal,
            None,
            pairs,
        ))?;
        sent += 1;
    }
    let mut done = 0usize;
    while done < n {
        rx.recv()
            .map_err(|_| CliError::Align("daemon closed mid-capacity-run".into()))?;
        done += 1;
        if sent < n {
            c.send(&proto::align_line(
                &format!("cap-{sent}"),
                Priority::Normal,
                None,
                pairs,
            ))?;
            sent += 1;
        }
    }
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    c.send("{\"op\":\"drain\"}")?;
    let _ = reader.join();
    let rep = join_daemon(daemon)?;
    let capacity = rep.pairs_completed as f64 / elapsed;
    Ok((capacity, rep))
}

/// One open-loop Poisson phase: offered load is `multiple` times the
/// measured capacity; arrivals do not wait for responses.
fn open_loop_phase(
    opts: &BenchServeOpts,
    pairs: &[(String, String)],
    capacity_pps: f64,
    multiple: f64,
    deadline_ms: u64,
) -> Result<(f64, ServiceReport), CliError> {
    let tag = format!("x{}", (multiple * 100.0) as u64);
    let mut sopts = base_opts(opts, &tag);
    sopts.default_deadline_ms = Some(deadline_ms);
    let daemon = spawn_daemon(&sopts);
    let mut c = Client::connect_retry(&sopts.socket, Duration::from_secs(10))?;
    let reader = c.try_split()?;
    let reader = thread::spawn(move || read_until_eof(reader, None));

    let offered_pps = (capacity_pps * multiple).max(1e-9);
    let mean_gap_s = pairs.len() as f64 / offered_pps;
    // Cycle the priority classes so overload exercises the shedding path
    // (interactive arrivals displace queued batch work), not just rejects.
    let classes = [Priority::Normal, Priority::Batch, Priority::Interactive];
    let n = opts.requests.max(1);
    let t0 = Instant::now();
    let mut next_s = 0.0f64;
    for i in 0..n {
        let target = Duration::from_secs_f64(next_s);
        let now = t0.elapsed();
        if target > now {
            thread::sleep(target - now);
        }
        c.send(&proto::align_line(
            &format!("{tag}-{i}"),
            classes[i % classes.len()],
            None,
            pairs,
        ))?;
        next_s += mean_gap_s * exp_deviate(opts.seed ^ (multiple * 1000.0) as u64, i as u64);
    }
    c.send("{\"op\":\"drain\"}")?;
    let _ = reader.join();
    let rep = join_daemon(daemon)?;
    Ok((offered_pps, rep))
}

fn phase_json(multiple: f64, offered_pps: f64, rep: &ServiceReport) -> String {
    format!(
        "{{\"offered_multiple\": {multiple}, \"offered_pairs_per_sec\": {offered_pps:.3}, \
         \"received\": {}, \"accepted\": {}, \"rejected\": {}, \"shed\": {}, \
         \"completed\": {}, \"deadline_missed\": {}, \"pairs_completed\": {}, \
         \"pairs_per_sec\": {:.3}, \"latency_p50_ms\": {:.3}, \"latency_p99_ms\": {:.3}, \
         \"max_queue_depth\": {}, \"consistent\": {}}}",
        rep.received,
        rep.accepted,
        rep.rejected,
        rep.shed,
        rep.completed,
        rep.deadline_missed,
        rep.pairs_completed,
        rep.pairs_per_second(),
        rep.latency_p50_ms,
        rep.latency_p99_ms,
        rep.max_queue_depth,
        rep.consistent(),
    )
}

/// The `bench --serve` benchmark: closed-loop capacity estimate, then
/// open-loop Poisson phases at [`MULTIPLES`] times capacity; writes
/// `BENCH_serve.json`.
pub fn cmd_bench_serve(opts: &BenchServeOpts) -> Result<String, CliError> {
    let mut opts = opts.clone();
    if opts.smoke {
        opts.requests = opts.requests.min(16);
        opts.ranks = opts.ranks.min(2);
        opts.dpus = opts.dpus.min(4);
    }
    let pairs = ascii_pairs(&opts);

    let (capacity_pps, cap_rep) = closed_loop_capacity(&opts, &pairs)?;
    if capacity_pps <= 0.0 || cap_rep.completed != opts.requests.max(1) {
        return Err(CliError::Align(format!(
            "capacity run incomplete: {} of {} requests completed",
            cap_rep.completed,
            opts.requests.max(1)
        )));
    }
    let service_ms_per_request = pairs.len() as f64 / capacity_pps * 1000.0;
    let deadline_ms = ((service_ms_per_request * DEADLINE_SERVICE_MULTIPLE) as u64).max(250);

    let mut out = format!(
        "bench serve: {} ranks x {} DPUs, {} pairs/request, {} requests/phase\n\
         capacity (closed loop, {} outstanding): {:.1} pairs/s \
         [p50 {:.1}ms, p99 {:.1}ms]\n\
         phase deadline: {}ms ({}x mean service time)\n",
        opts.ranks.max(1),
        opts.dpus.max(1),
        pairs.len(),
        opts.requests.max(1),
        CAP_WINDOW,
        capacity_pps,
        cap_rep.latency_p50_ms,
        cap_rep.latency_p99_ms,
        deadline_ms,
        DEADLINE_SERVICE_MULTIPLE,
    );

    let mut phases_json = Vec::new();
    for multiple in MULTIPLES {
        if pim_host::interrupt::requested() {
            return Err(CliError::Align("interrupted — benchmark aborted".into()));
        }
        let (offered_pps, rep) =
            open_loop_phase(&opts, &pairs, capacity_pps, multiple, deadline_ms)?;
        if !rep.consistent() {
            return Err(CliError::Align(format!(
                "phase {multiple}x violated the conservation law: {rep:?}"
            )));
        }
        let n = opts.requests.max(1);
        let _ = writeln!(
            out,
            "  {multiple:.1}x ({offered_pps:.1} pairs/s offered): {:.1} pairs/s sustained, \
             p50 {:.1}ms, p99 {:.1}ms; {}/{n} completed, {} rejected, {} shed, \
             {} deadline-missed, queue peak {}",
            rep.pairs_per_second(),
            rep.latency_p50_ms,
            rep.latency_p99_ms,
            rep.completed,
            rep.rejected,
            rep.shed,
            rep.deadline_missed,
            rep.max_queue_depth,
        );
        phases_json.push(phase_json(multiple, offered_pps, &rep));
    }

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"schema_version\": {SCHEMA_VERSION},\n  \
         \"ranks\": {},\n  \"dpus_per_rank\": {},\n  \"band\": {},\n  \"seed\": {},\n  \
         \"pairs_per_request\": {},\n  \"requests_per_phase\": {},\n  \
         \"open_tickets\": {OPEN_WINDOW},\n  \"capacity_window\": {CAP_WINDOW},\n  \
         \"queue_requests\": {PHASE_QUEUE},\n  \
         \"capacity_pairs_per_sec\": {:.3},\n  \"deadline_ms\": {deadline_ms},\n  \
         \"phases\": [\n    {}\n  ]\n}}\n",
        opts.ranks.max(1),
        opts.dpus.max(1),
        opts.band.next_multiple_of(16).max(16),
        opts.seed,
        pairs.len(),
        opts.requests.max(1),
        capacity_pps,
        phases_json.join(",\n    "),
    );
    let path = opts
        .json_path
        .clone()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    std::fs::write(&path, &json)?;
    let _ = writeln!(out, "wrote {path}");
    Ok(out)
}
