//! `upmem-nw` — align DNA on a simulated UPMEM PiM server.
//!
//! ```text
//! upmem-nw align  --a reads_a.fa --b reads_b.fa [--algo adaptive|static|wfa|exact|pim]
//!                 [--band 128] [--ranks 4] [--fifo-depth 2] [--sync-dispatch true]
//!                 [--sim-threads 0] [--audit true] [--out results.tsv]
//!                 [--interp-mode checked|fast|jit|auto]
//!                 [--backend pim|cpu|router|split] [--cache N]
//! upmem-nw matrix --in seqs.fa [--band 128] [--ranks 4] [--out matrix.tsv]
//! upmem-nw generate --kind s1000|s10000|s30000|16s|pacbio --count N
//!                 [--seed S] [--out data.fa]
//! upmem-nw chaos  [--seed 42] [--pairs 24] [--ranks 2] [--dpus 8] [--band 128]
//!                 [--dpu-fault-rate 0.15] [--corrupt-rate 0.1] [--disabled 2]
//!                 [--hang-faults 0.1] [--corrupt-cigars 0.1]
//!                 [--watchdog-cycles auto|0|N] [--deadline 10] [--audit false]
//!                 [--retries 3] [--quarantine 2] [--fifo-depth 2] [--sync-dispatch true]
//!                 [--sim-threads 0] [--interp-mode checked|fast|jit|auto]
//! upmem-nw chaos --crash true [--seed 42] [--kills 3] [--requests 5]
//!                 [--pairs-per-request 2] [--ranks 2] [--dpus 4] [--band 64]
//!                 [--read-len 600] [--corrupt-wal true] [--state-root dir]
//!
//! `--watchdog-cycles auto` (the default) derives the per-launch cycle
//! budget from the kernels' symbolic WCET bounds; `0` turns the watchdog
//! off; any other number is an explicit budget. `--interp-mode` picks the
//! simulator interpreter tier (checked oracle, verified dense fast path,
//! or the block-translating JIT; `auto` runs a one-time timed calibration
//! probe and keeps the faster verified tier, falling back to checked when
//! the verifier gate fails). `align --backend` routes pairs through the
//! heterogeneous backend layer (PiM, the CPU pool, the dynamic cost-model
//! router, or the static split); `--cache N` puts a content-addressed
//! result cache of capacity N in front (implies `--backend router`).
//! `serve --cache N` sizes the daemon's persistent result cache
//! (default 4096; 0 disables). `serve --state-dir DIR` turns on crash-safe
//! durability: the result cache persists through a checksummed WAL +
//! snapshot and admitted requests are journaled, so a killed daemon
//! restarted against the same directory recovers its cache and replays
//! unanswered requests (`--cache-path`, `--compact-every`, `--fsync`
//! tune it; `--max-line-bytes` bounds per-connection request buffering).
//! `chaos --crash true` runs the kill-injection harness: it spawns the
//! daemon as a child against a durable state dir, SIGKILLs it at seeded
//! points, and asserts recovery serves bit-identical results with
//! balanced books. `bench --backend true` benchmarks the
//! router against single backends and the cache at 0/30/90% duplicates.
//! upmem-nw bench  [--pairs 48] [--ranks 4] [--dpus 4] [--rounds 6] [--band 64]
//!                 [--fifo-depth 2] [--seed 42] [--straggler-hold-ms 35]
//!                 [--smoke true] [--sim true] [--serve true] [--backend true]
//!                 [--sim-threads 0] [--pairs-per-request 4] [--requests 48]
//!                 [--interp-mode checked|fast|jit|auto]
//!                 [--json BENCH_dispatch.json|BENCH_sim.json|BENCH_serve.json|BENCH_backend.json]
//! upmem-nw serve  [--socket /tmp/upmem-nw.sock] [--ranks 2] [--dpus 8]
//!                 [--band 64] [--fifo-depth 2] [--sim-threads 0] [--retries 3]
//!                 [--quarantine 3] [--audit false] [--stall-deadline 5]
//!                 [--watchdog-cycles 0] [--queue-requests 64]
//!                 [--queue-pairs 4096] [--max-open 8] [--max-request-pairs 1024]
//!                 [--default-deadline-ms MS] [--seed 42] [--dpu-fault-rate 0]
//!                 [--hang-faults 0] [--corrupt-cigars 0] [--json report.json]
//!                 [--interp-mode checked|fast|jit|auto] [--cache 4096]
//! upmem-nw info   [--ranks 40]
//! upmem-nw lint   [--verbose true] [--json true]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use upmem_nw_cli::{
    cmd_align, cmd_bench, cmd_bench_serve, cmd_chaos, cmd_chaos_crash, cmd_generate, cmd_info,
    cmd_lint, cmd_matrix, cmd_serve, install_interrupt_handler, parse_interp_mode, Algo,
    BackendChoice, BenchOpts, BenchServeOpts, ChaosOpts, CliError, CrashOpts,
};
use upmem_nw_service::ServeOptions;

fn usage() -> ! {
    eprintln!(
        "usage:\n  upmem-nw align --a <fasta> --b <fasta> [--algo adaptive|static|wfa|exact|pim] [--band N] [--ranks N] [--fifo-depth N] [--sync-dispatch true] [--sim-threads N] [--audit true] [--interp-mode checked|fast|jit|auto] [--backend pim|cpu|router|split] [--cache N] [--out file]\n  upmem-nw matrix --in <fasta> [--band N] [--ranks N] [--out file]\n  upmem-nw generate --kind s1000|s10000|s30000|16s|pacbio --count N [--seed S] [--out file]\n  upmem-nw chaos [--seed S] [--pairs N] [--ranks N] [--dpus N] [--band N] [--dpu-fault-rate P] [--corrupt-rate P] [--hang-faults P] [--corrupt-cigars P] [--watchdog-cycles auto|0|N] [--deadline SECS] [--audit false] [--disabled N] [--retries N] [--quarantine N] [--fifo-depth N] [--sync-dispatch true] [--sim-threads N] [--interp-mode checked|fast|jit|auto]\n  upmem-nw chaos --crash true [--seed S] [--kills N] [--requests N] [--pairs-per-request N] [--ranks N] [--dpus N] [--band N] [--read-len N] [--corrupt-wal true] [--state-root dir]\n  upmem-nw bench [--pairs N] [--ranks N] [--dpus N] [--rounds N] [--band N] [--fifo-depth N] [--seed S] [--straggler-hold-ms MS] [--smoke true] [--sim true] [--serve true] [--backend true] [--pairs-per-request N] [--requests N] [--sim-threads N] [--interp-mode checked|fast|jit|auto] [--json file]\n  upmem-nw serve [--socket path] [--ranks N] [--dpus N] [--band N] [--fifo-depth N] [--sim-threads N] [--retries N] [--quarantine N] [--audit false] [--stall-deadline SECS] [--watchdog-cycles N] [--queue-requests N] [--queue-pairs N] [--max-open N] [--max-request-pairs N] [--default-deadline-ms MS] [--seed S] [--dpu-fault-rate P] [--hang-faults P] [--corrupt-cigars P] [--interp-mode checked|fast|jit|auto] [--cache N] [--state-dir dir] [--cache-path dir] [--compact-every N] [--fsync true] [--max-line-bytes N] [--json file]\n  upmem-nw info [--ranks N]\n  upmem-nw lint [--verbose true] [--json true]"
    );
    std::process::exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(key) = arg.strip_prefix("--") {
            let value = it.next().cloned().unwrap_or_else(|| usage());
            flags.insert(key.to_string(), value);
        } else {
            usage();
        }
    }
    flags
}

fn run() -> Result<String, CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        usage()
    };
    let flags = parse_flags(rest);
    // One-shot runs exit with a partial report on Ctrl-C instead of dying
    // mid-write; the engines poll the flag at their planning points.
    if matches!(
        command.as_str(),
        "align" | "matrix" | "chaos" | "bench" | "serve"
    ) {
        install_interrupt_handler();
    }
    let get = |k: &str| flags.get(k).cloned();
    let band: usize = get("band")
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(128);
    let ranks: usize = get("ranks")
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(4);
    let fifo_depth: usize = get("fifo-depth")
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(2);
    let sync_dispatch = get("sync-dispatch").is_some_and(|v| v == "true");
    let sim_threads: usize = get("sim-threads")
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(0);
    // Shared across align/chaos/bench/serve: which simulator interpreter
    // tier runs the kernels (checked oracle, verified fast path, or the
    // block-translating JIT; `auto` picks jit when the verifier gate holds).
    let interp_mode = get("interp-mode")
        .map(|v| parse_interp_mode(&v).unwrap_or_else(|| usage()))
        .unwrap_or_default();

    let output = match command.as_str() {
        "align" => {
            let a = get("a").unwrap_or_else(|| usage());
            let b = get("b").unwrap_or_else(|| usage());
            let algo = get("algo")
                .map(|v| Algo::parse(&v).unwrap_or_else(|| usage()))
                .unwrap_or(Algo::Adaptive);
            let cache_capacity: usize = get("cache")
                .map(|v| v.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(0);
            // --cache without --backend implies the router (the cache sits
            // in front of the routed path only).
            let backend = get("backend")
                .map(|v| BackendChoice::parse(&v).unwrap_or_else(|| usage()))
                .or((cache_capacity > 0).then_some(BackendChoice::Router));
            cmd_align(
                &a,
                &b,
                algo,
                band,
                ranks,
                fifo_depth,
                sync_dispatch,
                sim_threads,
                get("audit").is_some_and(|v| v == "true"),
                interp_mode,
                backend,
                cache_capacity,
            )?
        }
        "matrix" => {
            let input = get("in").unwrap_or_else(|| usage());
            cmd_matrix(&input, band, ranks)?
        }
        "generate" => {
            let kind = get("kind").unwrap_or_else(|| usage());
            let count: usize = get("count")
                .map(|v| v.parse().unwrap_or_else(|_| usage()))
                .unwrap_or_else(|| usage());
            let seed: u64 = get("seed")
                .map(|v| v.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(42);
            cmd_generate(&kind, count, seed)?
        }
        "chaos" if get("crash").is_some_and(|v| v == "true") => {
            let defaults = CrashOpts::default();
            let uint = |k: &str, d: usize| {
                get(k)
                    .map(|v| v.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(d)
            };
            let opts = CrashOpts {
                seed: get("seed")
                    .map(|v| v.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(defaults.seed),
                kills: uint("kills", defaults.kills),
                requests: uint("requests", defaults.requests),
                pairs_per_request: uint("pairs-per-request", defaults.pairs_per_request),
                ranks: uint("ranks", defaults.ranks),
                dpus: uint("dpus", defaults.dpus),
                band: uint("band", defaults.band),
                read_len: uint("read-len", defaults.read_len),
                state_root: get("state-root").map(std::path::PathBuf::from),
                corrupt_wal: get("corrupt-wal").is_some_and(|v| v == "true"),
                bin: None,
            };
            cmd_chaos_crash(&opts)?
        }
        "chaos" => {
            let defaults = ChaosOpts::default();
            let uint = |k: &str, d: usize| {
                get(k)
                    .map(|v| v.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(d)
            };
            let rate = |k: &str, d: f64| {
                get(k)
                    .map(|v| v.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(d)
            };
            let opts = ChaosOpts {
                seed: get("seed")
                    .map(|v| v.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(defaults.seed),
                pairs: uint("pairs", defaults.pairs),
                ranks: uint("ranks", defaults.ranks),
                dpus: uint("dpus", defaults.dpus),
                band: uint("band", defaults.band),
                dpu_fault_rate: rate("dpu-fault-rate", defaults.dpu_fault_rate),
                corrupt_rate: rate("corrupt-rate", defaults.corrupt_rate),
                hang_rate: rate("hang-faults", defaults.hang_rate),
                silent_corrupt_rate: rate("corrupt-cigars", defaults.silent_corrupt_rate),
                watchdog_cycles: match get("watchdog-cycles").as_deref() {
                    None | Some("auto") => defaults.watchdog_cycles,
                    Some(v) => Some(v.parse().unwrap_or_else(|_| usage())),
                },
                deadline_seconds: rate("deadline", defaults.deadline_seconds),
                audit: get("audit").map(|v| v == "true").unwrap_or(defaults.audit),
                disabled: uint("disabled", defaults.disabled),
                retries: uint("retries", defaults.retries),
                quarantine: uint("quarantine", defaults.quarantine),
                fifo_depth: uint("fifo-depth", defaults.fifo_depth),
                sync_dispatch: sync_dispatch || defaults.sync_dispatch,
                sim_threads,
                interp_mode,
            };
            cmd_chaos(&opts)?
        }
        "bench" if get("serve").is_some_and(|v| v == "true") => {
            let defaults = BenchServeOpts::default();
            let uint = |k: &str, d: usize| {
                get(k)
                    .map(|v| v.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(d)
            };
            let opts = BenchServeOpts {
                ranks: uint("ranks", defaults.ranks),
                dpus: uint("dpus", defaults.dpus),
                band: uint("band", defaults.band),
                fifo_depth: uint("fifo-depth", defaults.fifo_depth),
                sim_threads,
                seed: get("seed")
                    .map(|v| v.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(defaults.seed),
                pairs_per_request: uint("pairs-per-request", defaults.pairs_per_request),
                requests: uint("requests", defaults.requests),
                smoke: get("smoke").is_some_and(|v| v == "true"),
                json_path: get("json"),
            };
            cmd_bench_serve(&opts)?
        }
        "serve" => {
            let defaults = ServeOptions::default();
            let uint = |k: &str, d: usize| {
                get(k)
                    .map(|v| v.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(d)
            };
            let rate = |k: &str, d: f64| {
                get(k)
                    .map(|v| v.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(d)
            };
            let mut fault = pim_sim::FaultPlan {
                seed: get("seed")
                    .map(|v| v.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(42),
                ..pim_sim::FaultPlan::default()
            };
            fault.dpu_fault_rate = rate("dpu-fault-rate", fault.dpu_fault_rate);
            fault.hang_rate = rate("hang-faults", fault.hang_rate);
            fault.silent_corrupt_rate = rate("corrupt-cigars", fault.silent_corrupt_rate);
            let opts = ServeOptions {
                socket: get("socket")
                    .map(std::path::PathBuf::from)
                    .unwrap_or(defaults.socket),
                ranks: uint("ranks", defaults.ranks),
                dpus: uint("dpus", defaults.dpus),
                band: uint("band", defaults.band),
                fifo_depth: uint("fifo-depth", defaults.fifo_depth),
                sim_threads,
                retries: uint("retries", defaults.retries),
                quarantine: uint("quarantine", defaults.quarantine),
                audit: get("audit").map(|v| v == "true").unwrap_or(defaults.audit),
                stall_deadline_seconds: rate("stall-deadline", defaults.stall_deadline_seconds),
                watchdog_cycles: get("watchdog-cycles")
                    .map(|v| v.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(defaults.watchdog_cycles),
                queue_requests: uint("queue-requests", defaults.queue_requests),
                queue_pairs: uint("queue-pairs", defaults.queue_pairs),
                max_open_tickets: uint("max-open", defaults.max_open_tickets),
                max_pairs_per_request: uint("max-request-pairs", defaults.max_pairs_per_request),
                default_deadline_ms: get("default-deadline-ms")
                    .map(|v| v.parse().unwrap_or_else(|_| usage())),
                fault,
                interp_mode,
                cache_capacity: uint("cache", defaults.cache_capacity),
                state_dir: get("state-dir").map(std::path::PathBuf::from),
                cache_path: get("cache-path").map(std::path::PathBuf::from),
                compact_every: uint("compact-every", defaults.compact_every),
                fsync: get("fsync").is_some_and(|v| v == "true"),
                max_line_bytes: uint("max-line-bytes", defaults.max_line_bytes),
            };
            cmd_serve(&opts, get("json").as_deref())?
        }
        "bench" => {
            let defaults = BenchOpts::default();
            let uint = |k: &str, d: usize| {
                get(k)
                    .map(|v| v.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(d)
            };
            let opts = BenchOpts {
                pairs: uint("pairs", defaults.pairs),
                ranks: uint("ranks", defaults.ranks),
                dpus: uint("dpus", defaults.dpus),
                rounds: uint("rounds", defaults.rounds),
                band: uint("band", defaults.band),
                fifo_depth: uint("fifo-depth", defaults.fifo_depth),
                seed: get("seed")
                    .map(|v| v.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(defaults.seed),
                straggler_hold_ms: get("straggler-hold-ms")
                    .map(|v| v.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(defaults.straggler_hold_ms),
                smoke: get("smoke").is_some_and(|v| v == "true"),
                json_path: get("json"),
                sim_threads,
                sim: get("sim").is_some_and(|v| v == "true"),
                backend: get("backend").is_some_and(|v| v == "true"),
                interp_mode,
            };
            cmd_bench(&opts)?
        }
        "info" => cmd_info(if flags.contains_key("ranks") {
            ranks
        } else {
            40
        }),
        "lint" => cmd_lint(
            get("verbose").is_some_and(|v| v == "true"),
            get("json").is_some_and(|v| v == "true"),
        )?,
        _ => usage(),
    };
    if let Some(path) = get("out") {
        std::fs::write(path, &output)?;
        Ok(String::new())
    } else {
        Ok(output)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
