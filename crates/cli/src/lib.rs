#![warn(missing_docs)]

//! Library backing the `upmem-nw` command-line tool.
//!
//! Commands (see `main.rs` for flag parsing):
//!
//! * `align` — pair up records of two FASTA files and align them, on the
//!   host CPU (adaptive / static / WFA / exact) or through the simulated
//!   PiM server; TSV results on stdout.
//! * `matrix` — all-vs-all score matrix of one FASTA file on the PiM
//!   server (the 16S workflow).
//! * `generate` — write any of the paper's five datasets as FASTA.
//! * `chaos` — fault-injection smoke test: align synthetic pairs on a
//!   server with a seeded fault plan through the fault-tolerant
//!   dispatcher, and fail unless every job completes with the score *and
//!   CIGAR* the fault-free CPU reference produces (a score-only oracle
//!   would miss silently corrupted CIGARs).
//! * `info` — print the simulated server topology.
//! * `lint` — statically verify the built-in DPU inner-loop kernels
//!   (control flow, register def-use, WRAM address analysis) and run them
//!   under the runtime sanitizer; nonzero exit on any error.

use datasets::fasta::{self, Record};
use datasets::pacbio::PacbioParams;
use datasets::sixteen_s::SixteenSParams;
use datasets::synthetic::{SyntheticParams, SyntheticPreset};
use datasets::Scale;
use dpu_kernel::{JobStatus, KernelParams, NwKernel};
use nw_core::adaptive::AdaptiveAligner;
use nw_core::banded::BandedAligner;
use nw_core::full::FullAligner;
use nw_core::seq::{DnaSeq, NPolicy};
use nw_core::wfa::{Penalties, WfaAligner};
use nw_core::{Alignment, ScoringScheme};
use pim_host::deadline::DeadlinePolicy;
use pim_host::dispatch::{DispatchConfig, Engine};
use pim_host::modes::{align_pairs, all_vs_all};
use pim_host::recovery::{align_pairs_recovering, RecoveryConfig};
use pim_host::report::ExecutionReport;
use pim_sim::isa::InterpMode;
use pim_sim::{FaultPlan, PimServer, ServerConfig};
use std::fmt::Write as _;

pub mod crash;
pub mod serve;
pub use crash::{cmd_chaos_crash, CrashOpts};
pub use serve::{cmd_bench_serve, cmd_serve, BenchServeOpts};

/// Install the Ctrl-C / SIGTERM handler for the one-shot subcommands:
/// instead of the process dying mid-write, the dispatch engines stop
/// planning, cancel in-flight launches through the rank cancel tokens, and
/// wind down — strict runs report a clean "interrupted" error, recovery
/// runs return a partial report with interrupted jobs accounted.
pub fn install_interrupt_handler() {
    pim_host::interrupt::install_handler();
}

/// Map the CLI's dispatch flags to an engine: `--sync-dispatch true` forces
/// the lockstep loop, otherwise the pipelined engine runs with
/// `--fifo-depth` batches in flight per rank.
pub fn engine_from_flags(fifo_depth: usize, sync_dispatch: bool) -> Engine {
    if sync_dispatch {
        Engine::Lockstep
    } else {
        Engine::Pipelined {
            fifo_depth: fifo_depth.max(1),
        }
    }
}

/// Parse the shared `--interp-mode` flag: which simulator interpreter tier
/// executes the built-in kernels. `auto` runs a one-time timed calibration
/// probe ([`dpu_kernel::isa_loops::auto_mode`]) on the paper-default kernel
/// (asm, traceback) and picks whichever eligible tier is actually fastest
/// on this host — eligibility gates (verifier-clean fast path, JIT entry
/// checks) still apply, so `auto` is always safe; the old behavior of
/// blindly preferring the JIT lost to the fast interpreter on some kernels.
pub fn parse_interp_mode(text: &str) -> Option<InterpMode> {
    Some(match text {
        "checked" => InterpMode::Checked,
        "fast" => InterpMode::Fast,
        "jit" => InterpMode::Jit,
        "auto" => dpu_kernel::isa_loops::auto_mode(dpu_kernel::KernelVariant::Asm, true),
        _ => return None,
    })
}

/// Human name of an interpreter tier (for reports).
pub fn interp_mode_str(mode: InterpMode) -> &'static str {
    match mode {
        InterpMode::Checked => "checked",
        InterpMode::Fast => "fast",
        InterpMode::Jit => "jit",
    }
}

/// Which aligner the `align` command uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Adaptive banded (the paper's DPU algorithm), host-side.
    Adaptive,
    /// Static banded (the KSW2 baseline).
    Static,
    /// Gap-affine wavefront (exact).
    Wfa,
    /// Full Gotoh DP (exact; quadratic memory with traceback).
    Exact,
    /// The full simulated PiM pipeline.
    Pim,
}

impl Algo {
    /// Parse a command-line name.
    pub fn parse(text: &str) -> Option<Algo> {
        Some(match text {
            "adaptive" => Algo::Adaptive,
            "static" => Algo::Static,
            "wfa" => Algo::Wfa,
            "exact" => Algo::Exact,
            "pim" => Algo::Pim,
            _ => return None,
        })
    }
}

/// Which execution backend `align --backend` routes through. All choices
/// produce bit-identical results (the backend contract); they differ only
/// in where the work runs and how it is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// The simulated PiM server only.
    Pim,
    /// The CPU thread pool only (kernel-identical adaptive aligner).
    Cpu,
    /// The dynamic cost-model router over both backends.
    Router,
    /// The static up-front split (the hetero ablation baseline).
    Split,
}

impl BackendChoice {
    /// Parse a command-line name.
    pub fn parse(text: &str) -> Option<BackendChoice> {
        Some(match text {
            "pim" => BackendChoice::Pim,
            "cpu" => BackendChoice::Cpu,
            "router" => BackendChoice::Router,
            "split" => BackendChoice::Split,
            _ => return None,
        })
    }
}

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// IO problem reading/writing files.
    Io(std::io::Error),
    /// FASTA parse problem.
    Fasta(String),
    /// Alignment failure (band too small etc.).
    Align(String),
    /// Bad usage.
    Usage(String),
    /// The lint pass found errors; the payload is the full report.
    Lint(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Io(e) => write!(f, "io: {e}"),
            CliError::Fasta(e) => write!(f, "fasta: {e}"),
            CliError::Align(e) => write!(f, "align: {e}"),
            CliError::Usage(e) => write!(f, "usage: {e}"),
            CliError::Lint(report) => write!(f, "lint found errors\n{report}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Read a FASTA file with the paper's `N` policy.
pub fn read_fasta(path: &str) -> Result<Vec<Record>, CliError> {
    let file = std::fs::File::open(path)?;
    fasta::read(
        std::io::BufReader::new(file),
        NPolicy::RandomSubstitute { seed: 0x4E },
    )
    .map_err(|e| CliError::Fasta(e.to_string()))
}

/// Align records of `a_path` with same-index records of `b_path`; returns
/// TSV lines `name_a name_b score cigar identity`.
///
/// `backend` routes the whole batch through the backend layer (PiM only,
/// CPU pool only, the dynamic router, or the static split) instead of the
/// `algo` path; `cache_capacity > 0` puts a content-addressed result cache
/// in front of it, so repeated pairs are served without recomputation.
#[allow(clippy::too_many_arguments)]
pub fn cmd_align(
    a_path: &str,
    b_path: &str,
    algo: Algo,
    band: usize,
    ranks: usize,
    fifo_depth: usize,
    sync_dispatch: bool,
    sim_threads: usize,
    audit: bool,
    interp_mode: InterpMode,
    backend: Option<BackendChoice>,
    cache_capacity: usize,
) -> Result<String, CliError> {
    let a_recs = read_fasta(a_path)?;
    let b_recs = read_fasta(b_path)?;
    if a_recs.len() != b_recs.len() {
        return Err(CliError::Usage(format!(
            "record count mismatch: {} vs {}",
            a_recs.len(),
            b_recs.len()
        )));
    }
    let scheme = ScoringScheme::default();
    let mut audit_note: Option<String> = None;
    let mut out = String::from("#name_a\tname_b\tscore\tcigar\tidentity\n");
    let mut emit = |ra: &Record, rb: &Record, aln: &Alignment| {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{:.4}",
            ra.name,
            rb.name,
            aln.score,
            aln.cigar,
            aln.identity()
        );
    };
    if let Some(choice) = backend {
        let pairs: Vec<(DnaSeq, DnaSeq)> = a_recs
            .iter()
            .zip(&b_recs)
            .map(|(x, y)| (x.seq.clone(), y.seq.clone()))
            .collect();
        let band16 = band.next_multiple_of(16).max(16);
        let mut cache_store = pim_host::ResultCache::new(cache_capacity);
        let cache = (cache_capacity > 0).then_some(&mut cache_store);
        let rcfg = RecoveryConfig {
            audit,
            ..RecoveryConfig::default()
        };
        let params = KernelParams {
            band: band16,
            scheme,
            score_only: false,
        };
        let mut dcfg = DispatchConfig::new(
            NwKernel::paper_default().with_interp_mode(interp_mode),
            params,
        );
        dcfg.engine = engine_from_flags(fifo_depth, sync_dispatch);
        dcfg.sim_threads = sim_threads;
        dcfg.audit = audit;
        let mut server = PimServer::new(ServerConfig::with_ranks(ranks.max(1)));
        let (results, note) = match choice {
            BackendChoice::Split => {
                let hcfg = pim_host::HeteroConfig {
                    dispatch: dcfg,
                    cpu_threads: rcfg.cpu_threads,
                    cpu_band: band16,
                    pim_workload_per_second: 0.0,
                    cpu_workload_per_second: 0.0,
                };
                let h = pim_host::align_pairs_hetero_cached(&mut server, &hcfg, &pairs, cache)
                    .map_err(|e| CliError::Align(e.to_string()))?;
                (
                    h.results,
                    format!(
                        "# backend split: pim {} pairs, cpu {} pairs, {:.4}s",
                        h.pim_pairs, h.cpu_pairs, h.host_seconds
                    ),
                )
            }
            _ => {
                let mut pim = None;
                let mut cpu = None;
                if matches!(choice, BackendChoice::Pim | BackendChoice::Router) {
                    pim = Some(pim_host::SimPimBackend::new(
                        &mut server,
                        dcfg.clone(),
                        rcfg.clone(),
                    ));
                }
                if matches!(choice, BackendChoice::Cpu | BackendChoice::Router) {
                    cpu = Some(pim_host::CpuPoolBackend::new(
                        scheme,
                        band16,
                        false,
                        rcfg.cpu_threads,
                    ));
                }
                let mut lanes: Vec<&mut dyn pim_host::Backend> = Vec::new();
                if let Some(p) = pim.as_mut() {
                    lanes.push(p);
                }
                if let Some(c) = cpu.as_mut() {
                    lanes.push(c);
                }
                let rcap = pim_host::RouterConfig::new(band16, scheme, false);
                let r = pim_host::route_pairs(&mut lanes, &rcap, &pairs, cache)
                    .map_err(|e| CliError::Align(e.to_string()))?;
                (r.results, format!("# {}", r.report.summary()))
            }
        };
        for ((ra, rb), r) in a_recs.iter().zip(&b_recs).zip(results) {
            let aln = Alignment {
                score: r.score,
                cigar: r.cigar,
            };
            emit(ra, rb, &aln);
        }
        let _ = writeln!(out, "{note}");
        return Ok(out);
    }
    match algo {
        Algo::Pim => {
            let pairs: Vec<(DnaSeq, DnaSeq)> = a_recs
                .iter()
                .zip(&b_recs)
                .map(|(x, y)| (x.seq.clone(), y.seq.clone()))
                .collect();
            let mut server = PimServer::new(ServerConfig::with_ranks(ranks.max(1)));
            let params = KernelParams {
                band: band.next_multiple_of(16).max(16),
                scheme,
                score_only: false,
            };
            let mut cfg = DispatchConfig::new(
                NwKernel::paper_default().with_interp_mode(interp_mode),
                params,
            );
            cfg.engine = engine_from_flags(fifo_depth, sync_dispatch);
            cfg.sim_threads = sim_threads;
            cfg.audit = audit;
            let (report, results) = align_pairs(&mut server, &cfg, &pairs)
                .map_err(|e| CliError::Align(e.to_string()))?;
            if audit && report.fault.audit_failures > 0 {
                return Err(CliError::Align(format!(
                    "audit rejected {} of {} results: a returned CIGAR \
                     disagrees with its sequences or score",
                    report.fault.audit_failures, report.fault.audit_checked
                )));
            }
            for ((ra, rb), r) in a_recs.iter().zip(&b_recs).zip(results) {
                let aln = Alignment {
                    score: r.score,
                    cigar: r.cigar,
                };
                emit(ra, rb, &aln);
            }
            if audit {
                audit_note = Some(format!(
                    "# audited {} results, 0 failed",
                    report.fault.audit_checked
                ));
            }
        }
        _ => {
            for (ra, rb) in a_recs.iter().zip(&b_recs) {
                let aln = match algo {
                    Algo::Adaptive => AdaptiveAligner::new(scheme, band)
                        .align(&ra.seq, &rb.seq)
                        .map_err(|e| CliError::Align(e.to_string()))?,
                    Algo::Static => BandedAligner::new(scheme, band)
                        .align(&ra.seq, &rb.seq)
                        .map_err(|e| CliError::Align(e.to_string()))?,
                    Algo::Exact => FullAligner::affine(scheme)
                        .align(&ra.seq, &rb.seq)
                        .map_err(|e| CliError::Align(e.to_string()))?,
                    Algo::Wfa => {
                        let pens = Penalties::from_scheme(&scheme);
                        let w = WfaAligner::new(pens)
                            .align(&ra.seq, &rb.seq)
                            .map_err(|e| CliError::Align(e.to_string()))?;
                        let score =
                            pens.penalty_to_score(&scheme, ra.seq.len(), rb.seq.len(), w.penalty);
                        Alignment {
                            score,
                            cigar: w.cigar,
                        }
                    }
                    Algo::Pim => unreachable!(),
                };
                emit(ra, rb, &aln);
            }
        }
    }
    if let Some(note) = audit_note {
        let _ = writeln!(out, "{note}");
    }
    Ok(out)
}

/// All-vs-all score matrix on the simulated PiM server; TSV of
/// `name_i name_j score`.
pub fn cmd_matrix(path: &str, band: usize, ranks: usize) -> Result<String, CliError> {
    let recs = read_fasta(path)?;
    let seqs: Vec<DnaSeq> = recs.iter().map(|r| r.seq.clone()).collect();
    let mut server = PimServer::new(ServerConfig::with_ranks(ranks.max(1)));
    let params = KernelParams {
        band: band.next_multiple_of(16).max(16),
        scheme: ScoringScheme::default(),
        score_only: true,
    };
    let cfg = DispatchConfig::new(NwKernel::paper_default(), params);
    let (_report, results) =
        all_vs_all(&mut server, &cfg, &seqs).map_err(|e| CliError::Align(e.to_string()))?;
    let mut out = String::from("#name_i\tname_j\tscore\n");
    let mut idx = 0;
    for i in 0..recs.len() {
        for j in (i + 1)..recs.len() {
            let _ = writeln!(
                out,
                "{}\t{}\t{}",
                recs[i].name, recs[j].name, results[idx].score
            );
            idx += 1;
        }
    }
    Ok(out)
}

/// Generate a dataset as FASTA text. For pair datasets the records
/// alternate `pairK/a`, `pairK/b`; PacBio sets are named `setK/readJ`.
pub fn cmd_generate(kind: &str, count: usize, seed: u64) -> Result<String, CliError> {
    let mut records = Vec::new();
    match kind {
        "s1000" | "s10000" | "s30000" => {
            let preset = match kind {
                "s1000" => SyntheticPreset::S1000,
                "s10000" => SyntheticPreset::S10000,
                _ => SyntheticPreset::S30000,
            };
            for (k, (a, b)) in SyntheticParams::preset(preset, seed)
                .generate(count)
                .into_iter()
                .enumerate()
            {
                records.push(Record {
                    name: format!("pair{k}/a"),
                    seq: a,
                });
                records.push(Record {
                    name: format!("pair{k}/b"),
                    seq: b,
                });
            }
        }
        "16s" => {
            let params = SixteenSParams {
                count,
                ..SixteenSParams::scaled(Scale::FULL, seed)
            };
            for (k, seq) in params.generate().into_iter().enumerate() {
                records.push(Record {
                    name: format!("rrna{k}"),
                    seq,
                });
            }
        }
        "pacbio" => {
            let params = PacbioParams {
                sets: count,
                ..PacbioParams::scaled(Scale::FULL, seed)
            };
            for (k, set) in params.generate().into_iter().enumerate() {
                for (j, read) in set.reads.into_iter().enumerate() {
                    records.push(Record {
                        name: format!("set{k}/read{j}"),
                        seq: read,
                    });
                }
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown dataset {other:?} (expected s1000|s10000|s30000|16s|pacbio)"
            )))
        }
    }
    Ok(fasta::write_string(&records))
}

/// Minimal JSON string escaping for hand-rolled reports.
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Statically verify every built-in DPU kernel, derive its symbolic WCET
/// bound and cross-tasklet race-freedom proof, and run each under the
/// runtime sanitizer. Returns the report; `Err(CliError::Lint)` if any
/// verifier error, sanitizer fault, or unbounded kernel was found.
/// `verbose` includes info diagnostics (termination proofs,
/// unproven-access summaries); `json` renders the same facts as a
/// machine-readable object (all diagnostics included).
pub fn cmd_lint(verbose: bool, json: bool) -> Result<String, CliError> {
    use dpu_kernel::isa_loops;
    use dpu_kernel::KernelVariant;
    use pim_sim::isa::{verify_program, KernelParams, Reg, Severity};

    let mut out = String::new();
    let mut kernel_json = Vec::new();
    let mut kernels = 0usize;
    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    for (variant, vname) in [
        (KernelVariant::PureC, "pure_c"),
        (KernelVariant::Asm, "asm"),
    ] {
        for with_bt in [false, true] {
            kernels += 1;
            let name = format!(
                "{vname}/{}",
                if with_bt { "traceback" } else { "score_only" }
            );
            let prog = isa_loops::program(variant, with_bt);
            let spec = isa_loops::verify_spec(variant);
            let diags = verify_program(&prog, &spec);
            let errors = diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count();
            let warnings = diags
                .iter()
                .filter(|d| d.severity == Severity::Warning)
                .count();
            total_errors += errors;
            total_warnings += warnings;
            let _ = writeln!(
                out,
                "{name}: {} instructions, {errors} errors, {warnings} warnings",
                prog.len()
            );
            for d in &diags {
                if verbose || d.severity != Severity::Info {
                    let _ = writeln!(out, "  {d}");
                }
            }
            let sanitizer = match isa_loops::measure_sanitized(variant, with_bt) {
                Ok(m) => {
                    if verbose {
                        let _ = writeln!(
                            out,
                            "  sanitizer: clean ({:.1} instr/cell over {} cells)",
                            m.instr_per_cell, m.cells
                        );
                    }
                    "clean".to_string()
                }
                Err(e) => {
                    total_errors += 1;
                    let _ = writeln!(out, "  sanitizer: {e}");
                    e.to_string()
                }
            };
            // Symbolic worst-case bound in terms of the kernel's declared
            // inputs (r1 = remaining cells). An unbounded shipped kernel is
            // a lint error: no watchdog budget can be derived for it.
            let bound = isa_loops::kernel_wcet(variant, with_bt);
            let eval_192 = bound.eval(&KernelParams::new().set(
                Reg::new(1).expect("r1 exists"),
                isa_loops::PROOF_CELLS as u64,
            ));
            let race_free = isa_loops::prove_race_free(variant, with_bt);
            if bound.is_finite() {
                let _ = writeln!(
                    out,
                    "  wcet: {bound} instructions (<= {} at {} cells)",
                    eval_192
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "?".into()),
                    isa_loops::PROOF_CELLS,
                );
            } else {
                total_errors += 1;
                let _ = writeln!(out, "  wcet: {bound}");
            }
            match &race_free {
                Ok(()) => {
                    let _ = writeln!(
                        out,
                        "  race-freedom: proven for {} tasklets (fast path may skip the sanitizer)",
                        isa_loops::PROOF_TASKLETS,
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "  race-freedom: unproven ({e})");
                }
            }
            let diag_json: Vec<String> = diags.iter().map(|d| jstr(&d.to_string())).collect();
            kernel_json.push(format!(
                "{{\"kernel\": {}, \"instructions\": {}, \"errors\": {errors}, \
                 \"warnings\": {warnings}, \"diagnostics\": [{}], \"sanitizer\": {}, \
                 \"wcet\": {{\"finite\": {}, \"bound\": {}, \"eval_at_{}_cells\": {}}}, \
                 \"race_free\": {}}}",
                jstr(&name),
                prog.len(),
                diag_json.join(", "),
                jstr(&sanitizer),
                bound.is_finite(),
                jstr(&bound.to_string()),
                isa_loops::PROOF_CELLS,
                eval_192
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "null".into()),
                race_free.is_ok(),
            ));
        }
    }
    let _ = writeln!(
        out,
        "{kernels} kernels verified: {total_errors} errors, {total_warnings} warnings"
    );
    if json {
        out = format!(
            "{{\n  \"kernels\": [\n    {}\n  ],\n  \"kernels_verified\": {kernels},\n  \
             \"total_errors\": {total_errors},\n  \"total_warnings\": {total_warnings},\n  \
             \"ok\": {}\n}}\n",
            kernel_json.join(",\n    "),
            total_errors == 0,
        );
    }
    if total_errors > 0 {
        Err(CliError::Lint(out))
    } else {
        Ok(out)
    }
}

/// Knobs for the `chaos` fault-injection smoke test.
#[derive(Debug, Clone)]
pub struct ChaosOpts {
    /// Seed for both the dataset and the fault plan.
    pub seed: u64,
    /// Synthetic S1000 pairs to align.
    pub pairs: usize,
    /// Simulated ranks.
    pub ranks: usize,
    /// DPUs per rank.
    pub dpus: usize,
    /// Band width (rounded up to a multiple of 16).
    pub band: usize,
    /// Per-launch DPU fault probability.
    pub dpu_fault_rate: f64,
    /// Per-readback corruption probability.
    pub corrupt_rate: f64,
    /// Per-launch tasklet-livelock probability (`--hang-faults`): the DPU
    /// spins until the cycle-budget watchdog reaps it.
    pub hang_rate: f64,
    /// Per-launch silent CIGAR corruption probability
    /// (`--corrupt-cigars`): a result payload is mutated and its checksum
    /// recomputed, so only the host audit can catch it.
    pub silent_corrupt_rate: f64,
    /// Per-launch DPU cycle budget (`--watchdog-cycles`). `None` (the
    /// default, spelled `auto` on the command line) derives the budget from
    /// the kernels' symbolic WCET bounds and the batch geometry
    /// ([`dpu_kernel::cost::wcet_watchdog_cycles`]); `Some(0)` disables the
    /// watchdog, leaving hung DPUs to the wall-clock deadline; `Some(n)` is
    /// an explicit override.
    pub watchdog_cycles: Option<u64>,
    /// Wall-clock deadline on rank execution, seconds (0 disables).
    pub deadline_seconds: f64,
    /// Audit every returned alignment against its sequences and recomputed
    /// score (on by default — the only defense against silent corruption).
    pub audit: bool,
    /// DPUs masked out at boot.
    pub disabled: usize,
    /// Total PiM attempts per job before CPU fallback.
    pub retries: usize,
    /// Consecutive faults before a DPU is quarantined.
    pub quarantine: usize,
    /// FIFO depth for the pipelined engine.
    pub fifo_depth: usize,
    /// Use the lockstep engine instead of the pipelined one.
    pub sync_dispatch: bool,
    /// Simulator worker-thread budget shared by all concurrent ranks
    /// (0 = available parallelism).
    pub sim_threads: usize,
    /// Interpreter tier executing the simulated kernels (`--interp-mode`).
    pub interp_mode: InterpMode,
}

impl Default for ChaosOpts {
    fn default() -> Self {
        Self {
            seed: 42,
            pairs: 24,
            ranks: 2,
            dpus: 8,
            band: 128,
            dpu_fault_rate: 0.15,
            corrupt_rate: 0.1,
            hang_rate: 0.1,
            silent_corrupt_rate: 0.1,
            watchdog_cycles: None,
            deadline_seconds: 10.0,
            audit: true,
            disabled: 2,
            retries: 3,
            quarantine: 2,
            fifo_depth: 2,
            sync_dispatch: false,
            sim_threads: 0,
            interp_mode: InterpMode::default(),
        }
    }
}

/// Run the fault-injection smoke test: align seeded synthetic pairs on a
/// server with a seeded chaos fault plan (boot-disabled DPUs, a dead rank,
/// launch faults, readback corruption, a straggler) through the
/// fault-tolerant dispatcher.
///
/// Fails with [`CliError::Align`] if any job is lost or any result differs
/// from the fault-free CPU reference; on success returns a report ending in
/// "all N results match the fault-free reference".
pub fn cmd_chaos(opts: &ChaosOpts) -> Result<String, CliError> {
    let ranks = opts.ranks.max(1);
    let dpus = opts.dpus.max(1);
    let pairs = SyntheticParams::preset(SyntheticPreset::S1000, opts.seed).generate(opts.pairs);

    let mut server_cfg = ServerConfig::with_ranks(ranks);
    server_cfg.dpus_per_rank = dpus;
    server_cfg.fault = FaultPlan::chaos(
        opts.seed,
        ranks,
        dpus,
        opts.disabled,
        opts.dpu_fault_rate,
        opts.corrupt_rate,
        opts.hang_rate,
        opts.silent_corrupt_rate,
    );
    let plan = server_cfg.fault.clone();
    let params = KernelParams {
        band: opts.band.next_multiple_of(16).max(16),
        scheme: ScoringScheme::default(),
        score_only: false,
    };
    // Watchdog budget: an explicit `--watchdog-cycles` wins; otherwise
    // derive it from the kernels' symbolic WCET bounds at this batch's
    // geometry, counting only slots the fault plan leaves healthy (fewer
    // slots stack more jobs per DPU, which raises the per-DPU bound).
    let watchdog_cycles = opts.watchdog_cycles.unwrap_or_else(|| {
        let lens: Vec<(usize, usize)> = pairs.iter().map(|(a, b)| (a.len(), b.len())).collect();
        let healthy = (ranks * dpus)
            .saturating_sub(plan.disabled_dpus.len())
            .saturating_sub(plan.dead_ranks.len() * dpus)
            .max(1);
        dpu_kernel::cost::wcet_watchdog_cycles(&lens, params.band, params.score_only, healthy)
    });
    server_cfg.dpu.watchdog_cycles = watchdog_cycles;
    let mut server = PimServer::new(server_cfg);
    let mut cfg = DispatchConfig::new(
        NwKernel::paper_default().with_interp_mode(opts.interp_mode),
        params,
    );
    cfg.engine = engine_from_flags(opts.fifo_depth, opts.sync_dispatch);
    cfg.sim_threads = opts.sim_threads;
    let rcfg = RecoveryConfig {
        max_attempts: opts.retries.max(1),
        quarantine_after: opts.quarantine.max(1),
        deadline: DeadlinePolicy::after_seconds(opts.deadline_seconds),
        audit: opts.audit,
        ..RecoveryConfig::default()
    };
    let (report, results) = align_pairs_recovering(&mut server, &cfg, &rcfg, &pairs)
        .map_err(|e| CliError::Align(e.to_string()))?;

    let mut out = format!(
        "chaos: {} pairs on {} ranks x {} DPUs (seed {})\n\
         plan: {} disabled, dead ranks {:?}, fault rate {}, corrupt rate {}, \
         hang rate {}, silent corrupt rate {}\n\
         guard: watchdog {} cycles, deadline {}s, audit {}\n\
         {}\n{}\n",
        pairs.len(),
        ranks,
        dpus,
        opts.seed,
        plan.disabled_dpus.len(),
        plan.dead_ranks,
        plan.dpu_fault_rate,
        plan.corrupt_rate,
        plan.hang_rate,
        plan.silent_corrupt_rate,
        match opts.watchdog_cycles {
            None => format!("{watchdog_cycles} (wcet auto)"),
            Some(0) => "0 (off)".to_string(),
            Some(n) => n.to_string(),
        },
        opts.deadline_seconds,
        if opts.audit { "on" } else { "off" },
        report.summary(),
        report.fault.summary(),
    );

    if opts.audit && report.fault.silent_corruptions > 0 && report.fault.audit_failures == 0 {
        return Err(CliError::Align(format!(
            "{} silent corruptions were injected but the audit rejected \
             nothing — wrong results escaped\n{out}",
            report.fault.silent_corruptions
        )));
    }

    if results.len() != pairs.len() {
        return Err(CliError::Align(format!(
            "lost jobs: {} results for {} pairs\n{out}",
            results.len(),
            pairs.len()
        )));
    }
    let interrupted = report.fault.interrupted_jobs;
    let aligner = AdaptiveAligner::new(params.scheme, params.band);
    let mut mismatches = 0usize;
    let mut cancelled = 0usize;
    for (k, ((a, b), got)) in pairs.iter().zip(&results).enumerate() {
        if interrupted > 0 && got.status == JobStatus::Cancelled {
            // The run was cut short before this job completed; there is no
            // result to verify, and the cancellation is accounted above.
            cancelled += 1;
            continue;
        }
        let ok = match aligner.align(a, b) {
            // Compare the CIGAR too: silent corruption mutates the runs
            // while leaving the score field intact, so a score-only oracle
            // would let an escaped corruption pass.
            Ok(aln) => {
                got.status == JobStatus::Ok && got.score == aln.score && got.cigar == aln.cigar
            }
            Err(_) => got.status != JobStatus::Ok,
        };
        if !ok {
            mismatches += 1;
            let _ = writeln!(
                out,
                "pair {k}: got {:?}/{} vs fault-free reference",
                got.status, got.score
            );
        }
    }
    if mismatches > 0 {
        return Err(CliError::Align(format!(
            "{mismatches} results differ from the fault-free reference\n{out}"
        )));
    }
    if interrupted > 0 {
        let _ = writeln!(
            out,
            "interrupted: {cancelled} jobs cancelled; all {} delivered results match the fault-free reference",
            results.len() - cancelled
        );
    } else {
        let _ = writeln!(
            out,
            "all {} results match the fault-free reference",
            results.len()
        );
    }
    Ok(out)
}

/// Knobs for the `bench` host-throughput benchmark.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Synthetic S1000 pairs to align per run.
    pub pairs: usize,
    /// Simulated ranks.
    pub ranks: usize,
    /// DPUs per rank.
    pub dpus: usize,
    /// Rounds (batches per rank).
    pub rounds: usize,
    /// Band width (rounded up to a multiple of 16).
    pub band: usize,
    /// FIFO depth for the pipelined engine.
    pub fifo_depth: usize,
    /// Dataset seed.
    pub seed: u64,
    /// Host wall-clock hold injected on the straggler rank's odd-numbered
    /// launches, milliseconds.
    pub straggler_hold_ms: f64,
    /// Shrink every knob for a fast CI smoke run.
    pub smoke: bool,
    /// Where to write the JSON report (default `BENCH_dispatch.json`, or
    /// `BENCH_sim.json` with `--sim`).
    pub json_path: Option<String>,
    /// Simulator worker-thread budget shared by all concurrent ranks
    /// (0 = available parallelism).
    pub sim_threads: usize,
    /// Run the simulator benchmark (interpreter fast path + intra-rank
    /// parallelism) instead of the dispatch benchmark.
    pub sim: bool,
    /// Run the backend-router benchmark (dynamic router vs single backends
    /// vs static split, plus the result-cache phases) instead.
    pub backend: bool,
    /// Interpreter tier executing the simulated kernels (`--interp-mode`).
    pub interp_mode: InterpMode,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            pairs: 48,
            ranks: 4,
            dpus: 4,
            rounds: 6,
            band: 64,
            fifo_depth: 2,
            seed: 42,
            // The hold must exceed a round's non-straggler compute for the
            // lockstep barrier to actually stall; 35ms does on one core at
            // this geometry (~12ms of other-rank work per round).
            straggler_hold_ms: 35.0,
            smoke: false,
            json_path: None,
            sim_threads: 0,
            sim: false,
            backend: false,
            interp_mode: InterpMode::default(),
        }
    }
}

struct BenchRun {
    host_wall_seconds: f64,
    report: ExecutionReport,
    results: Vec<dpu_kernel::JobResult>,
}

fn bench_run(
    engine: Engine,
    fault: FaultPlan,
    opts: &BenchOpts,
    pairs: &[(DnaSeq, DnaSeq)],
) -> Result<BenchRun, CliError> {
    bench_run_guarded(engine, fault, opts, pairs, 0, false)
}

/// [`bench_run`] with the robustness guards dialed in: a per-launch DPU
/// cycle-budget watchdog and the host-side result audit. The bench's guard
/// condition measures their overhead on a clean run.
fn bench_run_guarded(
    engine: Engine,
    fault: FaultPlan,
    opts: &BenchOpts,
    pairs: &[(DnaSeq, DnaSeq)],
    watchdog_cycles: u64,
    audit: bool,
) -> Result<BenchRun, CliError> {
    if pim_host::interrupt::requested() {
        return Err(CliError::Align("interrupted — benchmark aborted".into()));
    }
    let mut server_cfg = ServerConfig::with_ranks(opts.ranks.max(1));
    server_cfg.dpus_per_rank = opts.dpus.max(1);
    server_cfg.fault = fault;
    server_cfg.dpu.watchdog_cycles = watchdog_cycles;
    let mut server = PimServer::new(server_cfg);
    let params = KernelParams {
        band: opts.band.next_multiple_of(16).max(16),
        scheme: ScoringScheme::default(),
        score_only: false,
    };
    let mut cfg = DispatchConfig::new(
        NwKernel::paper_default().with_interp_mode(opts.interp_mode),
        params,
    );
    cfg.rounds = opts.rounds.max(1);
    cfg.engine = engine;
    cfg.sim_threads = opts.sim_threads;
    cfg.audit = audit;
    let t0 = std::time::Instant::now();
    let (report, results) =
        align_pairs(&mut server, &cfg, pairs).map_err(|e| CliError::Align(e.to_string()))?;
    Ok(BenchRun {
        host_wall_seconds: t0.elapsed().as_secs_f64(),
        report,
        results,
    })
}

fn jf(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.9}")
    } else {
        "0.0".into()
    }
}

fn jf_arr(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|&x| jf(x)).collect();
    format!("[{}]", items.join(", "))
}

fn run_json(run: &BenchRun, pairs: usize) -> String {
    let mut s = format!(
        "{{\"host_wall_seconds\": {}, \"simulated_seconds\": {}, \"pairs_per_second\": {}",
        jf(run.host_wall_seconds),
        jf(run.report.total_seconds()),
        jf(pairs as f64 / run.host_wall_seconds.max(1e-12)),
    );
    if let Some(p) = &run.report.pipeline {
        let occ: Vec<String> = p.max_fifo_occupancy.iter().map(usize::to_string).collect();
        let _ = write!(
            s,
            ", \"stall\": {{\"per_rank_stall_seconds\": {}, \"per_rank_busy_seconds\": {}, \
             \"max_fifo_occupancy\": [{}], \"plan_seconds\": {}, \"decode_seconds\": {}, \
             \"encode_overlap_fraction\": {}, \"buffers_reused\": {}, \"buffers_allocated\": {}}}",
            jf_arr(&p.rank_stall_seconds),
            jf_arr(&p.rank_busy_seconds),
            occ.join(", "),
            jf(p.plan_seconds),
            jf(p.decode_seconds),
            jf(p.encode_overlap_fraction()),
            p.buffers_reused,
            p.buffers_allocated,
        );
    }
    s.push('}');
    s
}

/// Do two runs agree bit for bit where they must? Results, simulated
/// per-rank seconds, transfer bytes and aggregate DPU statistics.
fn bit_identical(a: &BenchRun, b: &BenchRun) -> bool {
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    a.results == b.results
        && bits(&a.report.rank_seconds) == bits(&b.report.rank_seconds)
        && a.report.transfer_seconds.to_bits() == b.report.transfer_seconds.to_bits()
        && a.report.dpu_seconds.to_bits() == b.report.dpu_seconds.to_bits()
        && a.report.transfer_in_bytes == b.report.transfer_in_bytes
        && a.report.transfer_out_bytes == b.report.transfer_out_bytes
        && a.report.stats == b.report.stats
        && a.report.workload == b.report.workload
}

/// Host-throughput benchmark: align the same workload through the lockstep
/// and pipelined engines, with and without an injected straggler rank, and
/// write a machine-readable `BENCH_dispatch.json`.
///
/// The straggler condition injects a wall-clock hold plus a simulated 2x
/// slowdown on rank 0: the lockstep engine serializes every hold into its
/// global round barrier, the pipelined engine overlaps it with the other
/// ranks' work. Results must stay bit-identical across engines in both
/// conditions — the benchmark fails otherwise.
pub fn cmd_bench(opts: &BenchOpts) -> Result<String, CliError> {
    if opts.backend {
        return cmd_bench_backend(opts);
    }
    if opts.sim {
        return cmd_bench_sim(opts);
    }
    let mut opts = opts.clone();
    if opts.smoke {
        opts.pairs = opts.pairs.min(24);
        opts.ranks = opts.ranks.min(2);
        opts.dpus = opts.dpus.min(4);
        opts.rounds = opts.rounds.min(4);
        opts.straggler_hold_ms = opts.straggler_hold_ms.min(3.0);
    }
    let pairs = SyntheticParams::preset(SyntheticPreset::S1000, opts.seed).generate(opts.pairs);
    let straggler = FaultPlan {
        straggler_ranks: vec![0],
        straggler_slowdown: 2.0,
        straggler_hold_ms: opts.straggler_hold_ms,
        ..FaultPlan::default()
    };
    let pipelined = Engine::Pipelined {
        fifo_depth: opts.fifo_depth.max(1),
    };

    let lock_s = bench_run(Engine::Lockstep, straggler.clone(), &opts, &pairs)?;
    let pipe_s = bench_run(pipelined, straggler.clone(), &opts, &pairs)?;
    let lock_c = bench_run(Engine::Lockstep, FaultPlan::default(), &opts, &pairs)?;
    let pipe_c = bench_run(pipelined, FaultPlan::default(), &opts, &pairs)?;

    // Guard condition: the watchdog budget plus the per-result audit on a
    // clean pipelined run, best-of-N host wall against an unguarded
    // best-of-N, so CI can assert the robustness machinery is ~free when
    // nothing faults. Outputs must stay bit-identical. The budget is
    // derived from the kernels' symbolic WCET bounds — what a production
    // launch would use — instead of a fixed constant.
    let guard_watchdog_cycles = {
        let lens: Vec<(usize, usize)> = pairs.iter().map(|(a, b)| (a.len(), b.len())).collect();
        dpu_kernel::cost::wcet_watchdog_cycles(
            &lens,
            opts.band.next_multiple_of(16).max(16),
            false,
            opts.ranks.max(1) * opts.dpus.max(1),
        )
    };
    const GUARD_REPS: usize = 3;
    let mut clean_best = f64::INFINITY;
    let mut guarded_best = f64::INFINITY;
    let mut guards_identical = true;
    let mut guarded_audited = 0usize;
    for _ in 0..GUARD_REPS {
        let c = bench_run(pipelined, FaultPlan::default(), &opts, &pairs)?;
        clean_best = clean_best.min(c.host_wall_seconds);
        let g = bench_run_guarded(
            pipelined,
            FaultPlan::default(),
            &opts,
            &pairs,
            guard_watchdog_cycles,
            true,
        )?;
        guarded_best = guarded_best.min(g.host_wall_seconds);
        guards_identical &= bit_identical(&pipe_c, &g);
        guarded_audited = g.report.fault.audit_checked;
    }
    let guard_overhead = (guarded_best - clean_best) / clean_best.max(1e-12);

    let identical =
        bit_identical(&lock_s, &pipe_s) && bit_identical(&lock_c, &pipe_c) && guards_identical;
    let speedup = lock_s.host_wall_seconds / pipe_s.host_wall_seconds.max(1e-12);
    let speedup_clean = lock_c.host_wall_seconds / pipe_c.host_wall_seconds.max(1e-12);

    let schema_version = upmem_nw_service::SCHEMA_VERSION;
    let json = format!(
        "{{\n  \"bench\": \"dispatch\",\n  \"schema_version\": {schema_version},\n  \
         \"pairs\": {},\n  \"ranks\": {},\n  \"dpus_per_rank\": {},\n  \
         \"rounds\": {},\n  \"fifo_depth\": {},\n  \"seed\": {},\n  \
         \"straggler\": {{\"rank\": 0, \"slowdown\": 2.0, \"hold_ms\": {}}},\n  \
         \"lockstep\": {},\n  \"pipelined\": {},\n  \
         \"no_fault\": {{\"lockstep\": {}, \"pipelined\": {}, \"speedup_host_wall\": {}}},\n  \
         \"guard\": {{\"watchdog_cycles\": {}, \"watchdog_derived\": true, \"audit\": true, \"reps\": {}, \
         \"clean_host_wall_seconds\": {}, \"guarded_host_wall_seconds\": {}, \
         \"overhead_fraction\": {}, \"audited\": {}, \"bit_identical\": {}}},\n  \
         \"speedup_host_wall\": {},\n  \"bit_identical\": {}\n}}\n",
        opts.pairs,
        opts.ranks.max(1),
        opts.dpus.max(1),
        opts.rounds.max(1),
        opts.fifo_depth.max(1),
        opts.seed,
        jf(opts.straggler_hold_ms),
        run_json(&lock_s, opts.pairs),
        run_json(&pipe_s, opts.pairs),
        run_json(&lock_c, opts.pairs),
        run_json(&pipe_c, opts.pairs),
        jf(speedup_clean),
        guard_watchdog_cycles,
        GUARD_REPS,
        jf(clean_best),
        jf(guarded_best),
        jf(guard_overhead),
        guarded_audited,
        guards_identical,
        jf(speedup),
        identical,
    );
    let path = opts
        .json_path
        .clone()
        .unwrap_or_else(|| "BENCH_dispatch.json".to_string());
    std::fs::write(&path, &json)?;

    let mut out = format!(
        "bench dispatch: {} pairs, {} ranks x {} DPUs, {} rounds, fifo depth {}\n\
         straggler (rank 0, 2.0x sim, {:.1}ms hold on odd launches):\n\
         \x20 lockstep  host wall {:.4}s ({:.0} pairs/s)\n\
         \x20 pipelined host wall {:.4}s ({:.0} pairs/s)  -> speedup {:.2}x\n\
         no fault:\n\
         \x20 lockstep  host wall {:.4}s, pipelined {:.4}s  -> speedup {:.2}x\n",
        opts.pairs,
        opts.ranks.max(1),
        opts.dpus.max(1),
        opts.rounds.max(1),
        opts.fifo_depth.max(1),
        opts.straggler_hold_ms,
        lock_s.host_wall_seconds,
        opts.pairs as f64 / lock_s.host_wall_seconds.max(1e-12),
        pipe_s.host_wall_seconds,
        opts.pairs as f64 / pipe_s.host_wall_seconds.max(1e-12),
        speedup,
        lock_c.host_wall_seconds,
        pipe_c.host_wall_seconds,
        speedup_clean,
    );
    let _ = writeln!(
        out,
        "guard (wcet-derived watchdog {} cycles + audit, best of {}): clean {:.4}s, \
         guarded {:.4}s -> overhead {:.2}%",
        guard_watchdog_cycles,
        GUARD_REPS,
        clean_best,
        guarded_best,
        100.0 * guard_overhead,
    );
    if let Some(p) = &pipe_s.report.pipeline {
        let _ = writeln!(out, "{}", p.summary());
    }
    let _ = writeln!(out, "wrote {path}");
    if !identical {
        return Err(CliError::Align(format!(
            "engines disagree: pipelined output is not bit-identical to lockstep\n{out}"
        )));
    }
    let _ = writeln!(out, "engines bit-identical across both conditions");
    Ok(out)
}

/// One DPU program for the simulator benchmark: `passes` passes of an
/// inner loop over `cells` cells. The workload is seeded per DPU from its
/// MRAM tag and a persistent launch counter, and every pass's outputs are
/// folded into a running digest in MRAM — so bit-identity across
/// interpreter modes and thread counts is checked end to end.
struct IsaBenchKernel {
    variant: dpu_kernel::KernelVariant,
    with_bt: bool,
    mode: dpu_kernel::isa_loops::InterpMode,
    passes: u32,
    cells: usize,
}

impl pim_sim::dpu::Kernel for IsaBenchKernel {
    fn run(&self, dpu: &mut pim_sim::Dpu) -> Result<(), pim_sim::SimError> {
        use dpu_kernel::isa_loops;
        let word = |bytes: Vec<u8>| u32::from_le_bytes(bytes.try_into().expect("4 bytes"));
        let tag = word(dpu.mram.host_read(0, 4)?);
        let launch = word(dpu.mram.host_read(4, 4)?);
        let mut digest = u64::from_le_bytes(dpu.mram.host_read(8, 8)?.try_into().expect("8 bytes"));
        for p in 0..self.passes {
            let perturb = tag
                .wrapping_add(launch.wrapping_mul(self.passes))
                .wrapping_add(p);
            let (stats, folded) = isa_loops::bench_cells_digest(
                self.variant,
                self.with_bt,
                perturb,
                self.cells,
                self.mode,
                digest,
            )?;
            digest = folded;
            dpu.stats.instructions += stats.instructions;
            // The mini pipeline retires 1 instruction/cycle at full
            // occupancy; the rank barrier only needs a deterministic count.
            dpu.stats.cycles += stats.instructions;
        }
        dpu.mram.host_write(4, &(launch + 1).to_le_bytes())?;
        dpu.mram.host_write(8, &digest.to_le_bytes())?;
        Ok(())
    }
}

struct SimCondRun {
    wall_seconds: f64,
    instructions: u64,
    instr_per_sec: f64,
    dpus_per_sec: f64,
    barrier_cycles: Vec<u64>,
    digests: Vec<u64>,
}

fn run_sim_condition(
    kernel: &IsaBenchKernel,
    dpus: usize,
    launches: usize,
    threads: usize,
    seed: u64,
) -> Result<SimCondRun, CliError> {
    use pim_sim::{DpuConfig, Rank};
    let align = |e: pim_sim::SimError| CliError::Align(e.to_string());
    let mut rank = Rank::new(DpuConfig::default(), dpus);
    for d in 0..dpus {
        let tag = (seed as u32) ^ (d as u32).wrapping_mul(0x9E37);
        let dpu = rank.dpu_mut(d).map_err(align)?;
        dpu.mram.host_write(0, &tag.to_le_bytes()).map_err(align)?;
        // Launch counter and digest start at zero.
        dpu.mram.host_write(4, &[0u8; 12]).map_err(align)?;
    }
    let t0 = std::time::Instant::now();
    let mut instructions = 0u64;
    let mut barrier_cycles = Vec::with_capacity(launches);
    for _ in 0..launches {
        let run = rank.launch_threads(kernel, threads).map_err(align)?;
        instructions += run.stats.total.instructions;
        barrier_cycles.push(run.barrier_cycles);
    }
    let wall_seconds = t0.elapsed().as_secs_f64();
    let mut digests = Vec::with_capacity(dpus);
    for d in 0..dpus {
        let bytes = rank
            .dpu(d)
            .and_then(|dpu| dpu.mram.host_read(8, 8))
            .map_err(align)?;
        digests.push(u64::from_le_bytes(bytes.try_into().expect("8 bytes")));
    }
    Ok(SimCondRun {
        wall_seconds,
        instructions,
        instr_per_sec: instructions as f64 / wall_seconds.max(1e-12),
        dpus_per_sec: (dpus * launches) as f64 / wall_seconds.max(1e-12),
        barrier_cycles,
        digests,
    })
}

/// Simulator benchmark (`bench --sim`): (a) an interpreter microbenchmark
/// per built-in kernel across all three tiers — fully checked path, the
/// verified dense fast path, and the block-translating JIT; (b) rank-level
/// launches of an ISA workload, sequential vs the intra-rank worker pool,
/// in all six mode x thread combinations. Writes `BENCH_sim.json`; fails
/// unless every condition's outputs, instruction counts and barrier cycles
/// are bit-identical to the sequential checked reference.
fn cmd_bench_sim(opts: &BenchOpts) -> Result<String, CliError> {
    use dpu_kernel::isa_loops::{self, InterpMode};
    use dpu_kernel::KernelVariant;
    use pim_host::dispatch::resolve_sim_threads;

    let cells = 192usize;
    // Full mode runs long enough to dominate timer noise and takes the
    // best of `reps` repetitions; results are deterministic either way.
    let (interp_iters, launches, passes, reps) = if opts.smoke {
        (24u32, 2usize, 2u32, 1usize)
    } else {
        (1200, 8, 24, 5)
    };
    let dpus = (opts.ranks.max(1) * opts.dpus.max(1)).max(2);
    let threads = resolve_sim_threads(opts.sim_threads);

    // (a) Interpreter microbenchmark: same perturb sequence through both
    // paths; instruction totals and output digests must agree exactly.
    let mut interp_json = Vec::new();
    let mut out = format!(
        "bench sim: {cells} cells/pass, {interp_iters} interp passes, \
         {dpus} DPUs x {launches} launches x {passes} passes, {threads} sim threads\n"
    );
    let mut identical = true;
    let mut wcet_sound = true;
    for (variant, vname) in [
        (KernelVariant::PureC, "pure_c"),
        (KernelVariant::Asm, "asm"),
    ] {
        for with_bt in [false, true] {
            let name = format!(
                "{vname}/{}",
                if with_bt { "traceback" } else { "score_only" }
            );
            let prep = isa_loops::prepared(variant, with_bt);
            let jit = isa_loops::jitted(variant, with_bt);
            let run_mode = |mode: InterpMode| -> Result<(u64, u64, f64), CliError> {
                let mut instr = 0u64;
                let mut digest = 0u64;
                let t0 = std::time::Instant::now();
                for i in 0..interp_iters {
                    let (stats, folded) =
                        isa_loops::bench_cells_digest(variant, with_bt, i, cells, mode, digest)
                            .map_err(|e| CliError::Align(e.to_string()))?;
                    instr += stats.instructions;
                    digest = folded;
                }
                Ok((instr, digest, t0.elapsed().as_secs_f64()))
            };
            // Repetitions are interleaved across the tiers (round-robin
            // rather than back-to-back) so slow drift in host load biases
            // no tier; each tier keeps its best repetition.
            let mut best: [Option<(u64, u64, f64)>; 3] = [None, None, None];
            for _ in 0..reps {
                for (slot, mode) in [
                    (0usize, InterpMode::Checked),
                    (1, InterpMode::Fast),
                    (2, InterpMode::Jit),
                ] {
                    let r = run_mode(mode)?;
                    if best[slot].is_none_or(|b| r.2 < b.2) {
                        best[slot] = Some(r);
                    }
                }
            }
            let (ci, cd, ct) = best[0].expect("reps >= 1");
            let (fi, fd, ft) = best[1].expect("reps >= 1");
            let (ji, jd, jt) = best[2].expect("reps >= 1");
            let same = ci == fi && cd == fd && ci == ji && cd == jd;
            identical &= same;
            let checked_ips = ci as f64 / ct.max(1e-12);
            let fast_ips = fi as f64 / ft.max(1e-12);
            let jit_ips = ji as f64 / jt.max(1e-12);
            let speedup = fast_ips / checked_ips.max(1e-12);
            let jit_speedup = jit_ips / checked_ips.max(1e-12);
            let jit_speedup_vs_fast = jit_ips / fast_ips.max(1e-12);
            // Static-vs-dynamic soundness: the retired instructions of one
            // pass must never exceed the symbolic WCET bound evaluated at
            // this cell count. The JIT tier's exact retired-instruction
            // accounting keeps it under the same bound (its count is
            // bit-identical to the checked tier's, checked above).
            let static_instr = isa_loops::kernel_wcet(variant, with_bt)
                .eval(
                    &pim_sim::isa::KernelParams::new()
                        .set(pim_sim::isa::Reg::new(1).expect("r1 exists"), cells as u64),
                )
                .unwrap_or(0);
            let dynamic_instr = ci / u64::from(interp_iters.max(1));
            let jit_dynamic_instr = ji / u64::from(interp_iters.max(1));
            let ratio = dynamic_instr as f64 / (static_instr.max(1)) as f64;
            let jit_ratio = jit_dynamic_instr as f64 / (static_instr.max(1)) as f64;
            wcet_sound &= static_instr > 0
                && dynamic_instr <= static_instr
                && jit_dynamic_instr <= static_instr;
            let _ = writeln!(
                out,
                "  {name}: checked {:.2} / fast {:.2} / jit {:.2} Minstr/s \
                 -> fast {:.2}x, jit {:.2}x ({} fused windows, {} blocks, \
                 {} -> {} ops, dynamic/static {ratio:.2})",
                checked_ips / 1e6,
                fast_ips / 1e6,
                jit_ips / 1e6,
                speedup,
                jit_speedup,
                prep.fused_windows(),
                jit.block_count(),
                prep.program().len(),
                prep.dense_len(),
            );
            interp_json.push(format!(
                "{{\"kernel\": \"{name}\", \"program_len\": {}, \"dense_len\": {}, \
                 \"fused_windows\": {}, \"fast_eligible\": {}, \"jit_eligible\": {}, \
                 \"jit_blocks\": {}, \"instructions\": {ci}, \
                 \"checked_instr_per_sec\": {}, \"fast_instr_per_sec\": {}, \
                 \"jit_instr_per_sec\": {}, \"speedup\": {}, \"jit_speedup\": {}, \
                 \"jit_speedup_vs_fast\": {}, \"bit_identical\": {same}, \
                 \"wcet_instructions\": {static_instr}, \"dynamic_static_ratio\": {}, \
                 \"jit_dynamic_static_ratio\": {}, \"race_free\": {}}}",
                prep.program().len(),
                prep.dense_len(),
                prep.fused_windows(),
                prep.fast_eligible(),
                jit.jit_eligible(),
                jit.block_count(),
                jf(checked_ips),
                jf(fast_ips),
                jf(jit_ips),
                jf(speedup),
                jf(jit_speedup),
                jf(jit_speedup_vs_fast),
                jf(ratio),
                jf(jit_ratio),
                prep.statically_race_free(),
            ));
        }
    }

    // (b) Rank-level: the acceptance comparison is parallel+fast against
    // the sequential+checked baseline (the pre-fast-path simulator).
    let kernel = |mode: InterpMode| IsaBenchKernel {
        variant: KernelVariant::Asm,
        with_bt: true,
        mode,
        passes,
        cells,
    };
    // Each repetition is a full fresh run (rank state, launch counters,
    // digests all restart), so repeating only tightens the timing; the
    // repetitions cycle through all six conditions round-robin so slow
    // drift in host load biases no condition, and each condition keeps
    // its best repetition.
    let conds = [
        (InterpMode::Checked, 1usize),
        (InterpMode::Fast, 1),
        (InterpMode::Jit, 1),
        (InterpMode::Checked, threads),
        (InterpMode::Fast, threads),
        (InterpMode::Jit, threads),
    ];
    let mut best: [Option<SimCondRun>; 6] = [None, None, None, None, None, None];
    for _ in 0..reps {
        for (slot, &(mode, th)) in conds.iter().enumerate() {
            let r = run_sim_condition(&kernel(mode), dpus, launches, th, opts.seed)?;
            if best[slot]
                .as_ref()
                .is_none_or(|b| r.wall_seconds < b.wall_seconds)
            {
                best[slot] = Some(r);
            }
        }
    }
    let [seq_checked, seq_fast, seq_jit, par_checked, par_fast, par_jit] =
        best.map(|b| b.expect("reps >= 1"));
    for c in [&seq_fast, &seq_jit, &par_checked, &par_fast, &par_jit] {
        identical &= c.digests == seq_checked.digests
            && c.instructions == seq_checked.instructions
            && c.barrier_cycles == seq_checked.barrier_cycles;
    }
    let speedup_dpus = par_fast.dpus_per_sec / seq_checked.dpus_per_sec.max(1e-12);
    // The JIT acceptance comparisons: the compiled tier against the
    // sequential checked baseline (same thread count, pure tier effect)
    // and against the fast interpreter at both thread counts.
    let jit_speedup_vs_checked = seq_jit.dpus_per_sec / seq_checked.dpus_per_sec.max(1e-12);
    let jit_speedup_vs_fast = seq_jit.dpus_per_sec / seq_fast.dpus_per_sec.max(1e-12);
    let speedup_jit_dpus = par_jit.dpus_per_sec / seq_checked.dpus_per_sec.max(1e-12);
    for (label, c) in [
        ("sequential+checked", &seq_checked),
        ("sequential+fast", &seq_fast),
        ("sequential+jit", &seq_jit),
        ("parallel+checked", &par_checked),
        ("parallel+fast", &par_fast),
        ("parallel+jit", &par_jit),
    ] {
        let _ = writeln!(
            out,
            "  {label}: {:.1} simulated DPUs/s ({:.2} Minstr/s)",
            c.dpus_per_sec,
            c.instr_per_sec / 1e6
        );
    }
    let _ = writeln!(
        out,
        "  parallel+fast over sequential+checked: {speedup_dpus:.2}x"
    );
    let _ = writeln!(
        out,
        "  jit over checked (sequential): {jit_speedup_vs_checked:.2}x, \
         jit over fast (sequential): {jit_speedup_vs_fast:.2}x, \
         parallel+jit over sequential+checked: {speedup_jit_dpus:.2}x"
    );

    let cond_json = |c: &SimCondRun| {
        format!(
            "{{\"wall_seconds\": {}, \"instructions\": {}, \"instr_per_sec\": {}, \
             \"dpus_per_sec\": {}}}",
            jf(c.wall_seconds),
            c.instructions,
            jf(c.instr_per_sec),
            jf(c.dpus_per_sec)
        )
    };
    let schema_version = upmem_nw_service::SCHEMA_VERSION;
    let json = format!(
        "{{\n  \"bench\": \"sim\",\n  \"schema_version\": {schema_version},\n  \
         \"cells\": {cells},\n  \"interp_passes\": {interp_iters},\n  \
         \"dpus\": {dpus},\n  \"launches\": {launches},\n  \"passes_per_launch\": {passes},\n  \
         \"sim_threads\": {threads},\n  \"seed\": {},\n  \"interp\": [\n    {}\n  ],\n  \
         \"rank\": {{\n    \"sequential_checked\": {},\n    \"sequential_fast\": {},\n    \
         \"sequential_jit\": {},\n    \"parallel_checked\": {},\n    \"parallel_fast\": {},\n    \
         \"parallel_jit\": {}\n  }},\n  \
         \"speedup_dpus_per_sec\": {},\n  \"jit_speedup_vs_checked\": {},\n  \
         \"jit_speedup_vs_fast\": {},\n  \"speedup_jit_dpus_per_sec\": {},\n  \
         \"bit_identical\": {identical}\n}}\n",
        opts.seed,
        interp_json.join(",\n    "),
        cond_json(&seq_checked),
        cond_json(&seq_fast),
        cond_json(&seq_jit),
        cond_json(&par_checked),
        cond_json(&par_fast),
        cond_json(&par_jit),
        jf(speedup_dpus),
        jf(jit_speedup_vs_checked),
        jf(jit_speedup_vs_fast),
        jf(speedup_jit_dpus),
    );
    let path = opts
        .json_path
        .clone()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    std::fs::write(&path, &json)?;
    let _ = writeln!(out, "wrote {path}");
    if !wcet_sound {
        return Err(CliError::Align(format!(
            "WCET soundness violated: a kernel retired more instructions per \
             pass than its static bound allows\n{out}"
        )));
    }
    if !identical {
        return Err(CliError::Align(format!(
            "interpreter paths disagree: fast/parallel output is not \
             bit-identical to the sequential checked reference\n{out}"
        )));
    }
    let _ = writeln!(out, "all conditions bit-identical");
    Ok(out)
}

/// Which backends one routed benchmark condition runs with.
#[derive(Clone, Copy)]
enum LaneSel {
    Pim,
    Cpu,
    Both,
}

/// Run one routed condition on a fresh server: build the selected
/// backends, route the whole workload, return the outcome.
fn backend_route(
    opts: &BenchOpts,
    band: usize,
    sel: LaneSel,
    pairs: &[(DnaSeq, DnaSeq)],
    cache: Option<&mut pim_host::ResultCache>,
) -> Result<pim_host::RouterOutcome, CliError> {
    if pim_host::interrupt::requested() {
        return Err(CliError::Align("interrupted — benchmark aborted".into()));
    }
    let scheme = ScoringScheme::default();
    let params = KernelParams {
        band,
        scheme,
        score_only: false,
    };
    let mut dcfg = DispatchConfig::new(
        NwKernel::paper_default().with_interp_mode(opts.interp_mode),
        params,
    );
    dcfg.engine = Engine::Pipelined {
        fifo_depth: opts.fifo_depth.max(1),
    };
    dcfg.sim_threads = opts.sim_threads;
    let rcfg = RecoveryConfig::default();
    let mut server_cfg = ServerConfig::with_ranks(opts.ranks.max(1));
    server_cfg.dpus_per_rank = opts.dpus.max(1);
    let mut server = PimServer::new(server_cfg);
    let mut pim = None;
    let mut cpu = None;
    if matches!(sel, LaneSel::Pim | LaneSel::Both) {
        pim = Some(pim_host::SimPimBackend::new(
            &mut server,
            dcfg,
            rcfg.clone(),
        ));
    }
    if matches!(sel, LaneSel::Cpu | LaneSel::Both) {
        cpu = Some(pim_host::CpuPoolBackend::new(
            scheme,
            band,
            false,
            rcfg.cpu_threads,
        ));
    }
    let mut lanes: Vec<&mut dyn pim_host::Backend> = Vec::new();
    if let Some(p) = pim.as_mut() {
        lanes.push(p);
    }
    if let Some(c) = cpu.as_mut() {
        lanes.push(c);
    }
    let mut rcap = pim_host::RouterConfig::new(band, scheme, false);
    // Keep at least ~8 batches in play even at smoke scale so the routing
    // decision is exercised (one giant batch would make every condition
    // degenerate to a single assignment).
    rcap.batch_size = rcap.batch_size.min((pairs.len() / 8).max(1));
    pim_host::route_pairs(&mut lanes, &rcap, pairs, cache)
        .map_err(|e| CliError::Align(e.to_string()))
}

/// A workload of `base.len()` pairs where `dup_frac` of the entries are
/// deterministic repeats of earlier ones (the cache phases).
fn dup_workload(base: &[(DnaSeq, DnaSeq)], dup_frac: f64) -> Vec<(DnaSeq, DnaSeq)> {
    let n = base.len();
    let dups = ((n as f64) * dup_frac).round() as usize;
    let uniques = n.saturating_sub(dups).max(1);
    (0..n)
        .map(|i| {
            base[if i < uniques {
                i
            } else {
                (i - uniques) % uniques
            }]
            .clone()
        })
        .collect()
}

/// One cache phase's measurements.
struct CachePhase {
    dup_frac: f64,
    uncached_seconds: f64,
    cold_seconds: f64,
    warm_seconds: f64,
    cold: pim_host::CacheStats,
    warm: pim_host::CacheStats,
    identical: bool,
}

/// Backend benchmark (`bench --backend`): (a) the dynamic cost-model
/// router against each single backend and the static up-front split on the
/// same mixed workload — all four must return bit-identical results; (b)
/// the content-addressed result cache at 0%/30%/90% repeated pairs, cold
/// and warm, against an uncached reference — cached results must stay
/// bit-identical and the hit/miss counters must conserve. Also records the
/// tier the `--interp-mode auto` calibration probe picks per kernel.
/// Writes `BENCH_backend.json`; fails on any identity or conservation
/// violation.
pub fn cmd_bench_backend(opts: &BenchOpts) -> Result<String, CliError> {
    use dpu_kernel::isa_loops::auto_mode;
    use dpu_kernel::KernelVariant;

    let mut opts = opts.clone();
    if opts.smoke {
        opts.pairs = opts.pairs.min(16);
        opts.ranks = opts.ranks.min(2);
        opts.dpus = opts.dpus.min(4);
    }
    opts.pairs = opts.pairs.max(4);
    let band = opts.band.next_multiple_of(16).max(16);
    let pairs = SyntheticParams::preset(SyntheticPreset::S1000, opts.seed).generate(opts.pairs);
    let cpu_threads = RecoveryConfig::default().cpu_threads;

    // The `--interp-mode auto` calibration: which tier the one-time timed
    // probe picks per kernel (recorded so reports show the decision).
    let autos: Vec<(String, InterpMode)> = [
        (KernelVariant::PureC, "pure_c"),
        (KernelVariant::Asm, "asm"),
    ]
    .into_iter()
    .flat_map(|(v, name)| {
        [false, true].map(|bt| {
            (
                format!("{name}/{}", if bt { "traceback" } else { "score_only" }),
                auto_mode(v, bt),
            )
        })
    })
    .collect();

    // (a) Routing: dynamic router vs each single backend vs static split,
    // all on the same mixed (all-unique) workload. Best of N timed runs
    // per condition so one noisy launch cannot flake the comparison.
    let reps = if opts.smoke { 2 } else { 3 };
    let best_of = |sel: LaneSel| -> Result<pim_host::RouterOutcome, CliError> {
        let mut best: Option<pim_host::RouterOutcome> = None;
        for _ in 0..reps {
            let run = backend_route(&opts, band, sel, &pairs, None)?;
            if best.as_ref().is_none_or(|b| run.seconds < b.seconds) {
                best = Some(run);
            }
        }
        Ok(best.expect("at least one rep"))
    };
    let router = best_of(LaneSel::Both)?;
    let pim_only = best_of(LaneSel::Pim)?;
    let cpu_only = best_of(LaneSel::Cpu)?;
    let split = {
        let mut best: Option<pim_host::HeteroOutcome> = None;
        for _ in 0..reps {
            let params = KernelParams {
                band,
                scheme: ScoringScheme::default(),
                score_only: false,
            };
            let mut dcfg = DispatchConfig::new(
                NwKernel::paper_default().with_interp_mode(opts.interp_mode),
                params,
            );
            dcfg.engine = Engine::Pipelined {
                fifo_depth: opts.fifo_depth.max(1),
            };
            dcfg.sim_threads = opts.sim_threads;
            let mut server_cfg = ServerConfig::with_ranks(opts.ranks.max(1));
            server_cfg.dpus_per_rank = opts.dpus.max(1);
            let mut server = PimServer::new(server_cfg);
            let hcfg = pim_host::HeteroConfig {
                dispatch: dcfg,
                cpu_threads,
                cpu_band: band,
                pim_workload_per_second: 0.0,
                cpu_workload_per_second: 0.0,
            };
            let run = pim_host::align_pairs_hetero(&mut server, &hcfg, &pairs)
                .map_err(|e| CliError::Align(e.to_string()))?;
            if best
                .as_ref()
                .is_none_or(|b| run.host_seconds < b.host_seconds)
            {
                best = Some(run);
            }
        }
        best.expect("at least one rep")
    };
    let routing_identical = router.results == pim_only.results
        && router.results == cpu_only.results
        && router.results == split.results;
    let best_single = pim_only.seconds.min(cpu_only.seconds);
    let router_vs_best_single = router.seconds / best_single.max(1e-12);
    let router_vs_split = router.seconds / split.host_seconds.max(1e-12);

    // (b) Cache phases: 0% / 30% / 90% repeated pairs; uncached reference,
    // then a cold run (fresh cache, within-run dedup active) and a warm
    // run (same cache again) through the router.
    let mut phases = Vec::new();
    for dup_frac in [0.0, 0.3, 0.9] {
        let wl = dup_workload(&pairs, dup_frac);
        let uncached = backend_route(&opts, band, LaneSel::Both, &wl, None)?;
        let mut cache = pim_host::ResultCache::new(4096);
        let cold = backend_route(&opts, band, LaneSel::Both, &wl, Some(&mut cache))?;
        let warm = backend_route(&opts, band, LaneSel::Both, &wl, Some(&mut cache))?;
        phases.push(CachePhase {
            dup_frac,
            uncached_seconds: uncached.seconds,
            cold_seconds: cold.seconds,
            warm_seconds: warm.seconds,
            cold: cold.report.cache,
            warm: warm.report.cache,
            identical: cold.results == uncached.results && warm.results == uncached.results,
        });
    }
    let conserved = phases
        .iter()
        .all(|p| p.cold.conserved() && p.warm.conserved());
    let phases_identical = phases.iter().all(|p| p.identical);
    let identical = routing_identical && phases_identical;
    let dup90 = phases.last().expect("three phases");
    let dup90_cold_speedup = dup90.uncached_seconds / dup90.cold_seconds.max(1e-12);
    let dup90_warm_speedup = dup90.uncached_seconds / dup90.warm_seconds.max(1e-12);

    let lane_json = |l: &pim_host::router::LaneReport| {
        format!(
            "{{\"name\": \"{}\", \"batches\": {}, \"pairs\": {}, \"units\": {}, \
             \"busy_seconds\": {}, \"rate\": {}, \"utilization\": {}}}",
            l.name,
            l.batches,
            l.pairs,
            jf(l.units),
            jf(l.busy_seconds),
            jf(l.rate),
            jf(l.utilization),
        )
    };
    let outcome_json = |o: &pim_host::RouterOutcome| {
        let lanes: Vec<String> = o.report.lanes.iter().map(lane_json).collect();
        format!(
            "{{\"wall_seconds\": {}, \"pairs_per_second\": {}, \"lanes\": [{}]}}",
            jf(o.seconds),
            jf(opts.pairs as f64 / o.seconds.max(1e-12)),
            lanes.join(", "),
        )
    };
    let cache_json = |c: &pim_host::CacheStats| {
        format!(
            "{{\"lookups\": {}, \"hits\": {}, \"misses\": {}, \"inserts\": {}, \
             \"evictions\": {}, \"rejected_inserts\": {}, \"hit_rate\": {}}}",
            c.lookups,
            c.hits,
            c.misses,
            c.inserts,
            c.evictions,
            c.rejected_inserts,
            jf(c.hit_rate()),
        )
    };
    let phase_json: Vec<String> = phases
        .iter()
        .map(|p| {
            format!(
                "{{\"dup_fraction\": {}, \"uncached_seconds\": {}, \"cold_seconds\": {}, \
                 \"warm_seconds\": {}, \"cold_speedup\": {}, \"warm_speedup\": {}, \
                 \"cold_cache\": {}, \"warm_cache\": {}, \"conserved\": {}, \
                 \"bit_identical\": {}}}",
                jf(p.dup_frac),
                jf(p.uncached_seconds),
                jf(p.cold_seconds),
                jf(p.warm_seconds),
                jf(p.uncached_seconds / p.cold_seconds.max(1e-12)),
                jf(p.uncached_seconds / p.warm_seconds.max(1e-12)),
                cache_json(&p.cold),
                cache_json(&p.warm),
                p.cold.conserved() && p.warm.conserved(),
                p.identical,
            )
        })
        .collect();
    let auto_json: Vec<String> = autos
        .iter()
        .map(|(name, mode)| format!("{}: \"{}\"", jstr(name), interp_mode_str(*mode)))
        .collect();
    let schema_version = upmem_nw_service::SCHEMA_VERSION;
    let json = format!(
        "{{\n  \"bench\": \"backend\",\n  \"schema_version\": {schema_version},\n  \
         \"pairs\": {},\n  \"ranks\": {},\n  \"dpus_per_rank\": {},\n  \"band\": {band},\n  \
         \"cpu_threads\": {cpu_threads},\n  \"seed\": {},\n  \
         \"auto_modes\": {{{}}},\n  \
         \"routing\": {{\n    \"router\": {},\n    \"pim_only\": {},\n    \"cpu_only\": {},\n    \
         \"static_split\": {{\"wall_seconds\": {}, \"pim_pairs\": {}, \"cpu_pairs\": {}, \
         \"pairs_per_second\": {}}},\n    \
         \"router_vs_best_single\": {},\n    \"router_vs_split\": {},\n    \
         \"bit_identical\": {}\n  }},\n  \
         \"cache_phases\": [\n    {}\n  ],\n  \
         \"dup90_cold_speedup\": {},\n  \"dup90_warm_speedup\": {},\n  \
         \"conserved\": {conserved},\n  \"bit_identical\": {identical}\n}}\n",
        opts.pairs,
        opts.ranks.max(1),
        opts.dpus.max(1),
        opts.seed,
        auto_json.join(", "),
        outcome_json(&router),
        outcome_json(&pim_only),
        outcome_json(&cpu_only),
        jf(split.host_seconds),
        split.pim_pairs,
        split.cpu_pairs,
        jf(opts.pairs as f64 / split.host_seconds.max(1e-12)),
        jf(router_vs_best_single),
        jf(router_vs_split),
        routing_identical,
        phase_json.join(",\n    "),
        jf(dup90_cold_speedup),
        jf(dup90_warm_speedup),
    );
    let path = opts
        .json_path
        .clone()
        .unwrap_or_else(|| "BENCH_backend.json".to_string());
    std::fs::write(&path, &json)?;

    let mut out = format!(
        "bench backend: {} pairs, {} ranks x {} DPUs, band {band}, {} cpu threads\n",
        opts.pairs,
        opts.ranks.max(1),
        opts.dpus.max(1),
        cpu_threads,
    );
    for (name, mode) in &autos {
        let _ = writeln!(out, "  auto tier {name}: {}", interp_mode_str(*mode));
    }
    let _ = writeln!(
        out,
        "routing (mixed workload):\n\
         \x20 router    {:.4}s ({})\n\
         \x20 pim-only  {:.4}s\n\
         \x20 cpu-only  {:.4}s\n\
         \x20 split     {:.4}s (pim {} / cpu {} pairs)\n\
         \x20 router vs best single {:.2}x, vs split {:.2}x (lower is better)",
        router.seconds,
        router.report.summary(),
        pim_only.seconds,
        cpu_only.seconds,
        split.host_seconds,
        split.pim_pairs,
        split.cpu_pairs,
        router_vs_best_single,
        router_vs_split,
    );
    for p in &phases {
        let _ = writeln!(
            out,
            "cache {}% dup: uncached {:.4}s, cold {:.4}s ({:.2}x, {} hits/{} lookups), \
             warm {:.4}s ({:.2}x, {} hits/{} lookups)",
            (p.dup_frac * 100.0).round(),
            p.uncached_seconds,
            p.cold_seconds,
            p.uncached_seconds / p.cold_seconds.max(1e-12),
            p.cold.hits,
            p.cold.lookups,
            p.warm_seconds,
            p.uncached_seconds / p.warm_seconds.max(1e-12),
            p.warm.hits,
            p.warm.lookups,
        );
    }
    let _ = writeln!(out, "wrote {path}");
    if !conserved {
        return Err(CliError::Align(format!(
            "cache counters do not conserve (hits + misses != lookups)\n{out}"
        )));
    }
    if !identical {
        return Err(CliError::Align(format!(
            "backends disagree: routed/cached results are not bit-identical \
             to the single-backend reference\n{out}"
        )));
    }
    let _ = writeln!(out, "all backends and cache phases bit-identical");
    Ok(out)
}

/// Server topology description.
pub fn cmd_info(ranks: usize) -> String {
    let server = PimServer::new(ServerConfig::with_ranks(ranks.max(1)));
    let t = server.topology();
    format!(
        "simulated UPMEM PiM server\n\
         ranks:            {}\n\
         DPUs per rank:    {}\n\
         total DPUs:       {}\n\
         DPU frequency:    {} MHz\n\
         MRAM per DPU:     {} MB\n\
         WRAM per DPU:     {} KB\n\
         aggregate MRAM bandwidth: {:.2} TB/s\n",
        t.ranks,
        t.dpus_per_rank,
        t.total_dpus,
        t.freq_hz / 1e6,
        t.mram_per_dpu >> 20,
        t.wram_per_dpu >> 10,
        t.aggregate_mram_bandwidth / 1e12
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let path =
            std::env::temp_dir().join(format!("upmem-nw-cli-test-{}-{name}", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn align_command_all_algorithms_agree_on_easy_pairs() {
        let a = write_temp("a.fa", ">r0\nACGTACGTACGTACGT\n>r1\nGATTACAGATTACA\n");
        let b = write_temp("b.fa", ">s0\nACGTACGGACGTACGT\n>s1\nGATTACAGATTACA\n");
        let mut scores = Vec::new();
        for algo in [
            Algo::Adaptive,
            Algo::Static,
            Algo::Wfa,
            Algo::Exact,
            Algo::Pim,
        ] {
            let tsv = cmd_align(
                &a,
                &b,
                algo,
                16,
                1,
                2,
                false,
                0,
                false,
                InterpMode::default(),
                None,
                0,
            )
            .unwrap();
            let lines: Vec<&str> = tsv.lines().skip(1).collect();
            assert_eq!(lines.len(), 2, "{algo:?}");
            let score: i32 = lines[0].split('\t').nth(2).unwrap().parse().unwrap();
            scores.push(score);
            assert!(lines[1].contains("GATTACAGATTACA") || lines[1].contains("28"));
        }
        // All five paths find the same optimal score on these easy pairs.
        assert!(scores.windows(2).all(|w| w[0] == w[1]), "{scores:?}");
        std::fs::remove_file(a).ok();
        std::fs::remove_file(b).ok();
    }

    #[test]
    fn align_command_rejects_count_mismatch() {
        let a = write_temp("c.fa", ">r0\nACGT\n");
        let b = write_temp("d.fa", ">s0\nACGT\n>s1\nACGT\n");
        assert!(matches!(
            cmd_align(
                &a,
                &b,
                Algo::Exact,
                16,
                1,
                2,
                false,
                0,
                false,
                InterpMode::default(),
                None,
                0
            ),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(a).ok();
        std::fs::remove_file(b).ok();
    }

    #[test]
    fn align_backend_paths_match_the_adaptive_reference() {
        // r2/s2 repeats r0/s0 so a cache-enabled run exercises the
        // within-run duplicate path too.
        let a = write_temp(
            "ba.fa",
            ">r0\nACGTACGTACGTACGT\n>r1\nGATTACAGATTACA\n>r2\nACGTACGTACGTACGT\n",
        );
        let b = write_temp(
            "bb.fa",
            ">s0\nACGTACGGACGTACGT\n>s1\nGATTACAGATTACA\n>s2\nACGTACGGACGTACGT\n",
        );
        let rows = |tsv: &str| -> Vec<String> {
            tsv.lines()
                .filter(|l| !l.starts_with('#'))
                .map(str::to_owned)
                .collect()
        };
        let reference = rows(
            &cmd_align(
                &a,
                &b,
                Algo::Adaptive,
                16,
                1,
                2,
                false,
                0,
                false,
                InterpMode::default(),
                None,
                0,
            )
            .unwrap(),
        );
        assert_eq!(reference.len(), 3);
        for choice in [
            BackendChoice::Pim,
            BackendChoice::Cpu,
            BackendChoice::Router,
            BackendChoice::Split,
        ] {
            for cache in [0usize, 64] {
                let tsv = cmd_align(
                    &a,
                    &b,
                    Algo::Adaptive,
                    16,
                    1,
                    2,
                    false,
                    0,
                    false,
                    InterpMode::default(),
                    Some(choice),
                    cache,
                )
                .unwrap();
                // The backend path appends a telemetry note line.
                assert!(tsv.lines().last().unwrap().starts_with('#'), "{tsv}");
                assert_eq!(rows(&tsv), reference, "{choice:?} cache={cache}");
            }
        }
        std::fs::remove_file(a).ok();
        std::fs::remove_file(b).ok();
    }

    #[test]
    fn matrix_command_counts_pairs() {
        let f = write_temp(
            "m.fa",
            ">x\nACGTACGTAAAA\n>y\nACGTACGTAAAT\n>z\nACGTACGAAAAA\n",
        );
        let tsv = cmd_matrix(&f, 16, 1).unwrap();
        assert_eq!(tsv.lines().count(), 1 + 3); // header + C(3,2)
        assert!(tsv.contains("x\ty\t"));
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn generate_round_trips_through_fasta() {
        for kind in ["s1000", "16s", "pacbio"] {
            let text = cmd_generate(kind, 2, 9).unwrap();
            let recs = fasta::read_str(&text, NPolicy::Reject).unwrap();
            assert!(!recs.is_empty(), "{kind}");
        }
        assert!(cmd_generate("bogus", 1, 0).is_err());
    }

    #[test]
    fn generate_is_seeded() {
        assert_eq!(
            cmd_generate("s1000", 2, 5).unwrap(),
            cmd_generate("s1000", 2, 5).unwrap()
        );
        assert_ne!(
            cmd_generate("s1000", 2, 5).unwrap(),
            cmd_generate("s1000", 2, 6).unwrap()
        );
    }

    #[test]
    fn info_mentions_topology() {
        let info = cmd_info(40);
        assert!(info.contains("2560"));
        assert!(info.contains("350 MHz"));
    }

    #[test]
    fn lint_passes_on_builtin_kernels() {
        let report = cmd_lint(false, false).expect("built-in kernels must lint clean");
        assert!(
            report.contains("4 kernels verified: 0 errors, 0 warnings"),
            "{report}"
        );
        // Every shipped kernel carries a finite symbolic bound and a
        // cross-tasklet race-freedom proof.
        assert!(report.contains("wcet: "), "{report}");
        assert!(!report.contains("unbounded"), "{report}");
        assert!(report.contains("race-freedom: proven"), "{report}");
        // Verbose mode surfaces the analysis facts.
        let verbose = cmd_lint(true, false).unwrap();
        assert!(verbose.contains("sanitizer: clean"), "{verbose}");
        assert!(verbose.contains("loop-termination"), "{verbose}");
        assert!(verbose.len() > report.len());
    }

    #[test]
    fn lint_json_is_machine_readable() {
        let json = cmd_lint(false, true).expect("built-in kernels must lint clean");
        for key in [
            "\"kernels_verified\": 4",
            "\"total_errors\": 0",
            "\"total_warnings\": 0",
            "\"ok\": true",
            "\"finite\": true",
            "\"race_free\": true",
            "\"sanitizer\": \"clean\"",
            "\"kernel\": \"asm/traceback\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // No unescaped control characters inside strings: the report must
        // survive a strict JSON parse downstream (ci.sh validates shape).
        assert!(!json.contains("\t"), "{json}");
    }

    #[test]
    fn chaos_command_loses_nothing_under_faults() {
        let opts = ChaosOpts {
            pairs: 8,
            dpus: 4,
            ..ChaosOpts::default()
        };
        let out = cmd_chaos(&opts).expect("recovery must complete every job");
        assert!(
            out.contains("all 8 results match the fault-free reference"),
            "{out}"
        );
        // The seeded plan on 2 ranks always kills one rank, so recovery did
        // real work — the fault report cannot be all-zero.
        assert!(
            out.contains("dead ranks [") && !out.contains("dead ranks []"),
            "{out}"
        );
    }

    #[test]
    fn chaos_command_is_clean_without_fault_rates() {
        let opts = ChaosOpts {
            pairs: 4,
            ranks: 1, // single rank: chaos() injects no dead rank
            dpus: 2,
            dpu_fault_rate: 0.0,
            corrupt_rate: 0.0,
            hang_rate: 0.0,
            silent_corrupt_rate: 0.0,
            disabled: 0,
            ..ChaosOpts::default()
        };
        let out = cmd_chaos(&opts).unwrap();
        assert!(
            out.contains("0 retries, 0 quarantined, 0 dead ranks, 0 cpu fallbacks"),
            "{out}"
        );
        // The default budget is derived from the kernels' WCET bounds, and
        // a clean run must fit inside it without any escalation.
        assert!(out.contains("(wcet auto)"), "{out}");
        // The audit still ran (it is on by default) but a clean audited
        // run must not dirty the report.
        assert!(out.contains("audited"), "{out}");
    }

    #[test]
    fn chaos_command_runs_on_both_engines() {
        for sync_dispatch in [false, true] {
            let opts = ChaosOpts {
                pairs: 6,
                ranks: 1,
                dpus: 2,
                dpu_fault_rate: 0.0,
                corrupt_rate: 0.0,
                hang_rate: 0.0,
                silent_corrupt_rate: 0.0,
                disabled: 0,
                sync_dispatch,
                ..ChaosOpts::default()
            };
            let out = cmd_chaos(&opts).expect("both engines must complete cleanly");
            assert!(
                out.contains("all 6 results match the fault-free reference"),
                "sync={sync_dispatch}: {out}"
            );
        }
    }

    #[test]
    fn chaos_audit_is_load_bearing_against_silent_corruption() {
        // Silent CIGAR corruption only (checksums recomputed): with the
        // audit disabled the wrong CIGARs reach the caller and the
        // reference comparison must fail the command; with it enabled the
        // corrupted results are retried and everything matches.
        let opts = ChaosOpts {
            seed: 7,
            pairs: 12,
            ranks: 2,
            dpus: 4,
            dpu_fault_rate: 0.0,
            corrupt_rate: 0.0,
            hang_rate: 0.0,
            silent_corrupt_rate: 0.3,
            disabled: 0,
            audit: false,
            ..ChaosOpts::default()
        };
        let err = cmd_chaos(&opts).expect_err("escaped corruption must fail");
        assert!(
            err.to_string()
                .contains("differ from the fault-free reference"),
            "{err}"
        );
        let audited = ChaosOpts {
            audit: true,
            ..opts
        };
        let out = cmd_chaos(&audited).expect("the audit must catch and retry");
        assert!(
            out.contains("all 12 results match the fault-free reference"),
            "{out}"
        );
    }

    #[test]
    fn bench_smoke_writes_valid_json() {
        let path = std::env::temp_dir().join(format!(
            "upmem-nw-cli-test-{}-BENCH_dispatch.json",
            std::process::id()
        ));
        let opts = BenchOpts {
            pairs: 8,
            ranks: 2,
            dpus: 2,
            rounds: 2,
            straggler_hold_ms: 2.0,
            smoke: true,
            json_path: Some(path.to_string_lossy().into_owned()),
            ..BenchOpts::default()
        };
        let out = cmd_bench(&opts).expect("bench must run and stay bit-identical");
        assert!(out.contains("engines bit-identical"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        for key in [
            "\"bench\": \"dispatch\"",
            "\"lockstep\"",
            "\"pipelined\"",
            "\"no_fault\"",
            "\"speedup_host_wall\"",
            "\"bit_identical\": true",
            "\"stall\"",
            "\"host_wall_seconds\"",
            "\"pairs_per_second\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bench_backend_smoke_writes_valid_json() {
        let path = std::env::temp_dir().join(format!(
            "upmem-nw-cli-test-{}-BENCH_backend.json",
            std::process::id()
        ));
        let opts = BenchOpts {
            pairs: 6,
            ranks: 1,
            dpus: 2,
            smoke: true,
            backend: true,
            json_path: Some(path.to_string_lossy().into_owned()),
            ..BenchOpts::default()
        };
        let out = cmd_bench(&opts).expect("backend bench must run and stay bit-identical");
        assert!(
            out.contains("all backends and cache phases bit-identical"),
            "{out}"
        );
        let json = std::fs::read_to_string(&path).unwrap();
        for key in [
            "\"bench\": \"backend\"",
            "\"schema_version\"",
            "\"auto_modes\"",
            "\"router\"",
            "\"pim_only\"",
            "\"cpu_only\"",
            "\"static_split\"",
            "\"router_vs_best_single\"",
            "\"cache_phases\"",
            "\"dup90_cold_speedup\"",
            "\"dup90_warm_speedup\"",
            "\"conserved\": true",
            "\"bit_identical\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bench_sim_smoke_writes_valid_json() {
        let path = std::env::temp_dir().join(format!(
            "upmem-nw-cli-test-{}-BENCH_sim.json",
            std::process::id()
        ));
        let opts = BenchOpts {
            ranks: 1,
            dpus: 2,
            smoke: true,
            sim: true,
            sim_threads: 3,
            json_path: Some(path.to_string_lossy().into_owned()),
            ..BenchOpts::default()
        };
        let out = cmd_bench(&opts).expect("sim bench must run and stay bit-identical");
        assert!(out.contains("all conditions bit-identical"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        for key in [
            "\"bench\": \"sim\"",
            "\"interp\"",
            "\"fused_windows\"",
            "\"fast_eligible\": true",
            "\"sequential_checked\"",
            "\"parallel_fast\"",
            "\"dpus_per_sec\"",
            "\"speedup_dpus_per_sec\"",
            "\"sim_threads\": 3",
            "\"bit_identical\": true",
            "\"wcet_instructions\"",
            "\"dynamic_static_ratio\"",
            "\"race_free\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn algo_parsing() {
        assert_eq!(Algo::parse("wfa"), Some(Algo::Wfa));
        assert_eq!(Algo::parse("pim"), Some(Algo::Pim));
        assert_eq!(Algo::parse("nope"), None);
    }
}
