//! `chaos --crash`: the kill-injection harness for the durability layer.
//!
//! Where `chaos` injects simulated hardware faults *inside* one process,
//! this harness injects the fault the simulator cannot model: the daemon
//! process dying mid-flight. It spawns the real `upmem-nw serve` binary as
//! a child against a durable state directory, drives seeded traffic over
//! the socket, SIGKILLs the child at seeded points, restarts it against
//! the same directory, and asserts the durability contract end to end:
//!
//! * **No wrong result is ever served** — every `ok` result observed in
//!   any phase (including partial answers received just before a kill) is
//!   bit-identical to a fault-free reference run on a fresh state dir.
//! * **The books balance across the crash** — the final lifetime's report
//!   satisfies the conservation law with the replayed tickets counted in.
//! * **Recovery is audit-gated and warm** — the final restart re-admits
//!   cache entries (`cache_recovered > 0`) and serves the workload from
//!   them (`hits > 0`), while the cold control run has zero of both.
//! * **A guaranteed-unanswered admission replays** — each kill phase
//!   journals one fresh (uncached, so slow) request and kills immediately
//!   after a `stats` barrier confirms admission; the next lifetime must
//!   recover it.
//!
//! `--corrupt-wal true` additionally flips a byte in the persisted cache
//! state between the last kill and the final restart, asserting the
//! recovery scan skips the damaged record instead of refusing or serving
//! garbage.

use crate::CliError;
use datasets::synthetic::{SyntheticParams, SyntheticPreset};
use pim_sim::fault::mix64;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;
use upmem_nw_service::json::Json;
use upmem_nw_service::{proto, Client, Priority};

/// Knobs for the `chaos --crash` kill-injection harness.
#[derive(Debug, Clone)]
pub struct CrashOpts {
    /// Seed for the workload and the kill points.
    pub seed: u64,
    /// Kill-restart cycles between the anchor run and the final verify.
    pub kills: usize,
    /// Workload requests re-sent in every phase.
    pub requests: usize,
    /// Pairs per workload request.
    pub pairs_per_request: usize,
    /// Simulated ranks of the spawned daemon.
    pub ranks: usize,
    /// DPUs per rank.
    pub dpus: usize,
    /// Band width.
    pub band: usize,
    /// Read length of the synthetic pairs (long enough that a fresh pair
    /// cannot finish between a `stats` barrier and the SIGKILL).
    pub read_len: usize,
    /// Scratch root for sockets, state dirs, and per-phase reports
    /// (default: a per-process directory under the system temp dir,
    /// removed and recreated at start).
    pub state_root: Option<PathBuf>,
    /// Flip one byte of the persisted cache state before the final
    /// restart and assert the recovery scan skips the damaged record.
    pub corrupt_wal: bool,
    /// The `upmem-nw` binary to spawn (default: the running executable).
    pub bin: Option<PathBuf>,
}

impl Default for CrashOpts {
    fn default() -> Self {
        CrashOpts {
            seed: 42,
            kills: 3,
            requests: 5,
            pairs_per_request: 2,
            ranks: 2,
            dpus: 4,
            band: 64,
            read_len: 600,
            state_root: None,
            corrupt_wal: false,
            bin: None,
        }
    }
}

/// One slot of an `ok` result, the unit of bit-identity comparison.
type Slot = (String, i64, String);

/// Everything observed from one daemon lifetime.
struct PhaseOut {
    /// `id -> slots` for every `disposition: ok` result received.
    answers: HashMap<String, Vec<Slot>>,
    /// Terminal answers that were not ok results (rejects, sheds,
    /// deadline-misses, errors) — expected to be zero in every phase.
    other: usize,
    /// The parsed report JSON (graceful phases only; a killed lifetime
    /// never writes one).
    report: Option<Json>,
}

/// How a phase ends: gracefully drained, or SIGKILLed after `after`
/// workload sends + one fresh request + a `stats` admission barrier +
/// `jitter_ms` of extra runtime.
enum PhaseEnd {
    Drain,
    Kill { after: usize, jitter_ms: u64 },
}

fn field<'a>(v: &'a Json, path: &[&str]) -> Option<&'a Json> {
    let mut cur = v;
    for k in path {
        cur = cur.get(k)?;
    }
    Some(cur)
}

fn num(v: &Json, path: &[&str]) -> u64 {
    field(v, path).and_then(Json::as_u64).unwrap_or(u64::MAX)
}

fn decode_result(v: &Json) -> Option<(String, Vec<Slot>)> {
    let id = v.get("id")?.as_str()?.to_string();
    if v.get("disposition")?.as_str()? != "ok" {
        return None;
    }
    let mut slots = Vec::new();
    for r in v.get("results")?.as_arr()? {
        let status = r.get("status")?.as_str()?.to_string();
        let score = r.get("score").and_then(Json::as_f64).unwrap_or(0.0) as i64;
        let cigar = r
            .get("cigar")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        slots.push((status, score, cigar));
    }
    Some((id, slots))
}

fn spawn_daemon(
    bin: &Path,
    opts: &CrashOpts,
    state_dir: &Path,
    socket: &Path,
    report: &Path,
) -> Result<Child, CliError> {
    Command::new(bin)
        .arg("serve")
        .arg("--socket")
        .arg(socket)
        .arg("--state-dir")
        .arg(state_dir)
        .arg("--ranks")
        .arg(opts.ranks.max(1).to_string())
        .arg("--dpus")
        .arg(opts.dpus.max(1).to_string())
        .arg("--band")
        .arg(opts.band.to_string())
        .arg("--json")
        .arg(report)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .map_err(CliError::Io)
}

/// Run one daemon lifetime: spawn, replay the workload, end per `end`,
/// and collect everything the client heard back.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    bin: &Path,
    opts: &CrashOpts,
    state_dir: &Path,
    socket: &Path,
    report_path: &Path,
    workload: &[(String, Vec<(String, String)>)],
    fresh: Option<&(String, Vec<(String, String)>)>,
    end: PhaseEnd,
) -> Result<PhaseOut, CliError> {
    let _ = std::fs::remove_file(report_path);
    let mut child = spawn_daemon(bin, opts, state_dir, socket, report_path)?;
    let mut c = match Client::connect_retry(socket, Duration::from_secs(20)) {
        Ok(c) => c,
        Err(e) => {
            let _ = child.kill();
            let _ = child.wait();
            return Err(CliError::Align(format!("daemon never listened: {e}")));
        }
    };
    let reader = c.try_split().map_err(CliError::Io)?;
    let (tx, rx) = mpsc::channel::<Json>();
    let reader = thread::spawn(move || {
        let mut reader = reader;
        while let Ok(Some(v)) = reader.recv() {
            if tx.send(v).is_err() {
                break;
            }
        }
    });

    // Answers that arrive while the kill barrier waits for its stats line
    // are kept here and merged into the phase's collection below.
    let mut early: Vec<Json> = Vec::new();
    let sends = match end {
        PhaseEnd::Drain => workload.len(),
        PhaseEnd::Kill { after, .. } => after.min(workload.len()),
    };
    for (id, pairs) in &workload[..sends] {
        c.send(&proto::align_line(id, Priority::Normal, None, pairs))
            .map_err(CliError::Io)?;
    }

    match end {
        PhaseEnd::Drain => {
            c.send("{\"op\":\"drain\"}").map_err(CliError::Io)?;
        }
        PhaseEnd::Kill { jitter_ms, .. } => {
            // Seeded jitter first, so the kill lands at a varied point of
            // the workload's processing. THEN journal one fresh
            // (cache-cold, so slow) request and use a `stats` round trip
            // as the admission barrier: lines on one connection are
            // processed in order, so the stats answer proves the fresh
            // request was admitted — and journaled — before the kill,
            // while its alignment (milliseconds of simulated DP) cannot
            // have finished in the microseconds before the SIGKILL lands.
            thread::sleep(Duration::from_millis(jitter_ms));
            if let Some((id, pairs)) = fresh {
                c.send(&proto::align_line(id, Priority::Normal, None, pairs))
                    .map_err(CliError::Io)?;
                c.send("{\"op\":\"stats\"}").map_err(CliError::Io)?;
                let deadline = std::time::Instant::now() + Duration::from_secs(20);
                loop {
                    let left = deadline.saturating_duration_since(std::time::Instant::now());
                    match rx.recv_timeout(left) {
                        Ok(v) if v.get("type").and_then(Json::as_str) == Some("stats") => break,
                        Ok(v) => early.push(v),
                        Err(_) => {
                            let _ = child.kill();
                            let _ = child.wait();
                            return Err(CliError::Align(
                                "no stats answer before the kill barrier timed out".into(),
                            ));
                        }
                    }
                }
            }
            let _ = child.kill();
        }
    }

    // Reader exits at EOF: the drain closing the socket, or the kill.
    let _ = reader.join();
    let status = child.wait().map_err(CliError::Io)?;
    if matches!(end, PhaseEnd::Drain) && !status.success() {
        return Err(CliError::Align(format!(
            "daemon exited with {status} on a graceful drain"
        )));
    }

    let mut out = PhaseOut {
        answers: HashMap::new(),
        other: 0,
        report: None,
    };
    for v in early.into_iter().chain(rx.try_iter()) {
        match v.get("type").and_then(Json::as_str) {
            Some("result") => match decode_result(&v) {
                Some((id, slots)) => {
                    out.answers.insert(id, slots);
                }
                None => out.other += 1,
            },
            Some("reject") | Some("shed") | Some("error") => out.other += 1,
            _ => {}
        }
    }
    if matches!(end, PhaseEnd::Drain) {
        let text = std::fs::read_to_string(report_path)?;
        let v = Json::parse(&text)
            .map_err(|e| CliError::Align(format!("unparseable report JSON: {e}")))?;
        out.report = Some(v);
    }
    Ok(out)
}

/// Every `ok` answer must be bit-identical to the reference; an id the
/// reference never saw, or any differing slot, is a served wrong result.
fn check_answers(
    phase: &str,
    got: &HashMap<String, Vec<Slot>>,
    reference: &HashMap<String, Vec<Slot>>,
) -> Result<(), CliError> {
    for (id, slots) in got {
        // Fresh kill-bait requests are not part of the reference workload.
        if id.starts_with("fresh-") {
            continue;
        }
        match reference.get(id) {
            Some(want) if want == slots => {}
            Some(_) => {
                return Err(CliError::Align(format!(
                    "{phase}: request {id} answered with a result that differs \
                     from the fault-free reference"
                )));
            }
            None => {
                return Err(CliError::Align(format!(
                    "{phase}: request {id} answered but absent from the reference"
                )));
            }
        }
    }
    Ok(())
}

fn require(cond: bool, msg: &str) -> Result<(), CliError> {
    if cond {
        Ok(())
    } else {
        Err(CliError::Align(format!("crash harness: {msg}")))
    }
}

/// The `chaos --crash` harness. Returns a human-readable summary; errors
/// if any phase violates the durability contract.
pub fn cmd_chaos_crash(opts: &CrashOpts) -> Result<String, CliError> {
    let bin = match &opts.bin {
        Some(p) => p.clone(),
        None => std::env::current_exe()?,
    };
    let root = opts.state_root.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("upmem-nw-crash-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root)?;
    let state = root.join("state");
    let control_state = root.join("control-state");

    // Seeded workload: distinct pairs per request, plus one fresh pair
    // per kill phase (the guaranteed-unanswered admission).
    let n = opts.requests.max(1);
    let ppr = opts.pairs_per_request.max(1);
    let kills = opts.kills.max(1);
    let mut params = SyntheticParams::preset(SyntheticPreset::S1000, opts.seed);
    params.read_len = opts.read_len.max(64);
    let ascii = |pairs: Vec<(nw_core::seq::DnaSeq, nw_core::seq::DnaSeq)>| {
        pairs
            .into_iter()
            .map(|(a, b)| {
                (
                    String::from_utf8(a.to_ascii()).unwrap(),
                    String::from_utf8(b.to_ascii()).unwrap(),
                )
            })
            .collect::<Vec<_>>()
    };
    let all = ascii(params.generate(n * ppr));
    // Kill-bait pairs are an order of magnitude longer than the workload:
    // their alignment takes tens of milliseconds of simulated DP, so the
    // SIGKILL that follows the admission barrier by microseconds cannot
    // lose the race against their completion.
    let mut fresh_params = params;
    fresh_params.seed = opts.seed ^ 0xF00D;
    fresh_params.read_len = (params.read_len * 16).max(9_600);
    let fresh_pool = ascii(fresh_params.generate(kills));
    let workload: Vec<(String, Vec<(String, String)>)> = all
        .chunks(ppr)
        .enumerate()
        .map(|(i, chunk)| (format!("w-{i}"), chunk.to_vec()))
        .collect();

    // Phase 0 — cold fault-free control on its own state dir: the
    // bit-identity reference, and the "cold start has zero hits" side of
    // the warm-restart assertion.
    let control = run_phase(
        &bin,
        opts,
        &control_state,
        &root.join("control.sock"),
        &root.join("control.json"),
        &workload,
        None,
        PhaseEnd::Drain,
    )?;
    let crep = control.report.as_ref().expect("drained phase has a report");
    require(
        field(crep, &["consistent"]).and_then(Json::as_bool) == Some(true),
        "control run violated the conservation law",
    )?;
    require(
        num(crep, &["cache", "hits"]) == 0 && num(crep, &["durability", "cache_recovered"]) == 0,
        "control run was not cold (nonzero hits or recovered entries)",
    )?;
    require(
        control.answers.len() == workload.len() && control.other == 0,
        "control run did not answer the full workload ok",
    )?;
    let reference = control.answers;

    // Phase 1 — anchor: populate the durable state dir, drain cleanly.
    let anchor = run_phase(
        &bin,
        opts,
        &state,
        &root.join("anchor.sock"),
        &root.join("anchor.json"),
        &workload,
        None,
        PhaseEnd::Drain,
    )?;
    check_answers("anchor", &anchor.answers, &reference)?;
    require(
        anchor.answers.len() == workload.len(),
        "anchor run did not answer the full workload",
    )?;

    // Kill phases: seeded kill points, one guaranteed-unanswered fresh
    // admission each.
    let mut partial_answers = 0usize;
    for k in 0..kills {
        let r = mix64(opts.seed ^ (0xC0FF_EE00 + k as u64));
        let after = (r as usize) % (workload.len() + 1);
        let jitter_ms = (r >> 33) % 40;
        let fresh = (
            format!("fresh-{k}"),
            vec![fresh_pool[k % fresh_pool.len()].clone()],
        );
        let out = run_phase(
            &bin,
            opts,
            &state,
            &root.join(format!("kill-{k}.sock")),
            &root.join(format!("kill-{k}.json")),
            &workload,
            Some(&fresh),
            PhaseEnd::Kill { after, jitter_ms },
        )?;
        check_answers(&format!("kill phase {k}"), &out.answers, &reference)?;
        partial_answers += out.answers.len();
    }

    // Optional on-disk damage between the last kill and the restart.
    let mut corrupted = false;
    if opts.corrupt_wal {
        for name in ["cache.wal", "cache.snap"] {
            let p = state.join(name);
            if let Ok(mut bytes) = std::fs::read(&p) {
                // Header is 12 bytes, record framing starts after it;
                // byte 18 lands inside the first record's payload.
                if bytes.len() > 24 {
                    bytes[18] ^= 0xFF;
                    std::fs::write(&p, &bytes)?;
                    corrupted = true;
                    break;
                }
            }
        }
        require(
            corrupted,
            "--corrupt-wal found no persisted record to damage",
        )?;
    }

    // Final phase — restart against the crashed state, re-serve the
    // workload, drain, and audit the books.
    let fin = run_phase(
        &bin,
        opts,
        &state,
        &root.join("final.sock"),
        &root.join("final.json"),
        &workload,
        None,
        PhaseEnd::Drain,
    )?;
    check_answers("final phase", &fin.answers, &reference)?;
    require(
        fin.answers.len() == workload.len() && fin.other == 0,
        "final phase did not answer the full workload ok",
    )?;
    let frep = fin.report.as_ref().expect("drained phase has a report");
    require(
        field(frep, &["consistent"]).and_then(Json::as_bool) == Some(true),
        "final lifetime violated the conservation law across the crash",
    )?;
    require(
        field(frep, &["durability", "enabled"]).and_then(Json::as_bool) == Some(true),
        "final lifetime ran without durability",
    )?;
    let recovered_entries = num(frep, &["durability", "cache_recovered"]);
    let warm_hits = num(frep, &["cache", "hits"]);
    let recovered_requests = num(frep, &["durability", "recovered_requests"]);
    require(
        recovered_entries > 0 && recovered_entries != u64::MAX,
        "final restart recovered no cache entries through the audit gate",
    )?;
    require(
        warm_hits > 0 && warm_hits != u64::MAX,
        "warm restart served zero cache hits",
    )?;
    require(
        recovered_requests >= 1 && recovered_requests != u64::MAX,
        "the journaled-but-unanswered request did not replay",
    )?;
    let skipped = num(frep, &["durability", "corrupt_records_skipped"]);
    if corrupted {
        require(
            skipped >= 1 && skipped != u64::MAX,
            "corrupted record was neither skipped nor refused",
        )?;
    }

    let mut out = format!(
        "chaos crash: seed {}, {} kill cycles over {} requests x {} pairs\n\
         reference run: {} requests answered, all cold\n\
         kill phases: {} partial answers observed, every one bit-identical\n\
         final restart: {} cache entries recovered (audit-gated), {} warm hits, \
         {} journaled requests replayed, books balanced\n",
        opts.seed,
        kills,
        n,
        ppr,
        reference.len(),
        partial_answers,
        recovered_entries,
        warm_hits,
        recovered_requests,
    );
    if corrupted {
        let _ = writeln!(
            out,
            "corruption drill: {skipped} damaged record(s) skipped at recovery"
        );
    }
    let _ = writeln!(out, "state root: {}", root.display());
    Ok(out)
}
