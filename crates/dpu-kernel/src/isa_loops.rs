//! The anti-diagonal inner loop written twice in the mini DPU ISA (§5.5).
//!
//! * [`KernelVariant::PureC`] — the shape a compiler emits: byte loads and
//!   an explicit compare for each base pair, separate compare+branch pairs
//!   for the gap-extension flags and origin selection, and one pointer bump
//!   per array (the compiler cannot target `cmpb4` or fused jumps at all,
//!   as the paper notes).
//! * [`KernelVariant::Asm`] — the hand-optimized loop: `cmpb4` compares four
//!   base pairs at once, its result is consumed by a *right shift fused
//!   with a jump on parity* (the exact trick of §5.5), every flag/loop
//!   branch is fused into the ALU instruction producing its operand, and
//!   all seven band arrays are indexed off a single scaled counter.
//!
//! Both loops perform the *complete* affine cell update of eqs. 3–5 (D, I,
//! H, plus the 4-bit `BT` nibble when tracing) on real WRAM data; the
//! interpreter's instruction counts per cell feed the kernel timing model,
//! so Table 7's speedup emerges from the instruction streams rather than a
//! hard-coded factor.

use crate::cost::KernelVariant;
use pim_sim::isa::{
    assemble, wcet, EntryGate, Inst, IsaError, Jit, Machine, Prepared, Reg, RunStats, VerifySpec,
    WcetBound, DEFAULT_MAX_STEPS,
};
use pim_sim::sanitizer::WramShadow;
use std::sync::OnceLock;
use std::time::Instant;

pub use pim_sim::isa::InterpMode;

/// WRAM offsets used by the measurement harness (one i32 per cell per
/// array; 256 cells max keeps everything inside 16 KB).
const MAX_CELLS: usize = 256;
const H_PREV: usize = 0x0000;
const H_PREV2: usize = 0x0800;
const D_PREV: usize = 0x1000;
const I_PREV: usize = 0x1800;
const H_CUR: usize = 0x2000;
const D_CUR: usize = 0x2800;
const I_CUR: usize = 0x3000;
const A_SEQ: usize = 0x3800;
const B_SEQ: usize = 0x3900;
const BT_ROW: usize = 0x3A00;
const WRAM_LEN: usize = 0x3B00;

/// Scoring constants baked into the loops (minimap2 defaults: the penalties
/// enter as immediates exactly as the real kernel bakes them).
const MATCH: i32 = 2;
const MISMATCH: i32 = -4;
const GE: i32 = 2;
const GOGE: i32 = 6;

/// The compiler-style loop. Registers: r1 = remaining cells; r2..r8 array
/// pointers; r9/r10 sequence pointers; r11 BT pointer.
///
/// The DPU ISA has no single-cycle `max`, so the compiler emits a
/// compare-and-branch plus conditional move for every `max()` in eqs. 3–5 —
/// and it cannot fuse those branches, target `cmpb4`, or coalesce the seven
/// live array pointers (§5.5: "the above instructions cannot be targeted by
/// the compiler at the moment").
fn pure_c_source(with_bt: bool) -> String {
    let bt_block = if with_bt {
        "
  ; --- BT nibble: origin in r19, extend flags in r18 ---
  or r19, r19, r18
  sb r19, r11, 0
  add r11, r11, 1
"
    } else {
        ""
    };
    let flag_d = if with_bt {
        "
  move r18, 0
  jlt r15, r16, cd_no_dext
  move r18, 8
cd_no_dext:"
    } else {
        ""
    };
    let flag_i = if with_bt {
        "
  move r21, 0
  jlt r15, r16, cd_no_iext
  move r21, 4
cd_no_iext:
  or r18, r18, r21"
    } else {
        ""
    };
    let origin_sel = if with_bt {
        "
  ; best-of-three with explicit compares; record the origin code.
  move r16, r17
  jge r16, r20, cd_gapmax_done
  move r16, r20
cd_gapmax_done:
  jge r15, r16, cd_origin_done
  move r19, 3
  jge r17, r20, cd_take_gap
  move r19, 2
cd_take_gap:
  move r15, r16
cd_origin_done:"
    } else {
        "
  move r16, r17
  jge r16, r20, cd_gapmax_done2
  move r16, r20
cd_gapmax_done2:
  jge r15, r16, cd_h_done
  move r15, r16
cd_h_done:"
    };
    format!(
        "
loop:
  ; --- substitution score: byte loads + explicit compare ---
  lbu r12, r9, 0
  lbu r13, r10, 0
  jeq r12, r13, cd_is_match
  move r14, {MISMATCH}
  move r19, 1
  jmp cd_sub_done
cd_is_match:
  move r14, {MATCH}
  move r19, 0
cd_sub_done:
  ; --- D: max(left_d - ge, left_h - go - ge) via compare+branch ---
  lw r15, r4, 0
  lw r16, r2, 0
  add r15, r15, -{GE}
  add r16, r16, -{GOGE}{flag_d}
  jge r15, r16, cd_d_done
  move r15, r16
cd_d_done:
  move r17, r15
  sw r17, r7, 0
  ; --- I: max(up_i - ge, up_h - go - ge) (window index k+1) ---
  lw r15, r5, 4
  lw r16, r2, 4
  add r15, r15, -{GE}
  add r16, r16, -{GOGE}{flag_i}
  jge r15, r16, cd_i_done
  move r15, r16
cd_i_done:
  move r20, r15
  sw r20, r8, 0
  ; --- H: diag + sub vs gaps ---
  lw r15, r3, 0
  add r15, r15, r14{origin_sel}
  sw r15, r6, 0{bt_block}
  ; --- per-array pointer bumps (the compiler keeps 7 live pointers) ---
  add r2, r2, 4
  add r3, r3, 4
  add r4, r4, 4
  add r5, r5, 4
  add r6, r6, 4
  add r7, r7, 4
  add r8, r8, 4
  add r9, r9, 1
  add r10, r10, 1
  ; --- loop control: separate decrement and branch ---
  sub r1, r1, 1
  jgt r1, 0, loop
  halt
"
    )
}

/// One unrolled cell body of the hand-optimized loop.
///
/// `idx` is the position within the 4-cell unroll (selects the `cmpb4` mask
/// byte and the immediate offsets), `h_in`/`h_out` are the registers
/// carrying `h_prev[k]` into the cell and `h_prev[k+1]` out of it (the up
/// neighbour of cell `k` is the left neighbour of cell `k+1`, so hand code
/// loads it once).
fn asm_cell(idx: usize, with_bt: bool, h_in: &str, h_out: &str) -> String {
    let off = idx * 4;
    let mask = 1u32 << (8 * idx);
    let u = format!("u{idx}"); // unique label prefix per unrolled cell
    let bt_block = if with_bt {
        format!(
            "
  or r19, r19, r18
  sb r19, r11, {idx}"
        )
    } else {
        String::new()
    };
    // D: the comparison that computes max() doubles as the extend flag.
    let d_flag_init = if with_bt { "\n  move r18, 8" } else { "" };
    let d_open_flag = if with_bt { "\n  move r18, 0" } else { "" };
    // I: same trick, one fused branch.
    let (i_ext_flag, i_open) = if with_bt {
        ("\n  or r18, r18, 4", "")
    } else {
        ("", "")
    };
    format!(
        "
  ; ---- unrolled cell {idx} ----
  ; substitution: test mask byte {idx} of the cmpb4 result, fused jump.
  and r0, r12, {mask}, jnz {u}_match
  move r14, {MISMATCH}
  move r19, 1
  jmp {u}_sub_done
{u}_match:
  move r14, {MATCH}
  move r19, 0
{u}_sub_done:
  ; D: left_h carried in {h_in}; max+flag share one fused comparison.
  lw r15, r2, {d_prev}
  add r15, r15, -{GE}
  add r16, {h_in}, -{GOGE}{d_flag_init}
  sub r0, r15, r16, jgez {u}_d_done
  move r15, r16{d_open_flag}
{u}_d_done:
  sw r15, r2, {d_cur}
  ; I: load up_i and up_h (the carry for the next cell).
  lw r17, r2, {i_prev_next}
  lw {h_out}, r2, {h_prev_next}
  add r17, r17, -{GE}
  add r16, {h_out}, -{GOGE}
  sub r0, r17, r16, jltz {u}_i_open{i_ext_flag}
  jmp {u}_i_done
{u}_i_open:{i_open}
  move r17, r16
{u}_i_done:
  sw r17, r2, {i_cur}
  ; H: diag + sub, two fused best-of selections.
  lw r16, r2, {h_prev2}
  add r16, r16, r14
  sub r0, r16, r15, jgez {u}_ge_d
  move r16, r15
  move r19, 3
{u}_ge_d:
  sub r0, r16, r17, jgez {u}_ge_i
  move r16, r17
  move r19, 2
{u}_ge_i:
  sw r16, r2, {h_cur}{bt_block}",
        d_prev = D_PREV + off,
        d_cur = D_CUR + off,
        i_prev_next = I_PREV + off + 4,
        h_prev_next = H_PREV + off + 4,
        h_prev2 = H_PREV2 + off,
        i_cur = I_CUR + off,
        h_cur = H_CUR + off,
    )
}

/// The hand-optimized loop (§5.5): unrolled four cells per iteration so one
/// `cmpb4` covers four base pairs and its result is consumed with fused
/// mask tests; all arrays are indexed from a single scaled counter with
/// immediate offsets; `h_prev[k+1]` is loaded once and carried in a
/// register (up neighbour of cell k = left neighbour of cell k+1); every
/// branch is fused into the ALU instruction producing its operand.
fn asm_source(with_bt: bool) -> String {
    let mut body = String::from(
        "
  ; r1 = remaining cells (multiple of 4), r2 = k*4, r9/r10 seq pointers,
  ; r12 = cmpb4 mask, r22/r23 = h_prev carry registers, r11 = BT pointer.
  lw r22, r2, 0
loop:
  ; one cmpb4 compares the next four base pairs
  lw r13, r9, 0
  lw r14, r10, 0
  cmpb4 r12, r13, r14
  add r9, r9, 4
  add r10, r10, 4",
    );
    for idx in 0..4 {
        // Alternate the carry registers: the up-neighbour load of cell k
        // (h_prev[k+1]) is the left neighbour of cell k+1.
        let (h_in, h_out) = if idx % 2 == 0 {
            ("r22", "r23")
        } else {
            ("r23", "r22")
        };
        body.push_str(&asm_cell(idx, with_bt, h_in, h_out));
    }
    body.push_str(
        "
  ; single scaled bump for all seven arrays + fused loop branch
  add r2, r2, 16",
    );
    if with_bt {
        body.push_str("\n  add r11, r11, 4");
    }
    body.push_str(
        "
  sub r1, r1, 4, jnz loop
  halt
",
    );
    body
}

/// Assemble the inner loop for a variant.
pub fn program(variant: KernelVariant, with_bt: bool) -> Vec<Inst> {
    let src = match variant {
        KernelVariant::PureC => pure_c_source(with_bt),
        KernelVariant::Asm => asm_source(with_bt),
    };
    assemble(&src).expect("inner loop must assemble")
}

/// The static-verification contract of an inner loop: which registers the
/// harness initializes (with the [`measure`] base addresses, so the
/// verifier can do constant propagation on them) and the WRAM frame the
/// loop may touch.
pub fn verify_spec(variant: KernelVariant) -> VerifySpec {
    let r = |i: u8| Reg::new(i).expect("register index in range");
    let mut spec = VerifySpec::new()
        .frame(WRAM_LEN)
        .input_value(r(9), A_SEQ as u32)
        .input_value(r(10), B_SEQ as u32)
        .input_value(r(11), BT_ROW as u32);
    match variant {
        KernelVariant::PureC => {
            // remaining cells: caller-chosen, decremented by 1 per iteration
            spec = spec.input(r(1));
            for (reg, base) in [
                (2, H_PREV),
                (3, H_PREV2),
                (4, D_PREV),
                (5, I_PREV),
                (6, H_CUR),
                (7, D_CUR),
                (8, I_CUR),
            ] {
                spec = spec.input_value(r(reg), base as u32);
            }
        }
        KernelVariant::Asm => {
            // remaining cells: the unrolled loop retires 4 per iteration, so
            // the harness always passes a multiple of 4 — declaring the
            // stride lets the verifier (and the WCET analysis) prove the
            // `sub r1, r1, 4 / jnz` countdown terminates.
            spec = spec.input_multiple(r(1), 4).input_value(r(2), 0); // scaled index k*4
        }
    }
    spec
}

/// The verification contract of one tasklet's slice of a band chunked
/// across `tasklets` workers: tasklet `t` owns cells
/// `[t*chunk, (t+1)*chunk)` of a `cells`-cell anti-diagonal, so every base
/// pointer is offset by its share. [`prove_race_free`] instantiates this per
/// tasklet and asks the WCET footprint analysis to show the write sets are
/// pairwise disjoint.
pub fn tasklet_verify_spec(
    variant: KernelVariant,
    tasklet: usize,
    tasklets: usize,
    cells: usize,
) -> VerifySpec {
    assert!(tasklet < tasklets && tasklets > 0);
    let chunk = cells / tasklets;
    let r = |i: u8| Reg::new(i).expect("register index in range");
    let mut spec = VerifySpec::new()
        .frame(WRAM_LEN)
        .input_value(r(1), chunk as u32)
        .input_value(r(9), (A_SEQ + tasklet * chunk) as u32)
        .input_value(r(10), (B_SEQ + tasklet * chunk) as u32)
        .input_value(r(11), (BT_ROW + tasklet * chunk) as u32);
    match variant {
        KernelVariant::PureC => {
            for (reg, base) in [
                (2, H_PREV),
                (3, H_PREV2),
                (4, D_PREV),
                (5, I_PREV),
                (6, H_CUR),
                (7, D_CUR),
                (8, I_CUR),
            ] {
                spec = spec.input_value(r(reg), (base + 4 * tasklet * chunk) as u32);
            }
        }
        KernelVariant::Asm => {
            assert!(
                chunk.is_multiple_of(4),
                "asm tasklet chunks must be multiples of 4"
            );
            spec = spec.input_value(r(2), (4 * tasklet * chunk) as u32);
        }
    }
    spec
}

/// The symbolic worst-case instruction bound of an inner loop in terms of
/// its declared inputs (`r1` = remaining cells). Analyzed once per process.
pub fn kernel_wcet(variant: KernelVariant, with_bt: bool) -> &'static WcetBound {
    static CACHE: OnceLock<[WcetBound; 4]> = OnceLock::new();
    let all = CACHE.get_or_init(|| {
        [
            (KernelVariant::PureC, false),
            (KernelVariant::PureC, true),
            (KernelVariant::Asm, false),
            (KernelVariant::Asm, true),
        ]
        .map(|(v, bt)| wcet::analyze(&program(v, bt), &verify_spec(v)))
    });
    &all[match variant {
        KernelVariant::PureC => 0,
        KernelVariant::Asm => 2,
    } + usize::from(with_bt)]
}

/// Number of tasklets the cross-tasklet race-freedom proof is instantiated
/// for — the paper's per-pool tasklet count.
pub const PROOF_TASKLETS: usize = 4;
/// Cells per anti-diagonal in the canonical proof instantiation. Any
/// multiple of `4 * PROOF_TASKLETS` yields the same per-chunk interval
/// structure; 192 matches the [`measure`] workload.
pub const PROOF_CELLS: usize = 192;

/// Statically prove that `PROOF_TASKLETS` concurrent instances of the loop,
/// each on its own chunk of a `PROOF_CELLS`-cell anti-diagonal, never write
/// a WRAM byte another tasklet touches. Kernels that pass may skip the
/// runtime WRAM sanitizer on the fast path.
pub fn prove_race_free(variant: KernelVariant, with_bt: bool) -> Result<(), String> {
    let specs: Vec<VerifySpec> = (0..PROOF_TASKLETS)
        .map(|t| tasklet_verify_spec(variant, t, PROOF_TASKLETS, PROOF_CELLS))
        .collect();
    wcet::prove_partition(&program(variant, with_bt), &specs)
}

/// Every built-in kernel program with its name and verification contract —
/// the worklist of `upmem-nw lint`.
pub fn builtin_kernels() -> Vec<(String, Vec<Inst>, VerifySpec)> {
    let mut out = Vec::new();
    for variant in [KernelVariant::PureC, KernelVariant::Asm] {
        for with_bt in [false, true] {
            let name = format!(
                "{}/{}",
                match variant {
                    KernelVariant::PureC => "pure_c",
                    KernelVariant::Asm => "asm",
                },
                if with_bt { "traceback" } else { "score_only" }
            );
            out.push((name, program(variant, with_bt), verify_spec(variant)));
        }
    }
    out
}

/// The pre-decoded fast-path form of a built-in loop. Built once per
/// process: the verifier gate and the dense decode are hoisted out of every
/// measurement and benchmark pass.
pub fn prepared(variant: KernelVariant, with_bt: bool) -> &'static Prepared {
    static CACHE: OnceLock<[Prepared; 4]> = OnceLock::new();
    let all = CACHE.get_or_init(|| {
        [
            (KernelVariant::PureC, false),
            (KernelVariant::PureC, true),
            (KernelVariant::Asm, false),
            (KernelVariant::Asm, true),
        ]
        .map(|(v, bt)| {
            let mut prep = Prepared::new(program(v, bt), &verify_spec(v));
            if prove_race_free(v, bt).is_ok() {
                prep.mark_statically_race_free();
            }
            prep
        })
    });
    let idx = match variant {
        KernelVariant::PureC => 0,
        KernelVariant::Asm => 2,
    } + usize::from(with_bt);
    &all[idx]
}

/// The block-translated jit form of a built-in loop ([`pim_sim::isa::Jit`]).
/// Built once per process, like [`prepared`]: verification and translation
/// are hoisted out of every launch.
pub fn jitted(variant: KernelVariant, with_bt: bool) -> &'static Jit {
    static CACHE: OnceLock<[Jit; 4]> = OnceLock::new();
    let all = CACHE.get_or_init(|| {
        [
            (KernelVariant::PureC, false),
            (KernelVariant::PureC, true),
            (KernelVariant::Asm, false),
            (KernelVariant::Asm, true),
        ]
        .map(|(v, bt)| Jit::new(program(v, bt), &verify_spec(v)))
    });
    let idx = match variant {
        KernelVariant::PureC => 0,
        KernelVariant::Asm => 2,
    } + usize::from(with_bt);
    &all[idx]
}

/// The launch-entry verdicts for a built-in loop, evaluated once per
/// process instead of on every launch: the entry constants declared by
/// [`verify_spec`] exclude `r1` (the caller-chosen cell count), so the
/// verdict is identical for every [`loop_machine`] state and WRAM image
/// the harness produces. Index 0 is the fast path's gate, 1 the jit's.
fn entry_gates(variant: KernelVariant, with_bt: bool) -> (EntryGate, EntryGate) {
    static CACHE: OnceLock<[(EntryGate, EntryGate); 4]> = OnceLock::new();
    let all = CACHE.get_or_init(|| {
        [
            (KernelVariant::PureC, false),
            (KernelVariant::PureC, true),
            (KernelVariant::Asm, false),
            (KernelVariant::Asm, true),
        ]
        .map(|(v, bt)| {
            let m = loop_machine(v, 4);
            let fast = prepared(v, bt).entry_gate(&m, WRAM_LEN);
            let jit = jitted(v, bt).entry_gate(&m, WRAM_LEN);
            (fast, jit)
        })
    });
    let idx = match variant {
        KernelVariant::PureC => 0,
        KernelVariant::Asm => 2,
    } + usize::from(with_bt);
    all[idx]
}

/// One benchmark pass of an inner loop over `cells` cells on representative
/// band data, returning the run stats and final WRAM so callers can check
/// bit-identity between modes. `perturb` varies the band contents so
/// repeated passes are not byte-identical (perturb 0 reproduces the
/// [`measure`] workload exactly).
pub fn bench_cells(
    variant: KernelVariant,
    with_bt: bool,
    perturb: u32,
    cells: usize,
    mode: InterpMode,
) -> Result<(RunStats, Vec<u8>), IsaError> {
    assert!(cells <= MAX_CELLS);
    let mut wram = band_wram(cells, perturb);
    let stats = bench_pass(variant, with_bt, cells, mode, &mut wram)?;
    Ok((stats, wram))
}

/// [`bench_cells`] without the per-pass allocation: runs against a
/// thread-local band buffer and folds [`output_digest`] over `h` in place.
/// Re-initialization covers every byte the loop reads (the sanitizer
/// proves that set) and every byte the digest covers, so the digest stream
/// is identical to the fresh-allocation path regardless of what pass ran
/// on the buffer before. This is the benchmark hot path — the measured
/// per-pass cost is the interpreter tier, not 15 KB of `vec!` churn.
pub fn bench_cells_digest(
    variant: KernelVariant,
    with_bt: bool,
    perturb: u32,
    cells: usize,
    mode: InterpMode,
    h: u64,
) -> Result<(RunStats, u64), IsaError> {
    assert!(cells <= MAX_CELLS);
    thread_local! {
        static BAND: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    BAND.with(|b| {
        let mut wram = b.borrow_mut();
        band_wram_into(&mut wram, cells, perturb);
        let stats = bench_pass(variant, with_bt, cells, mode, &mut wram)?;
        Ok((stats, output_digest(&wram, cells, h)))
    })
}

fn bench_pass(
    variant: KernelVariant,
    with_bt: bool,
    cells: usize,
    mode: InterpMode,
    wram: &mut [u8],
) -> Result<RunStats, IsaError> {
    let mut m = loop_machine(variant, cells);
    let prep = prepared(variant, with_bt);
    let (fast_gate, jit_gate) = entry_gates(variant, with_bt);
    match mode {
        InterpMode::Checked => m.run(prep.program(), wram, DEFAULT_MAX_STEPS),
        InterpMode::Fast => m.run_prepared_gated(prep, fast_gate, wram, DEFAULT_MAX_STEPS),
        InterpMode::Jit => {
            m.run_jit_gated(jitted(variant, with_bt), jit_gate, wram, DEFAULT_MAX_STEPS)
        }
    }
}

/// Interpreter-core timing probe: rebuild the band once, then rerun the
/// selected tier `passes` times against it (dirty reuse — digests are not
/// meaningful here, only wall time and instruction counts are). For
/// profiling the tiers without the per-pass harness cost of
/// [`bench_cells`]; not part of the benchmark contract.
#[doc(hidden)]
pub fn core_bench(
    variant: KernelVariant,
    with_bt: bool,
    cells: usize,
    passes: u32,
    mode: InterpMode,
) -> u64 {
    let mut wram = band_wram(cells, 0);
    let prep = prepared(variant, with_bt);
    let jit = jitted(variant, with_bt);
    let mut total = 0u64;
    for _ in 0..passes {
        let mut m = loop_machine(variant, cells);
        let stats = match mode {
            InterpMode::Checked => m.run(prep.program(), &mut wram, DEFAULT_MAX_STEPS),
            InterpMode::Fast => m.run_prepared(prep, &mut wram, DEFAULT_MAX_STEPS),
            InterpMode::Jit => m.run_jit(jit, &mut wram, DEFAULT_MAX_STEPS),
        }
        .expect("core bench pass");
        total += stats.instructions;
    }
    total
}

/// Passes per timed calibration sample: long enough that `Instant`
/// granularity is noise, short enough that the one-time probe stays in the
/// low milliseconds per tier.
const PROBE_PASSES: u32 = 24;
/// Best-of repetitions per tier; round-robin so scheduler drift hits every
/// tier equally.
const PROBE_REPS: usize = 3;

fn cache_index(variant: KernelVariant, with_bt: bool) -> usize {
    let base = match variant {
        KernelVariant::PureC => 0,
        KernelVariant::Asm => 2,
    };
    base + usize::from(with_bt)
}

/// The interpreter tier `--interp-mode auto` should pick for this kernel,
/// decided once per process from a timed calibration probe.
///
/// Eligibility gates come first: a kernel that fails fast-path
/// verification runs [`InterpMode::Checked`], one the block translator
/// cannot cover runs [`InterpMode::Fast`]. When both accelerated tiers are
/// available the *measured* faster one wins — `BENCH_sim.json` shows the
/// JIT is slower than the fast tier for the `pure_c` kernels (blocks too
/// short for the cell matcher), so "eligible" must not mean "chosen". The
/// probe runs [`core_bench`] round-robin, best-of-[`PROBE_REPS`], on the
/// exact prepared/jitted artifacts production launches use.
pub fn auto_mode(variant: KernelVariant, with_bt: bool) -> InterpMode {
    static CACHE: [OnceLock<InterpMode>; 4] = [const { OnceLock::new() }; 4];
    *CACHE[cache_index(variant, with_bt)].get_or_init(|| {
        if !prepared(variant, with_bt).fast_eligible() {
            return InterpMode::Checked;
        }
        if !jitted(variant, with_bt).jit_eligible() {
            return InterpMode::Fast;
        }
        let mut best = [f64::INFINITY; 2];
        let tiers = [InterpMode::Fast, InterpMode::Jit];
        // Warm both code paths (lazy translation, icache) off the clock.
        for mode in tiers {
            core_bench(variant, with_bt, PROOF_CELLS, 1, mode);
        }
        for _ in 0..PROBE_REPS {
            for (slot, mode) in best.iter_mut().zip(tiers) {
                let t = Instant::now();
                core_bench(variant, with_bt, PROOF_CELLS, PROBE_PASSES, mode);
                *slot = slot.min(t.elapsed().as_secs_f64());
            }
        }
        if best[1] < best[0] {
            InterpMode::Jit
        } else {
            InterpMode::Fast
        }
    })
}

/// Measured host-side interpreter throughput in simulated instructions per
/// second for one kernel/tier, memoized per process. The WCET bounds price
/// a job in *simulated* cycles; this converts them to host seconds on the
/// machine actually running the simulator, which is what the backend
/// router's first-batch PiM estimate needs before any feedback exists.
pub fn host_instr_rate(variant: KernelVariant, with_bt: bool, mode: InterpMode) -> f64 {
    static CACHE: [OnceLock<f64>; 12] = [const { OnceLock::new() }; 12];
    let midx = match mode {
        InterpMode::Checked => 0,
        InterpMode::Fast => 1,
        InterpMode::Jit => 2,
    };
    *CACHE[cache_index(variant, with_bt) * 3 + midx].get_or_init(|| {
        // Fall back to an always-legal tier if the requested one is gated.
        let mode = if mode == InterpMode::Jit && !jitted(variant, with_bt).jit_eligible() {
            InterpMode::Fast
        } else {
            mode
        };
        let mode = if mode == InterpMode::Fast && !prepared(variant, with_bt).fast_eligible() {
            InterpMode::Checked
        } else {
            mode
        };
        core_bench(variant, with_bt, PROOF_CELLS, 1, mode);
        let mut best = f64::INFINITY;
        let mut instrs = 0u64;
        for _ in 0..PROBE_REPS {
            let t = Instant::now();
            instrs = core_bench(variant, with_bt, PROOF_CELLS, PROBE_PASSES, mode);
            best = best.min(t.elapsed().as_secs_f64());
        }
        (instrs as f64 / best.max(1e-9)).max(1.0)
    })
}

/// Order-sensitive digest of a pass's outputs — the current H/D/I rows and
/// the backtrack row of a [`bench_cells`] WRAM image. `bench --sim` chains
/// this across passes to check bit-identity between interpreter modes and
/// thread counts end to end.
pub fn output_digest(wram: &[u8], cells: usize, h: u64) -> u64 {
    const M: u64 = 0x9E37_79B9_7F4A_7C15;
    #[inline(always)]
    fn mix(l: u64, v: u64) -> u64 {
        (l ^ v).wrapping_mul(M).rotate_left(17)
    }
    // Four independent lanes: the multiply/rotate chain is latency-bound,
    // so a single running word would serialize ~4 cycles per 8 bytes. The
    // lanes fold back into one word at the end.
    let mut lane = [
        h ^ 0xA5A5_A5A5_A5A5_A5A5,
        h.rotate_left(13) ^ M,
        h.rotate_left(29) ^ 0x0F0F_0F0F_0F0F_0F0F,
        h.wrapping_mul(M) | 1,
    ];
    for (base, len) in [
        (H_CUR, 4 * (cells + 1)),
        (D_CUR, 4 * (cells + 1)),
        (I_CUR, 4 * (cells + 1)),
        (BT_ROW, cells),
    ] {
        let region = &wram[base..base + len];
        let mut it = region.chunks_exact(32);
        for c in it.by_ref() {
            for (l, w) in lane.iter_mut().zip(c.chunks_exact(8)) {
                let v = u64::from_le_bytes(w.try_into().expect("exact chunk"));
                *l = mix(*l, v);
            }
        }
        for (k, c) in it.remainder().chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w[..c.len()].copy_from_slice(c);
            lane[k & 3] = mix(lane[k & 3], u64::from_le_bytes(w));
        }
    }
    let mut out = lane[0];
    for &l in &lane[1..] {
        out = mix(out, l);
    }
    out
}

/// Result of interpreting an inner loop over `cells` cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopMeasurement {
    /// Instructions retired per cell (including loop overhead).
    pub instr_per_cell: f64,
    /// Total instructions.
    pub total_instructions: u64,
    /// Cells processed.
    pub cells: usize,
}

/// Run the loop on representative data (~70 % matching bases, mixed H/D/I
/// winners) and measure instructions per cell.
pub fn measure(variant: KernelVariant, with_bt: bool) -> LoopMeasurement {
    run_measurement(variant, with_bt, false, InterpMode::default())
        .expect("inner loop must run to completion")
}

/// The production measurement path: statically race-free kernels
/// ([`prove_race_free`]) take the dense fast path with no runtime
/// sanitizer; a kernel without a partition proof falls back to the checked
/// interpreter under the WRAM sanitizer. CI keeps [`measure_sanitized`] as
/// the differential oracle for proven kernels regardless.
pub fn measure_gated(variant: KernelVariant, with_bt: bool) -> LoopMeasurement {
    measure_gated_mode(variant, with_bt, InterpMode::default())
}

/// [`measure_gated`] through an explicit interpreter tier: unproven kernels
/// still fall back to the checked+sanitized path regardless of `mode`, and
/// all tiers are bit-identical, so the measured counts never depend on the
/// tier — only the measurement's own wall time does.
pub fn measure_gated_mode(
    variant: KernelVariant,
    with_bt: bool,
    mode: InterpMode,
) -> LoopMeasurement {
    let sanitize = !prepared(variant, with_bt).statically_race_free();
    run_measurement(variant, with_bt, sanitize, mode)
        .expect("inner loop must run to completion (sanitizer faults are kernel bugs)")
}

/// Like [`measure`], but with the runtime sanitizer attached: WRAM shadow
/// memory flags any read the harness did not initialize, and ownership
/// tracking would flag cross-tasklet races. Errors are sanitizer faults.
pub fn measure_sanitized(
    variant: KernelVariant,
    with_bt: bool,
) -> Result<LoopMeasurement, IsaError> {
    run_measurement(variant, with_bt, true, InterpMode::Checked)
}

fn run_measurement(
    variant: KernelVariant,
    with_bt: bool,
    sanitize: bool,
    mode: InterpMode,
) -> Result<LoopMeasurement, IsaError> {
    let cells = 192usize;
    assert!(cells <= MAX_CELLS);
    let prep = prepared(variant, with_bt);
    let mut wram = band_wram(cells, 0);
    let mut m = loop_machine(variant, cells);
    let stats = if sanitize {
        // Unpoison exactly what the harness initialized; the sanitizer then
        // proves the loop reads nothing else. Sanitized runs always take the
        // fully checked path — the watch hooks need per-access visibility.
        let seq_len = cells.max(4) + 4;
        let mut shadow = WramShadow::new(WRAM_LEN);
        for base in [H_PREV, H_PREV2, D_PREV, I_PREV] {
            shadow.host_write(base, 4 * (cells + 1));
        }
        shadow.host_write(A_SEQ, seq_len);
        shadow.host_write(B_SEQ, seq_len);
        m.run_sanitized(prep.program(), &mut wram, DEFAULT_MAX_STEPS, &mut shadow, 0)?
    } else {
        match mode {
            InterpMode::Checked => m.run(prep.program(), &mut wram, DEFAULT_MAX_STEPS)?,
            InterpMode::Fast => m.run_prepared(prep, &mut wram, DEFAULT_MAX_STEPS)?,
            InterpMode::Jit => m.run_jit(jitted(variant, with_bt), &mut wram, DEFAULT_MAX_STEPS)?,
        }
    };
    Ok(LoopMeasurement {
        instr_per_cell: stats.instructions as f64 / cells as f64,
        total_instructions: stats.instructions,
        cells,
    })
}

/// Representative band contents: slowly varying scores so max() picks
/// different branches across cells, and ~70% matching bases. `perturb`
/// shifts both so benchmark passes differ; perturb 0 is the canonical
/// [`measure`] workload.
fn band_wram(cells: usize, perturb: u32) -> Vec<u8> {
    let mut wram = Vec::new();
    band_wram_into(&mut wram, cells, perturb);
    wram
}

/// Initialize `wram` as [`band_wram`] would, reusing its storage. The band
/// content depends on `perturb` only through `perturb % 7` and
/// `perturb % 3`, so there are 21 distinct images per cell count; they are
/// built once per thread and re-initialization is a copy of the input
/// regions plus a re-zero of the output rows. Bytes outside those regions
/// are neither read by the loops (sanitizer-proven) nor digested, so their
/// staleness is unobservable.
fn band_wram_into(wram: &mut Vec<u8>, cells: usize, perturb: u32) {
    type ImageKey = (u32, u32, usize);
    let key: ImageKey = (perturb % 7, perturb % 3, cells);
    thread_local! {
        static IMAGES: std::cell::RefCell<Vec<(ImageKey, Vec<u8>)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    IMAGES.with(|images| {
        let mut images = images.borrow_mut();
        if !images.iter().any(|(k, _)| *k == key) {
            let mut img = vec![0u8; WRAM_LEN];
            fill_band(&mut img, cells, perturb);
            images.push((key, img));
        }
        let img = &images
            .iter()
            .find(|(k, _)| *k == key)
            .expect("just inserted")
            .1;
        if wram.len() != WRAM_LEN {
            wram.clear();
            wram.extend_from_slice(img);
            return;
        }
        let seq_len = cells.max(4) + 4;
        for (base, len) in [
            (H_PREV, 4 * (cells + 1)),
            (H_PREV2, 4 * (cells + 1)),
            (D_PREV, 4 * (cells + 1)),
            (I_PREV, 4 * (cells + 1)),
            (A_SEQ, seq_len),
            (B_SEQ, seq_len),
        ] {
            wram[base..base + len].copy_from_slice(&img[base..base + len]);
        }
        for (base, len) in [
            (H_CUR, 4 * (cells + 1)),
            (D_CUR, 4 * (cells + 1)),
            (I_CUR, 4 * (cells + 1)),
            (BT_ROW, cells),
        ] {
            wram[base..base + len].fill(0);
        }
    });
}

/// The canonical band pattern (see [`band_wram`]).
fn fill_band(wram: &mut [u8], cells: usize, perturb: u32) {
    let p = (perturb % 7) as i32;
    for k in 0..cells + 1 {
        let v = (k as i32 % 13) * 3 - 12 + p;
        write_i32(wram, H_PREV + 4 * k, v);
        write_i32(wram, H_PREV2 + 4 * k, v + 2);
        write_i32(wram, D_PREV + 4 * k, v - 5 + (k as i32 % 3));
        write_i32(wram, I_PREV + 4 * k, v - 4 - (k as i32 % 2));
    }
    let seq_len = cells.max(4) + 4;
    for k in 0..seq_len {
        let j = k + perturb as usize % 3;
        wram[A_SEQ + k] = (j % 4) as u8;
        wram[B_SEQ + k] = if k % 3 == 0 {
            ((j + 1) % 4) as u8
        } else {
            (j % 4) as u8
        };
    }
}

/// Machine entry state for an inner loop: exactly the registers declared as
/// inputs by [`verify_spec`], so the fast path's entry-state gate holds.
fn loop_machine(variant: KernelVariant, cells: usize) -> Machine {
    let mut m = Machine::new();
    m.regs[1] = cells as u32;
    match variant {
        KernelVariant::PureC => {
            m.regs[2] = H_PREV as u32;
            m.regs[3] = H_PREV2 as u32;
            m.regs[4] = D_PREV as u32;
            m.regs[5] = I_PREV as u32;
            m.regs[6] = H_CUR as u32;
            m.regs[7] = D_CUR as u32;
            m.regs[8] = I_CUR as u32;
            m.regs[9] = A_SEQ as u32;
            m.regs[10] = B_SEQ as u32;
            m.regs[11] = BT_ROW as u32;
        }
        KernelVariant::Asm => {
            m.regs[2] = 0; // scaled index k*4; loads carry the array bases
            m.regs[9] = A_SEQ as u32;
            m.regs[10] = B_SEQ as u32;
            m.regs[11] = BT_ROW as u32;
        }
    }
    m
}

fn write_i32(buf: &mut [u8], off: usize, v: i32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_assemble() {
        for v in [KernelVariant::PureC, KernelVariant::Asm] {
            for bt in [false, true] {
                assert!(!program(v, bt).is_empty());
            }
        }
    }

    #[test]
    fn builtin_kernels_verify_clean() {
        use pim_sim::isa::{error_count, verify_program};
        let kernels = builtin_kernels();
        assert_eq!(kernels.len(), 4);
        for (name, prog, spec) in &kernels {
            let diags = verify_program(prog, spec);
            let errors: Vec<_> = diags.iter().filter(|d| d.is_error()).collect();
            assert_eq!(error_count(&diags), 0, "{name}: {errors:?}");
            // The loops are warning-free too: every read is dominated by a
            // write or a declared input.
            assert!(
                !diags
                    .iter()
                    .any(|d| d.severity == pim_sim::isa::Severity::Warning),
                "{name}: {diags:?}"
            );
        }
    }

    #[test]
    fn builtin_kernels_have_finite_wcet_bounds() {
        for variant in [KernelVariant::PureC, KernelVariant::Asm] {
            for bt in [false, true] {
                let bound = kernel_wcet(variant, bt);
                assert!(bound.is_finite(), "{variant:?} bt={bt}: {bound}");
                // The symbolic bound mentions only declared inputs, so it
                // evaluates under any concrete cell count.
                let params = pim_sim::isa::KernelParams::new().set(Reg::new(1).unwrap(), 192);
                assert!(bound.eval(&params).is_some(), "{variant:?} bt={bt}");
            }
        }
    }

    #[test]
    fn wcet_bound_dominates_measured_instruction_count() {
        for variant in [KernelVariant::PureC, KernelVariant::Asm] {
            for bt in [false, true] {
                let measured = measure(variant, bt);
                let params = pim_sim::isa::KernelParams::new()
                    .set(Reg::new(1).unwrap(), measured.cells as u64);
                let bound = kernel_wcet(variant, bt)
                    .eval(&params)
                    .expect("finite bound");
                assert!(
                    measured.total_instructions <= bound,
                    "{variant:?} bt={bt}: ran {} > bound {bound}",
                    measured.total_instructions
                );
            }
        }
    }

    #[test]
    fn builtin_kernels_prove_race_free() {
        for variant in [KernelVariant::PureC, KernelVariant::Asm] {
            for bt in [false, true] {
                prove_race_free(variant, bt).unwrap_or_else(|e| panic!("{variant:?} bt={bt}: {e}"));
                assert!(
                    prepared(variant, bt).statically_race_free(),
                    "{variant:?} bt={bt}: prepared form not marked race-free"
                );
            }
        }
    }

    #[test]
    fn sanitized_measurement_matches_plain() {
        for variant in [KernelVariant::PureC, KernelVariant::Asm] {
            for bt in [false, true] {
                let plain = measure(variant, bt);
                let sanitized = measure_sanitized(variant, bt)
                    .unwrap_or_else(|e| panic!("{variant:?} bt={bt}: {e}"));
                assert_eq!(plain, sanitized);
                // The gated production path agrees with both: for proven
                // kernels it is the unsanitized fast path, and the
                // differential oracle above pins that to the sanitized run.
                assert_eq!(plain, measure_gated(variant, bt));
            }
        }
    }

    #[test]
    fn builtin_loops_take_the_fast_path() {
        for variant in [KernelVariant::PureC, KernelVariant::Asm] {
            for bt in [false, true] {
                let prep = prepared(variant, bt);
                assert!(prep.fast_eligible(), "{variant:?} bt={bt}");
                assert!(prep.fused_windows() > 0, "{variant:?} bt={bt}: no fusion");
                // The measurement harness really lands on the dense path:
                // stats and final WRAM are bit-identical to a checked run.
                for perturb in [0u32, 3, 11] {
                    let (cs, cw) = bench_cells(variant, bt, perturb, 64, InterpMode::Checked)
                        .expect("checked pass");
                    let (fs, fw) =
                        bench_cells(variant, bt, perturb, 64, InterpMode::Fast).expect("fast pass");
                    assert_eq!(cs, fs, "{variant:?} bt={bt} perturb={perturb}");
                    assert_eq!(cw, fw, "{variant:?} bt={bt} perturb={perturb}");
                }
            }
        }
    }

    #[test]
    fn asm_is_faster_than_c() {
        for bt in [false, true] {
            let c = measure(KernelVariant::PureC, bt);
            let a = measure(KernelVariant::Asm, bt);
            assert!(
                a.instr_per_cell < c.instr_per_cell,
                "bt={bt}: asm {} !< C {}",
                a.instr_per_cell,
                c.instr_per_cell
            );
        }
    }

    #[test]
    fn speedup_ratio_matches_table7_band() {
        // Table 7 reports 1.36x (score-only 16S) to 1.69x (with traceback).
        let c_bt = measure(KernelVariant::PureC, true).instr_per_cell;
        let a_bt = measure(KernelVariant::Asm, true).instr_per_cell;
        let ratio_bt = c_bt / a_bt;
        assert!((1.3..=1.9).contains(&ratio_bt), "with-BT ratio {ratio_bt}");

        let c_so = measure(KernelVariant::PureC, false).instr_per_cell;
        let a_so = measure(KernelVariant::Asm, false).instr_per_cell;
        let ratio_so = c_so / a_so;
        assert!(
            (1.15..=1.75).contains(&ratio_so),
            "score-only ratio {ratio_so}"
        );

        // The with-BT gain exceeds the score-only gain: the BT encoding is
        // where the fused-jump tricks pay most (the paper's 16S explanation).
        assert!(
            ratio_bt > ratio_so,
            "bt {ratio_bt} vs score-only {ratio_so}"
        );
    }

    #[test]
    fn loops_compute_real_updates() {
        // After a run, h_cur/d_cur/i_cur must hold genuine max() results for
        // the first cell: check cell 0 by hand for both variants.
        for variant in [KernelVariant::PureC, KernelVariant::Asm] {
            let cells = 192;
            let prog = program(variant, true);
            let mut wram = vec![0u8; WRAM_LEN];
            for k in 0..cells + 1 {
                let v = (k as i32 % 13) * 3 - 12;
                write_i32(&mut wram, H_PREV + 4 * k, v);
                write_i32(&mut wram, H_PREV2 + 4 * k, v + 2);
                write_i32(&mut wram, D_PREV + 4 * k, v - 5 + (k as i32 % 3));
                write_i32(&mut wram, I_PREV + 4 * k, v - 4 - (k as i32 % 2));
            }
            for k in 0..cells + 4 {
                wram[A_SEQ + k] = (k % 4) as u8;
                wram[B_SEQ + k] = if k % 3 == 0 {
                    ((k + 1) % 4) as u8
                } else {
                    (k % 4) as u8
                };
            }
            let mut m = Machine::new();
            m.regs[1] = cells as u32;
            m.regs[9] = A_SEQ as u32;
            m.regs[10] = B_SEQ as u32;
            m.regs[11] = BT_ROW as u32;
            if variant == KernelVariant::PureC {
                m.regs[2] = H_PREV as u32;
                m.regs[3] = H_PREV2 as u32;
                m.regs[4] = D_PREV as u32;
                m.regs[5] = I_PREV as u32;
                m.regs[6] = H_CUR as u32;
                m.regs[7] = D_CUR as u32;
                m.regs[8] = I_CUR as u32;
            }
            m.run(&prog, &mut wram, 10_000_000).unwrap();

            // Hand-computed cell 0: h_prev[0] = -12, h_prev2[0] = -10,
            // d_prev[0] = -17, i_prev[1] = -14... wait i uses k+1: v(1)=-9,
            // i_prev[1] = -9 - 4 - 1 = -14, h_prev[1] = -9.
            // a[0]=0, b[0]=1 -> mismatch (k%3==0), sub = -4.
            // Keep the full max() shapes: they mirror the affine recurrence
            // even where one arm is statically larger.
            #[allow(clippy::unnecessary_min_or_max)]
            let d_val = (-17 - 2).max(-12 - 6); // -18
            #[allow(clippy::unnecessary_min_or_max)]
            let i_val = (-14 - 2).max(-9 - 6); // -15
            let h_val = (-10 + (-4)).max(d_val).max(i_val); // -14
            let read = |off: usize| i32::from_le_bytes(wram[off..off + 4].try_into().unwrap());
            assert_eq!(read(D_CUR), d_val, "{variant:?} d_cur[0]");
            assert_eq!(read(I_CUR), i_val, "{variant:?} i_cur[0]");
            assert_eq!(read(H_CUR), h_val, "{variant:?} h_cur[0]");
            // BT nibble for cell 0: origin = diag-mismatch (h wins via diag).
            assert_eq!(wram[BT_ROW] & 0b11, 1, "{variant:?} origin bits");
        }
    }

    #[test]
    fn variants_agree_on_computed_values() {
        // Same data in, same H/D/I out — only the instruction count differs.
        let cells = 64;
        let run = |variant: KernelVariant| -> Vec<u8> {
            let prog = program(variant, true);
            let mut wram = vec![0u8; WRAM_LEN];
            for k in 0..cells + 1 {
                write_i32(&mut wram, H_PREV + 4 * k, k as i32 - 3);
                write_i32(&mut wram, H_PREV2 + 4 * k, 2 * (k as i32 % 5) - 4);
                write_i32(&mut wram, D_PREV + 4 * k, -(k as i32 % 7));
                write_i32(&mut wram, I_PREV + 4 * k, -(k as i32 % 4) - 2);
            }
            for k in 0..cells + 4 {
                wram[A_SEQ + k] = (k % 4) as u8;
                wram[B_SEQ + k] = ((k / 2) % 4) as u8;
            }
            let mut m = Machine::new();
            m.regs[1] = cells as u32;
            m.regs[9] = A_SEQ as u32;
            m.regs[10] = B_SEQ as u32;
            m.regs[11] = BT_ROW as u32;
            if variant == KernelVariant::PureC {
                m.regs[2] = H_PREV as u32;
                m.regs[3] = H_PREV2 as u32;
                m.regs[4] = D_PREV as u32;
                m.regs[5] = I_PREV as u32;
                m.regs[6] = H_CUR as u32;
                m.regs[7] = D_CUR as u32;
                m.regs[8] = I_CUR as u32;
            }
            m.run(&prog, &mut wram, 10_000_000).unwrap();
            wram[H_CUR..H_CUR + 4 * cells].to_vec()
        };
        assert_eq!(run(KernelVariant::PureC), run(KernelVariant::Asm));
    }
}
