//! The MRAM contract between the host program and the DPU kernel.
//!
//! The host writes (one `host_write`, counted as the batch's transfer
//! volume):
//!
//! ```text
//! 0x00  magic          u32   "NW2P"
//! 0x04  num_jobs       u32
//! 0x08  flags          u32   bit 0: score-only (16S mode)
//! 0x0C  band           u32   adaptive window width (multiple of 16)
//! 0x10  scheme         4xi32 match, mismatch, gap_open, gap_extend
//! 0x20  jobs_off       u32
//! 0x24  out_off        u32
//! 0x28  bt_off         u32   per-pool BT scratch base
//! 0x2C  bt_stride      u32   bytes per pool scratch region
//! jobs_off: per job, 24 bytes:
//!     a_off u32, a_len u32, b_off u32, b_len u32, out_rel u32, pad u32
//! then 2-bit packed sequences, each 8-byte aligned.
//! ```
//!
//! The kernel writes, per job at `out_off + out_rel`:
//!
//! ```text
//! 0x00  magic        u32   "NWRB" — readback integrity sentinel
//! 0x04  status       u32   0 ok, 1 out-of-band, 2 cigar overflow
//! 0x08  score        i32
//! 0x0C  cigar_runs   u32   number of packed runs that follow
//! 0x10  checksum     u32   FNV-1a over status, score, run count and runs
//! 0x14  pad          u32
//! 0x18  runs         u32 x cigar_runs   (count << 4) | op
//! ```
//!
//! The magic word and checksum let the host detect bit corruption on the
//! readback path ([`SimError::ResultCorrupt`]) instead of silently
//! returning a wrong score — the detection point the fault-tolerant
//! dispatch layer retries on.
//!
//! `BT` scratch: pool `p` streams its current job's `BT` rows to
//! `bt_off + p * bt_stride` (row `t` at `t * row_bytes`), then reads them
//! back during traceback — both directions through WRAM with real DMA.

use nw_core::cigar::{Cigar, CigarOp};
use nw_core::seq::PackedSeq;
use nw_core::{Score, ScoringScheme};
use pim_sim::SimError;

/// Magic word identifying a batch image.
pub const MAGIC: u32 = 0x4E57_3250; // "NW2P"

/// Header size in bytes.
pub const HEADER_BYTES: usize = 0x30;
/// Bytes per job-table entry.
pub const JOB_ENTRY_BYTES: usize = 24;
/// Magic word opening every per-job output record ("NWRB").
pub const OUT_MAGIC: u32 = 0x4E57_5242;
/// Bytes of the fixed part of a per-job output record.
pub const OUT_HEADER_BYTES: usize = 24;

/// FNV-1a checksum over a result record's payload: status, score bits, run
/// count, then each packed run — all as little-endian `u32`s. Cheap enough
/// for a DPU (one multiply per word) yet catches any single-bit flip.
pub fn result_checksum(status: u32, score: u32, runs: &[u32]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    let mut eat = |word: u32| {
        for b in word.to_le_bytes() {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
    };
    eat(status);
    eat(score);
    eat(runs.len() as u32);
    for &r in runs {
        eat(r);
    }
    h
}

/// Kernel launch parameters carried in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelParams {
    /// Adaptive window width; must be a multiple of 16 so `BT` rows are
    /// DMA-alignable (w/2 divisible by 8).
    pub band: usize,
    /// Scoring scheme.
    pub scheme: ScoringScheme,
    /// Score-only mode: skip `BT` and traceback entirely (§5.3).
    pub score_only: bool,
}

impl KernelParams {
    /// The paper's DPU configuration: adaptive band 128, minimap2 scoring.
    pub fn paper_default() -> Self {
        Self {
            band: 128,
            scheme: ScoringScheme::default(),
            score_only: false,
        }
    }
}

/// Reference to a packed sequence already resident (or to become resident)
/// in MRAM: absolute byte offset + base count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqRef {
    /// Absolute MRAM byte offset (8-aligned).
    pub off: u32,
    /// Length in bases.
    pub len: u32,
}

/// Where a job's sequence comes from.
#[derive(Debug, Clone, Copy)]
enum SeqSource {
    /// Index into the builder's arena (payload shipped in this image).
    Arena(usize),
    /// Absolute reference into MRAM written by some other transfer (the
    /// broadcast arena of the 16S mode, §5.3).
    External(SeqRef),
}

/// One job (a pair to align) as seen host-side while building a batch.
#[derive(Debug, Clone, Copy)]
struct JobSpec {
    a: SeqSource,
    a_len: usize,
    b: SeqSource,
    b_len: usize,
}

/// Completion status of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Alignment produced.
    Ok,
    /// The adaptive window could not reach the end cell (band too small).
    OutOfBand,
    /// CIGAR exceeded the host-reserved space (cannot happen with the
    /// default reservation; kept for failure injection).
    CigarOverflow,
    /// The job never ran to completion: the host interrupted or shed the
    /// run before this job's launch finished. Host-side only — the kernel
    /// never writes this status; the dispatch layer uses it to fill the
    /// slots of jobs a partial run left behind.
    Cancelled,
}

impl JobStatus {
    /// Wire encoding.
    pub fn code(self) -> u32 {
        match self {
            JobStatus::Ok => 0,
            JobStatus::OutOfBand => 1,
            JobStatus::CigarOverflow => 2,
            JobStatus::Cancelled => 3,
        }
    }

    /// Decode.
    pub fn from_code(code: u32) -> Option<Self> {
        match code {
            0 => Some(JobStatus::Ok),
            1 => Some(JobStatus::OutOfBand),
            2 => Some(JobStatus::CigarOverflow),
            3 => Some(JobStatus::Cancelled),
            _ => None,
        }
    }
}

/// A finished job read back from MRAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// Completion status.
    pub status: JobStatus,
    /// Band-constrained score (meaningless unless `status == Ok`).
    pub score: Score,
    /// CIGAR (empty in score-only mode or on failure).
    pub cigar: Cigar,
}

/// A built batch: the input image plus the layout needed to read results.
#[derive(Debug, Clone)]
pub struct JobBatch {
    /// Bytes the host transfers to MRAM offset 0.
    pub image: Vec<u8>,
    /// Launch parameters (duplicated in the header).
    pub params: KernelParams,
    /// Per-job output record offsets (absolute MRAM offsets).
    pub out_offsets: Vec<(usize, usize)>,
    /// Total MRAM footprint including outputs and BT scratch.
    pub mram_footprint: usize,
    /// Estimated workload per eq. 6: `sum (m + n) * w`.
    pub workload: u64,
}

/// One job's output record as raw words straight off MRAM: the readback
/// half of result collection, split from [`RawResult::decode`] so a
/// transfer thread can pull records while another thread verifies and
/// expands them (the pipelined dispatcher's raw/decode split).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawResult {
    /// Absolute MRAM offset the record was read from.
    pub offset: usize,
    /// Status word as transmitted (validated at decode time).
    pub status_code: u32,
    /// Score bits as transmitted.
    pub score_bits: u32,
    /// Stored FNV checksum.
    pub stored_sum: u32,
    /// Packed CIGAR run words (`count << 4 | op`).
    pub packed_runs: Vec<u32>,
}

impl RawResult {
    /// Bytes this record occupied on the wire (header + packed runs).
    pub fn byte_len(&self) -> u64 {
        OUT_HEADER_BYTES as u64 + 4 * self.packed_runs.len() as u64
    }

    /// Verify and expand the raw record: checksum, status code, CIGAR ops.
    pub fn decode(&self) -> Result<JobResult, SimError> {
        if result_checksum(self.status_code, self.score_bits, &self.packed_runs) != self.stored_sum
        {
            return Err(SimError::ResultCorrupt {
                offset: self.offset,
                detail: "checksum mismatch",
            });
        }
        let status = JobStatus::from_code(self.status_code).ok_or(SimError::KernelFault {
            code: self.status_code,
            message: "bad status code in output record".into(),
        })?;
        let mut cigar = Cigar::new();
        for &packed in &self.packed_runs {
            let count = packed >> 4;
            let op = match packed & 0xF {
                0 => CigarOp::Match,
                1 => CigarOp::Mismatch,
                2 => CigarOp::Insertion,
                3 => CigarOp::Deletion,
                other => {
                    return Err(SimError::KernelFault {
                        code: other,
                        message: "bad cigar op in output record".into(),
                    })
                }
            };
            cigar.push_run(count, op);
        }
        Ok(JobResult {
            status,
            score: self.score_bits as i32,
            cigar,
        })
    }
}

impl JobBatch {
    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.out_offsets.len()
    }

    /// True when no jobs were added.
    pub fn is_empty(&self) -> bool {
        self.out_offsets.is_empty()
    }

    /// Transfer volume host->DPU in bytes.
    pub fn transfer_bytes(&self) -> u64 {
        self.image.len() as u64
    }

    /// Read the raw result records back from a DPU's MRAM: the magic word
    /// and the run-count-vs-capacity bound are checked here (a corrupt run
    /// count could otherwise drive an out-of-capacity read); checksum,
    /// status and CIGAR validation happen in [`RawResult::decode`].
    pub fn read_raw_results(&self, mram: &pim_sim::Mram) -> Result<Vec<RawResult>, SimError> {
        let mut out = Vec::with_capacity(self.out_offsets.len());
        for &(off, cap) in &self.out_offsets {
            let head = mram.host_read(off, OUT_HEADER_BYTES)?;
            if read_u32(&head, 0) != OUT_MAGIC {
                return Err(SimError::ResultCorrupt {
                    offset: off,
                    detail: "bad result magic",
                });
            }
            let status_code = read_u32(&head, 4);
            let score_bits = read_u32(&head, 8);
            let runs = read_u32(&head, 12) as usize;
            let stored_sum = read_u32(&head, 16);
            if runs > 0 && OUT_HEADER_BYTES + runs * 4 > cap {
                return Err(SimError::ResultCorrupt {
                    offset: off,
                    detail: "cigar runs exceed record capacity",
                });
            }
            let mut packed_runs = Vec::with_capacity(runs);
            if runs > 0 {
                let bytes = mram.host_read(off + OUT_HEADER_BYTES, runs * 4)?;
                for r in 0..runs {
                    packed_runs.push(read_u32(&bytes, r * 4));
                }
            }
            out.push(RawResult {
                offset: off,
                status_code,
                score_bits,
                stored_sum,
                packed_runs,
            });
        }
        Ok(out)
    }

    /// Read the results back from a DPU's MRAM after the kernel ran.
    ///
    /// Every record is integrity-checked: a wrong magic word or a checksum
    /// mismatch returns [`SimError::ResultCorrupt`] — the caller knows the
    /// job must be re-run rather than trusting a bit-flipped score. This is
    /// [`Self::read_raw_results`] + [`RawResult::decode`] in one step.
    pub fn read_results(&self, mram: &pim_sim::Mram) -> Result<Vec<JobResult>, SimError> {
        self.read_raw_results(mram)?
            .iter()
            .map(RawResult::decode)
            .collect()
    }
}

/// Builds the MRAM image for one DPU.
#[derive(Debug)]
pub struct JobBatchBuilder {
    params: KernelParams,
    pools: usize,
    jobs: Vec<JobSpec>,
    arena: Vec<PackedSeq>,
    /// Upper bound on the batch footprint (outputs + BT scratch must stay
    /// below any externally-written region such as a broadcast arena).
    footprint_limit: Option<usize>,
}

impl JobBatchBuilder {
    /// Start a batch. `pools` is the number of tasklet pools the kernel will
    /// run (needed to size the per-pool `BT` scratch).
    pub fn new(params: KernelParams, pools: usize) -> Self {
        assert!(
            params.band >= 16 && params.band.is_multiple_of(16),
            "band must be a multiple of 16 (BT rows must be DMA-alignable)"
        );
        assert!(pools >= 1, "at least one pool");
        Self {
            params,
            pools,
            jobs: Vec::new(),
            arena: Vec::new(),
            footprint_limit: None,
        }
    }

    /// Cap the batch footprint: everything this batch places in MRAM
    /// (image, outputs, `BT` scratch) must stay below `limit`. Used when an
    /// externally broadcast arena occupies MRAM above `limit`.
    pub fn set_footprint_limit(&mut self, limit: usize) {
        self.footprint_limit = Some(limit);
    }

    /// Add a sequence to this image's arena, returning its index. Sequences
    /// shared by many jobs (the PacBio sets of §5.4) are stored once.
    pub fn add_seq(&mut self, s: PackedSeq) -> usize {
        self.arena.push(s);
        self.arena.len() - 1
    }

    /// Queue a pair of arena sequences by index (see [`Self::add_seq`]).
    pub fn add_pair_idx(&mut self, a: usize, b: usize) {
        let a_len = self.arena[a].len();
        let b_len = self.arena[b].len();
        self.jobs.push(JobSpec {
            a: SeqSource::Arena(a),
            a_len,
            b: SeqSource::Arena(b),
            b_len,
        });
    }

    /// Queue a pair referencing sequences already resident in MRAM (the
    /// broadcast arena of the 16S mode).
    pub fn add_pair_external(&mut self, a: SeqRef, b: SeqRef) {
        self.jobs.push(JobSpec {
            a: SeqSource::External(a),
            a_len: a.len as usize,
            b: SeqSource::External(b),
            b_len: b.len as usize,
        });
    }

    /// Queue a pair for alignment (each call ships a private copy of both
    /// sequences — the S-dataset pair mode).
    pub fn add_pair(&mut self, a: PackedSeq, b: PackedSeq) {
        let ai = self.add_seq(a);
        let bi = self.add_seq(b);
        self.add_pair_idx(ai, bi);
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Bytes a `BT` row occupies (w/2 rounded to the 8-byte DMA grain).
    pub fn bt_row_bytes(band: usize) -> usize {
        (band / 2).next_multiple_of(8)
    }

    /// Lay out and serialize the image. Fails if the whole batch (inputs,
    /// outputs and `BT` scratch) cannot fit the DPU's MRAM (or the
    /// configured footprint limit).
    pub fn build(self, mram_size: usize) -> Result<JobBatch, SimError> {
        self.build_with(mram_size, Vec::new())
    }

    /// Like [`Self::build`], but serializes into `recycled`, reusing its
    /// allocation when large enough — the per-rank buffer pool of the
    /// pipelined dispatcher feeds spent round-`k` images back through here
    /// for round `k+1` instead of reallocating.
    pub fn build_with(self, mram_size: usize, recycled: Vec<u8>) -> Result<JobBatch, SimError> {
        let n_jobs = self.jobs.len();
        let jobs_off = HEADER_BYTES;
        let seq_off = jobs_off + n_jobs * JOB_ENTRY_BYTES;

        // Place arena sequences (shipped in this image).
        let mut cursor = seq_off.next_multiple_of(8);
        let mut arena_offs = Vec::with_capacity(self.arena.len());
        for s in &self.arena {
            arena_offs.push(cursor);
            cursor = (cursor + s.byte_len().max(1)).next_multiple_of(8);
        }
        let image_len = cursor;

        // Place outputs after the image (kernel-written, not transferred).
        let out_base = image_len.next_multiple_of(8);
        let mut out_cursor = out_base;
        let mut out_offsets = Vec::with_capacity(n_jobs);
        let mut out_rels = Vec::with_capacity(n_jobs);
        let mut workload: u64 = 0;
        let mut max_steps = 1usize;
        for job in &self.jobs {
            let (m, n) = (job.a_len, job.b_len);
            workload += ((m + n) as u64) * self.params.band as u64;
            max_steps = max_steps.max(m + n + 1);
            let cap = if self.params.score_only {
                OUT_HEADER_BYTES
            } else {
                // Worst case: one run per alignment column pair boundary.
                OUT_HEADER_BYTES + 4 * (m + n + 2)
            };
            let cap = cap.next_multiple_of(8);
            out_offsets.push((out_cursor, cap));
            out_rels.push((out_cursor - out_base) as u32);
            out_cursor += cap;
        }

        // Per-pool BT scratch.
        let bt_off = out_cursor.next_multiple_of(8);
        let bt_stride = if self.params.score_only {
            0
        } else {
            max_steps * Self::bt_row_bytes(self.params.band)
        };
        let footprint = bt_off + bt_stride * self.pools;
        let limit = self.footprint_limit.unwrap_or(mram_size).min(mram_size);
        if footprint > limit {
            return Err(SimError::MramOutOfBounds {
                offset: bt_off,
                len: bt_stride * self.pools,
                mram_size: limit,
            });
        }

        // Serialize the input image (zeroed before reuse: padding bytes and
        // gaps must not leak a previous batch's content).
        let mut image = recycled;
        image.clear();
        image.resize(image_len, 0);
        write_u32(&mut image, 0x00, MAGIC);
        write_u32(&mut image, 0x04, n_jobs as u32);
        write_u32(&mut image, 0x08, u32::from(self.params.score_only));
        write_u32(&mut image, 0x0C, self.params.band as u32);
        write_u32(&mut image, 0x10, self.params.scheme.match_score as u32);
        write_u32(&mut image, 0x14, self.params.scheme.mismatch_penalty as u32);
        write_u32(&mut image, 0x18, self.params.scheme.gap_open as u32);
        write_u32(&mut image, 0x1C, self.params.scheme.gap_extend as u32);
        write_u32(&mut image, 0x20, jobs_off as u32);
        write_u32(&mut image, 0x24, out_base as u32);
        write_u32(&mut image, 0x28, bt_off as u32);
        write_u32(&mut image, 0x2C, bt_stride as u32);
        for (idx, s) in self.arena.iter().enumerate() {
            let off = arena_offs[idx];
            image[off..off + s.byte_len()].copy_from_slice(s.as_bytes());
        }
        let resolve = |src: &SeqSource| -> u32 {
            match src {
                SeqSource::Arena(i) => arena_offs[*i] as u32,
                SeqSource::External(r) => r.off,
            }
        };
        for (idx, job) in self.jobs.iter().enumerate() {
            let e = jobs_off + idx * JOB_ENTRY_BYTES;
            write_u32(&mut image, e, resolve(&job.a));
            write_u32(&mut image, e + 4, job.a_len as u32);
            write_u32(&mut image, e + 8, resolve(&job.b));
            write_u32(&mut image, e + 12, job.b_len as u32);
            write_u32(&mut image, e + 16, out_rels[idx]);
        }

        Ok(JobBatch {
            image,
            params: self.params,
            out_offsets,
            mram_footprint: footprint,
            workload,
        })
    }
}

pub(crate) fn read_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"))
}

pub(crate) fn write_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use nw_core::seq::DnaSeq;

    fn packed(text: &str) -> PackedSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap().pack()
    }

    fn params() -> KernelParams {
        KernelParams {
            band: 16,
            ..KernelParams::paper_default()
        }
    }

    #[test]
    fn empty_batch_builds() {
        let batch = JobBatchBuilder::new(params(), 6).build(64 << 20).unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.workload, 0);
        assert_eq!(batch.image.len() % 8, 0);
    }

    #[test]
    fn header_fields_round_trip() {
        let mut b = JobBatchBuilder::new(params(), 2);
        b.add_pair(packed("ACGTACGT"), packed("ACGTAGGT"));
        let batch = b.build(64 << 20).unwrap();
        let img = &batch.image;
        assert_eq!(read_u32(img, 0), MAGIC);
        assert_eq!(read_u32(img, 4), 1);
        assert_eq!(read_u32(img, 0x0C), 16);
        assert_eq!(read_u32(img, 0x10), 2); // match score
        let jobs_off = read_u32(img, 0x20) as usize;
        assert_eq!(read_u32(img, jobs_off + 4), 8); // a_len
        let a_off = read_u32(img, jobs_off) as usize;
        assert_eq!(a_off % 8, 0);
        // Packed "ACGTACGT" = codes 0,1,2,3 repeated.
        let packed_a = PackedSeq::from_raw(img[a_off..a_off + 2].to_vec(), 8).unwrap();
        assert_eq!(packed_a.unpack().to_ascii(), b"ACGTACGT");
    }

    #[test]
    fn workload_follows_eq6() {
        let mut b = JobBatchBuilder::new(params(), 6);
        b.add_pair(packed("ACGTACGT"), packed("ACGT")); // (8+4)*16
        b.add_pair(packed("AC"), packed("AC")); // (2+2)*16
        let batch = b.build(64 << 20).unwrap();
        assert_eq!(batch.workload, 12 * 16 + 4 * 16);
    }

    #[test]
    fn bt_row_bytes_are_dma_grain() {
        assert_eq!(JobBatchBuilder::bt_row_bytes(16), 8);
        assert_eq!(JobBatchBuilder::bt_row_bytes(128), 64);
        assert_eq!(JobBatchBuilder::bt_row_bytes(48), 24);
    }

    #[test]
    fn mram_overflow_is_detected() {
        let mut b = JobBatchBuilder::new(params(), 6);
        b.add_pair(packed(&"ACGT".repeat(100)), packed(&"ACGT".repeat(100)));
        let err = b.build(4 * 1024).unwrap_err();
        assert!(matches!(err, SimError::MramOutOfBounds { .. }));
    }

    #[test]
    fn score_only_reserves_no_bt() {
        let mut b = JobBatchBuilder::new(
            KernelParams {
                score_only: true,
                band: 16,
                ..KernelParams::paper_default()
            },
            6,
        );
        b.add_pair(packed("ACGTACGT"), packed("ACGTACGT"));
        let batch = b.build(64 << 20).unwrap();
        let bt_stride = read_u32(&batch.image, 0x2C);
        assert_eq!(bt_stride, 0);
    }

    #[test]
    fn result_checksum_is_order_and_bit_sensitive() {
        let base = result_checksum(0, 100, &[0x31, 0x52]);
        assert_eq!(base, result_checksum(0, 100, &[0x31, 0x52]));
        assert_ne!(base, result_checksum(1, 100, &[0x31, 0x52]));
        assert_ne!(base, result_checksum(0, 101, &[0x31, 0x52]));
        assert_ne!(base, result_checksum(0, 100, &[0x52, 0x31]));
        assert_ne!(base, result_checksum(0, 100, &[0x31]));
        // Single-bit flip in a run changes the sum.
        assert_ne!(base, result_checksum(0, 100, &[0x31 ^ 1, 0x52]));
    }

    #[test]
    fn corrupt_record_is_rejected() {
        let mut b = JobBatchBuilder::new(params(), 1);
        b.add_pair(packed("ACGTACGT"), packed("ACGTACGT"));
        let batch = b.build(64 << 20).unwrap();
        let (off, _) = batch.out_offsets[0];
        let mut mram = pim_sim::Mram::new(64 << 20);
        // A record the kernel never wrote: zero magic.
        mram.host_write(off, &[0u8; OUT_HEADER_BYTES]).unwrap();
        assert!(matches!(
            batch.read_results(&mram),
            Err(SimError::ResultCorrupt {
                detail: "bad result magic",
                ..
            })
        ));
        // Valid magic but a bit-flipped score fails the checksum.
        let runs: [u32; 0] = [];
        let mut rec = [0u8; OUT_HEADER_BYTES];
        write_u32(&mut rec, 0, OUT_MAGIC);
        write_u32(&mut rec, 4, 0);
        write_u32(&mut rec, 8, 42);
        write_u32(&mut rec, 12, 0);
        write_u32(&mut rec, 16, result_checksum(0, 42, &runs));
        mram.host_write(off, &rec).unwrap();
        assert!(batch.read_results(&mram).is_ok());
        write_u32(&mut rec, 8, 42 ^ (1 << 7));
        mram.host_write(off, &rec).unwrap();
        assert!(matches!(
            batch.read_results(&mram),
            Err(SimError::ResultCorrupt {
                detail: "checksum mismatch",
                ..
            })
        ));
    }

    #[test]
    fn corrupt_run_count_is_rejected_before_reading_runs() {
        let mut b = JobBatchBuilder::new(params(), 1);
        b.add_pair(packed("ACGT"), packed("ACGT"));
        let batch = b.build(64 << 20).unwrap();
        let (off, cap) = batch.out_offsets[0];
        let mut mram = pim_sim::Mram::new(64 << 20);
        let mut rec = [0u8; OUT_HEADER_BYTES];
        write_u32(&mut rec, 0, OUT_MAGIC);
        write_u32(&mut rec, 12, (cap as u32) * 2); // absurd run count
        mram.host_write(off, &rec).unwrap();
        assert!(matches!(
            batch.read_results(&mram),
            Err(SimError::ResultCorrupt {
                detail: "cigar runs exceed record capacity",
                ..
            })
        ));
    }

    #[test]
    fn status_codes_round_trip() {
        for s in [
            JobStatus::Ok,
            JobStatus::OutOfBand,
            JobStatus::CigarOverflow,
            JobStatus::Cancelled,
        ] {
            assert_eq!(JobStatus::from_code(s.code()), Some(s));
        }
        assert_eq!(JobStatus::from_code(99), None);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn band_must_be_dma_friendly() {
        JobBatchBuilder::new(
            KernelParams {
                band: 20,
                ..KernelParams::paper_default()
            },
            6,
        );
    }

    #[test]
    fn arena_sequences_are_stored_once() {
        // Two jobs sharing one sequence: the image contains it once.
        let mut b = JobBatchBuilder::new(params(), 2);
        let shared = packed(&"ACGTACGT".repeat(8));
        let other1 = packed("ACGTAGGT");
        let other2 = packed("AAGTACGT");
        let s = b.add_seq(shared.clone());
        let o1 = b.add_seq(other1);
        let o2 = b.add_seq(other2);
        b.add_pair_idx(s, o1);
        b.add_pair_idx(s, o2);
        let batch = b.build(64 << 20).unwrap();
        // Compare against the duplicate-shipping builder.
        let mut dup = JobBatchBuilder::new(params(), 2);
        dup.add_pair(shared.clone(), packed("ACGTAGGT"));
        dup.add_pair(shared, packed("AAGTACGT"));
        let dup_batch = dup.build(64 << 20).unwrap();
        assert!(
            batch.image.len() < dup_batch.image.len(),
            "shared arena {} !< duplicated {}",
            batch.image.len(),
            dup_batch.image.len()
        );
        // Both jobs reference the same a_off.
        let jobs_off = read_u32(&batch.image, 0x20) as usize;
        let a0 = read_u32(&batch.image, jobs_off);
        let a1 = read_u32(&batch.image, jobs_off + JOB_ENTRY_BYTES);
        assert_eq!(a0, a1);
    }

    #[test]
    fn external_refs_point_outside_the_image() {
        let mut b = JobBatchBuilder::new(
            KernelParams {
                score_only: true,
                band: 16,
                ..KernelParams::paper_default()
            },
            2,
        );
        let base = 32 << 20;
        let r1 = SeqRef {
            off: base,
            len: 100,
        };
        let r2 = SeqRef {
            off: base + 32,
            len: 100,
        };
        b.add_pair_external(r1, r2);
        b.set_footprint_limit(base as usize);
        let batch = b.build(64 << 20).unwrap();
        let jobs_off = read_u32(&batch.image, 0x20) as usize;
        assert_eq!(read_u32(&batch.image, jobs_off), base);
        assert_eq!(read_u32(&batch.image, jobs_off + 4), 100);
        assert!(batch.mram_footprint <= base as usize);
    }

    #[test]
    fn footprint_limit_is_enforced() {
        let mut b = JobBatchBuilder::new(params(), 6);
        b.add_pair(packed(&"ACGT".repeat(50)), packed(&"ACGT".repeat(50)));
        b.set_footprint_limit(1024);
        let err = b.build(64 << 20).unwrap_err();
        assert!(matches!(
            err,
            SimError::MramOutOfBounds {
                mram_size: 1024,
                ..
            }
        ));
    }

    #[test]
    fn out_offsets_do_not_overlap() {
        let mut b = JobBatchBuilder::new(params(), 6);
        for _ in 0..5 {
            b.add_pair(packed("ACGTACGTACGT"), packed("ACGTACGTACGT"));
        }
        let batch = b.build(64 << 20).unwrap();
        for w in batch.out_offsets.windows(2) {
            let (off0, cap0) = w[0];
            let (off1, _) = w[1];
            assert!(off0 + cap0 <= off1);
        }
        // All outputs land after the transferred image.
        assert!(batch.out_offsets[0].0 >= batch.image.len());
        assert!(batch.mram_footprint >= batch.out_offsets.last().unwrap().0);
    }
}
