//! The DPU kernel: P pools × T tasklets computing adaptive banded N&W.
//!
//! Execution per job (§4.2):
//! 1. The pool's master tasklet DMAs the job's packed sequences from MRAM
//!    through the pool's 2 KB staging buffer and unpacks them.
//! 2. The pool computes anti-diagonals: the `w` window cells are split into
//!    `T` segments, one per tasklet; the master also makes the shift
//!    decision and streams the `BT` row to MRAM. A pool barrier closes each
//!    anti-diagonal (one [`pim_sim::dpu::Timeline`] phase).
//! 3. The master walks the `BT` rows back (sequential — "the traceback
//!    procedure cannot be parallelized", §4.2.3), builds the CIGAR and
//!    writes the output record.
//!
//! Jobs are handed to whichever pool is least loaded, emulating the shared
//! job queue of the real kernel. All DP arithmetic is delegated to
//! [`nw_core::adaptive::Engine`] — the same code the host aligner runs — so
//! kernel results are bit-identical to host results by construction; what
//! this module adds is the *physical* data movement (WRAM allocation, DMA
//! with alignment rules, MRAM layout) and the cycle accounting driven by
//! the measured [`CellCosts`].

use crate::cost::{CellCosts, KernelVariant};
use crate::layout::{
    self, JobBatchBuilder, JobStatus, KernelParams, HEADER_BYTES, JOB_ENTRY_BYTES, OUT_HEADER_BYTES,
};
use nw_core::adaptive::Engine;
use nw_core::cigar::CigarOp;
use nw_core::seq::{Base, PackedSeq};
use nw_core::traceback::{walk, BtCell};
use nw_core::ScoringScheme;
use pim_sim::dpu::{Dpu, Kernel, Timeline};
use pim_sim::isa::InterpMode;
use pim_sim::pipeline::PhaseCost;
use pim_sim::SimError;
use std::cell::RefCell;

/// Tasklet organization (§4.2.3). The paper's evaluation uses P=6, T=4,
/// which keeps pipeline utilization at 95–99 %.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of pools (concurrent alignments).
    pub pools: usize,
    /// Tasklets per pool (parallel segments of one anti-diagonal).
    pub tasklets: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            pools: 6,
            tasklets: 4,
        }
    }
}

impl PoolConfig {
    /// Total tasklets booted on the DPU.
    pub fn total_tasklets(&self) -> usize {
        self.pools * self.tasklets
    }
}

/// The N&W kernel program.
#[derive(Debug, Clone)]
pub struct NwKernel {
    /// Pool organization.
    pub pool_cfg: PoolConfig,
    /// Which build (Table 7).
    pub variant: KernelVariant,
    /// Interpreter tier the one-time cost measurement runs through. The
    /// measured counts are bit-identical across tiers; this only selects
    /// the execution path (and exercises its equivalence contract).
    pub interp_mode: InterpMode,
}

impl NwKernel {
    /// Build a kernel.
    pub fn new(pool_cfg: PoolConfig, variant: KernelVariant) -> Self {
        assert!(
            pool_cfg.pools >= 1 && pool_cfg.tasklets >= 1,
            "need at least 1x1 tasklets"
        );
        Self {
            pool_cfg,
            variant,
            interp_mode: InterpMode::default(),
        }
    }

    /// The paper's production configuration: P=6, T=4, asm kernel.
    pub fn paper_default() -> Self {
        Self::new(PoolConfig::default(), KernelVariant::Asm)
    }

    /// Select the interpreter tier used for the cost measurement.
    pub fn with_interp_mode(mut self, mode: InterpMode) -> Self {
        self.interp_mode = mode;
        self
    }
}

/// Per-pool WRAM buffers, allocated once per launch.
struct PoolWram {
    /// 2 KB staging buffer for sequence/CIGAR DMA.
    staging: usize,
    /// `BT` row buffer.
    bt_row: usize,
    /// Byte capacity of the `BT` row buffer.
    bt_row_len: usize,
}

/// Header fields parsed from MRAM.
struct Header {
    num_jobs: usize,
    params: KernelParams,
    jobs_off: usize,
    out_base: usize,
    bt_off: usize,
    bt_stride: usize,
}

const STAGING_BYTES: usize = 2048;

impl Kernel for NwKernel {
    fn run(&self, dpu: &mut Dpu) -> Result<(), SimError> {
        let costs = *CellCosts::for_variant_mode(self.variant, self.interp_mode);
        let total_tasklets = self.pool_cfg.total_tasklets();
        if total_tasklets > dpu.cfg.max_tasklets {
            return Err(SimError::BadTasklet {
                tasklet: total_tasklets,
                max: dpu.cfg.max_tasklets,
            });
        }

        // --- Parse the header (one DMA through a bootstrap buffer). ---
        let boot = dpu.wram.alloc(HEADER_BYTES.next_multiple_of(8), 8)?;
        let mut boot_cost = PhaseCost::default();
        dpu.mram_to_wram(&mut boot_cost, 0, boot, HEADER_BYTES.next_multiple_of(8))?;
        let head = dpu.wram.slice(boot, HEADER_BYTES)?.to_vec();
        let magic = layout::read_u32(&head, 0x00);
        if magic != layout::MAGIC {
            return Err(SimError::KernelFault {
                code: magic,
                message: "bad batch magic in MRAM".into(),
            });
        }
        let header = Header {
            num_jobs: layout::read_u32(&head, 0x04) as usize,
            params: KernelParams {
                score_only: layout::read_u32(&head, 0x08) & 1 == 1,
                band: layout::read_u32(&head, 0x0C) as usize,
                scheme: ScoringScheme::new(
                    layout::read_u32(&head, 0x10) as i32,
                    layout::read_u32(&head, 0x14) as i32,
                    layout::read_u32(&head, 0x18) as i32,
                    layout::read_u32(&head, 0x1C) as i32,
                ),
            },
            jobs_off: layout::read_u32(&head, 0x20) as usize,
            out_base: layout::read_u32(&head, 0x24) as usize,
            bt_off: layout::read_u32(&head, 0x28) as usize,
            bt_stride: layout::read_u32(&head, 0x2C) as usize,
        };
        let w = header.params.band;
        let row_bytes = JobBatchBuilder::bt_row_bytes(w);

        // --- Per-pool WRAM allocation: the paper's capacity argument. ---
        // Four w-wide anti-diagonal arrays (H x2, D, I) + sequence windows
        // (2 bit-unpacked, one byte per banded row/column) + staging + BT
        // row + output staging. Exhausting WRAM here is exactly why the
        // paper caps P and uses pooled tasklets.
        let mut pools: Vec<PoolWram> = Vec::with_capacity(self.pool_cfg.pools);
        for _ in 0..self.pool_cfg.pools {
            let _band_arrays = dpu.wram.alloc(4 * w * 4, 8)?;
            let _seq_windows = dpu.wram.alloc(2 * w, 8)?;
            let staging = dpu.wram.alloc(STAGING_BYTES, 8)?;
            let bt_row = dpu.wram.alloc(row_bytes.max(8), 8)?;
            pools.push(PoolWram {
                staging,
                bt_row,
                bt_row_len: row_bytes.max(8),
            });
        }

        // --- Job loop: greedy least-loaded pool (shared queue). ---
        let mut timelines = vec![Timeline::default(); self.pool_cfg.pools];
        // Boot phase billed to pool 0's master.
        timelines[0].sequential(&dpu.cfg, total_tasklets, boot_cost);

        for job_idx in 0..header.num_jobs {
            let pool_idx = timelines
                .iter()
                .enumerate()
                .min_by_key(|(i, t)| (t.cycles, *i))
                .map(|(i, _)| i)
                .expect("at least one pool");
            self.run_job(
                dpu,
                &header,
                &pools[pool_idx],
                &mut timelines[pool_idx],
                &costs,
                job_idx,
                pool_idx,
            )?;
        }

        dpu.record_timelines(&timelines);
        Ok(())
    }
}

impl NwKernel {
    #[allow(clippy::too_many_arguments)]
    fn run_job(
        &self,
        dpu: &mut Dpu,
        header: &Header,
        pool: &PoolWram,
        timeline: &mut Timeline,
        costs: &CellCosts,
        job_idx: usize,
        pool_idx: usize,
    ) -> Result<(), SimError> {
        let active = self.pool_cfg.total_tasklets();
        let t_count = self.pool_cfg.tasklets;
        let w = header.params.band;
        let row_bytes = pool.bt_row_len;
        let cfg = dpu.cfg;

        // --- Fetch the job descriptor. ---
        let mut master = PhaseCost {
            instructions: costs.job_overhead,
            dma_cycles: 0,
        };
        let entry_off = header.jobs_off + job_idx * JOB_ENTRY_BYTES;
        dpu.mram_to_wram(&mut master, entry_off, pool.staging, JOB_ENTRY_BYTES)?;
        let entry = dpu.wram.slice(pool.staging, JOB_ENTRY_BYTES)?.to_vec();
        let a_off = layout::read_u32(&entry, 0) as usize;
        let a_len = layout::read_u32(&entry, 4) as usize;
        let b_off = layout::read_u32(&entry, 8) as usize;
        let b_len = layout::read_u32(&entry, 12) as usize;
        let out_off = header.out_base + layout::read_u32(&entry, 16) as usize;

        // --- DMA sequences through the staging buffer and unpack. ---
        let a = self.fetch_sequence(dpu, pool, &mut master, a_off, a_len, costs)?;
        let b = self.fetch_sequence(dpu, pool, &mut master, b_off, b_len, costs)?;
        timeline.sequential(&cfg, active, master);

        // --- Anti-diagonal sweep. ---
        let with_bt = !header.params.score_only;
        let mut engine = Engine::new(header.params.scheme, w, a_len, b_len, with_bt);
        let bt_base = header.bt_off + pool_idx * header.bt_stride;
        let mut phase_costs = vec![PhaseCost::default(); t_count];
        while !engine.is_done() {
            let out = engine.step(a.as_slice(), b.as_slice());
            let cells = u64::from(out.valid_cells);
            // Split the window cells over T tasklets; the uneven tail goes
            // to the first segment (the critical tasklet in the model).
            let chunk = cells.div_ceil(t_count as u64);
            for (tid, cost) in phase_costs.iter_mut().enumerate() {
                let assigned = chunk.min(cells.saturating_sub(chunk * tid as u64));
                cost.instructions = costs.cells(assigned, with_bt) + costs.step_overhead;
            }
            // Master extras: the shift decision scans the window for its
            // extrema/argmax plus bookkeeping.
            phase_costs[0].instructions += costs.master_overhead + w as u64 / 8;
            if with_bt {
                // Stream the BT row to MRAM.
                let row = engine.bt_row().as_bytes();
                let buf = dpu.wram.slice_mut(pool.bt_row, row_bytes)?;
                buf.fill(0);
                buf[..row.len()].copy_from_slice(row);
                dpu.wram_to_mram(
                    &mut phase_costs[0],
                    pool.bt_row,
                    bt_base + out.t * row_bytes,
                    row_bytes,
                )?;
            }
            timeline.finish_phase(&cfg, active, &mut phase_costs);
        }

        // --- Score, traceback, output record. ---
        match engine.final_score() {
            Err(_) => self.write_output(dpu, pool, timeline, out_off, JobStatus::OutOfBand, 0, &[]),
            Ok(score) => {
                if header.params.score_only {
                    return self.write_output(
                        dpu,
                        pool,
                        timeline,
                        out_off,
                        JobStatus::Ok,
                        score,
                        &[],
                    );
                }
                // Traceback: walk the BT rows back from MRAM, one row cached.
                let origins = engine.origins().to_vec();
                let tb = RefCell::new(TbState {
                    dpu,
                    pool,
                    cost: PhaseCost::default(),
                    cached_t: usize::MAX,
                    cached_row: vec![0u8; row_bytes],
                    row_bytes,
                    bt_base,
                    failed: false,
                });
                let cigar = walk(a_len, b_len, w, |i, j| {
                    let t = i + j;
                    let k = i as i64 - origins[t];
                    if k < 0 || k >= w as i64 {
                        return None;
                    }
                    let mut s = tb.borrow_mut();
                    if s.cached_t != t {
                        if s.fetch_row(t).is_err() {
                            s.failed = true;
                            return None;
                        }
                        s.cached_t = t;
                    }
                    let k = k as usize;
                    Some(BtCell((s.cached_row[k / 2] >> ((k % 2) * 4)) & 0x0F))
                });
                let tb = tb.into_inner();
                if tb.failed {
                    return Err(SimError::KernelFault {
                        code: 3,
                        message: "BT row DMA failed during traceback".into(),
                    });
                }
                match cigar {
                    Err(_) => {
                        let cost = tb.cost;
                        timeline.sequential(&cfg, active, cost);
                        self.write_output(
                            dpu,
                            pool,
                            timeline,
                            out_off,
                            JobStatus::OutOfBand,
                            0,
                            &[],
                        )
                    }
                    Ok(cigar) => {
                        let mut cost = tb.cost;
                        cost.instructions +=
                            costs.traceback_per_op * cigar.alignment_columns() as u64;
                        timeline.sequential(&cfg, active, cost);
                        let runs: Vec<u32> = cigar
                            .runs()
                            .iter()
                            .map(|&(count, op)| {
                                (count << 4)
                                    | match op {
                                        CigarOp::Match => 0,
                                        CigarOp::Mismatch => 1,
                                        CigarOp::Insertion => 2,
                                        CigarOp::Deletion => 3,
                                    }
                            })
                            .collect();
                        self.write_output(dpu, pool, timeline, out_off, JobStatus::Ok, score, &runs)
                    }
                }
            }
        }
    }

    /// DMA a packed sequence from MRAM in staging-buffer chunks, unpack to
    /// bases. Returns the unpacked sequence (window residency is modeled by
    /// the per-pool `seq_windows` WRAM reservation; traffic and unpack
    /// instructions are charged here).
    fn fetch_sequence(
        &self,
        dpu: &mut Dpu,
        pool: &PoolWram,
        cost: &mut PhaseCost,
        seq_off: usize,
        seq_len: usize,
        costs: &CellCosts,
    ) -> Result<Vec<Base>, SimError> {
        let byte_len = seq_len.div_ceil(4);
        let mut packed = Vec::with_capacity(byte_len.next_multiple_of(8));
        let mut fetched = 0usize;
        while fetched < byte_len {
            let chunk = (byte_len - fetched).next_multiple_of(8).min(STAGING_BYTES);
            dpu.mram_to_wram(cost, seq_off + fetched, pool.staging, chunk)?;
            packed.extend_from_slice(dpu.wram.slice(pool.staging, chunk)?);
            fetched += chunk;
        }
        packed.truncate(byte_len);
        let seq = PackedSeq::from_raw(packed, seq_len).ok_or(SimError::KernelFault {
            code: 4,
            message: "sequence shorter than descriptor claims".into(),
        })?;
        cost.instructions += (seq_len as f64 * costs.unpack_per_base).round() as u64;
        Ok(seq.unpack().as_slice().to_vec())
    }

    /// Write a job's output record (header + CIGAR runs) through staging.
    #[allow(clippy::too_many_arguments)] // mirrors the DPU-side call signature
    fn write_output(
        &self,
        dpu: &mut Dpu,
        pool: &PoolWram,
        timeline: &mut Timeline,
        out_off: usize,
        status: JobStatus,
        score: i32,
        runs: &[u32],
    ) -> Result<(), SimError> {
        let cfg = dpu.cfg;
        let active = self.pool_cfg.total_tasklets();
        let total = OUT_HEADER_BYTES + runs.len() * 4;
        let mut record = vec![0u8; total.next_multiple_of(8)];
        layout::write_u32(&mut record, 0, layout::OUT_MAGIC);
        layout::write_u32(&mut record, 4, status.code());
        layout::write_u32(&mut record, 8, score as u32);
        layout::write_u32(&mut record, 12, runs.len() as u32);
        layout::write_u32(
            &mut record,
            16,
            layout::result_checksum(status.code(), score as u32, runs),
        );
        for (i, &r) in runs.iter().enumerate() {
            layout::write_u32(&mut record, OUT_HEADER_BYTES + 4 * i, r);
        }
        let mut cost = PhaseCost {
            // Header stores plus the checksum's per-word FNV loop.
            instructions: 12 + 6 * (3 + runs.len() as u64) + 2 * runs.len() as u64,
            dma_cycles: 0,
        };
        let mut written = 0usize;
        while written < record.len() {
            let chunk = (record.len() - written).min(STAGING_BYTES);
            dpu.wram
                .slice_mut(pool.staging, chunk)?
                .copy_from_slice(&record[written..written + chunk]);
            dpu.wram_to_mram(&mut cost, pool.staging, out_off + written, chunk)?;
            written += chunk;
        }
        timeline.sequential(&cfg, active, cost);
        Ok(())
    }
}

/// Traceback state threaded through the `walk` closure.
struct TbState<'a> {
    dpu: &'a mut Dpu,
    pool: &'a PoolWram,
    cost: PhaseCost,
    cached_t: usize,
    /// Raw packed nibbles of the cached row (reused, no per-row alloc).
    cached_row: Vec<u8>,
    row_bytes: usize,
    bt_base: usize,
    failed: bool,
}

impl TbState<'_> {
    fn fetch_row(&mut self, t: usize) -> Result<(), SimError> {
        self.dpu.mram_to_wram(
            &mut self.cost,
            self.bt_base + t * self.row_bytes,
            self.pool.bt_row,
            self.row_bytes,
        )?;
        self.cached_row
            .copy_from_slice(self.dpu.wram.slice(self.pool.bt_row, self.row_bytes)?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::JobBatchBuilder;
    use nw_core::adaptive::AdaptiveAligner;
    use nw_core::seq::DnaSeq;
    use pim_sim::DpuConfig;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    fn run_batch(
        pairs: &[(&DnaSeq, &DnaSeq)],
        params: KernelParams,
        kernel: &NwKernel,
    ) -> (Dpu, crate::layout::JobBatch) {
        let mut builder = JobBatchBuilder::new(params, kernel.pool_cfg.pools);
        for (a, b) in pairs {
            builder.add_pair(a.pack(), b.pack());
        }
        let mut dpu = Dpu::new(DpuConfig::default());
        let batch = builder.build(dpu.cfg.mram_size).unwrap();
        dpu.mram.host_write(0, &batch.image).unwrap();
        kernel.run(&mut dpu).unwrap();
        (dpu, batch)
    }

    fn params16() -> KernelParams {
        KernelParams {
            band: 16,
            ..KernelParams::paper_default()
        }
    }

    #[test]
    fn kernel_matches_host_aligner_exactly() {
        let a = seq(&"ACGTGGTCAT".repeat(12));
        let mut b_text = "ACGTGGTCAT".repeat(12);
        b_text.insert_str(40, "TTTT");
        b_text.remove(90);
        let b = seq(&b_text);
        let params = KernelParams {
            band: 32,
            ..KernelParams::paper_default()
        };
        let kernel = NwKernel::paper_default();
        let (dpu, batch) = run_batch(&[(&a, &b)], params, &kernel);
        let results = batch.read_results(&dpu.mram).unwrap();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.status, JobStatus::Ok);

        let host = AdaptiveAligner::new(params.scheme, params.band)
            .align(&a, &b)
            .unwrap();
        assert_eq!(r.score, host.score, "kernel and host scores agree");
        assert_eq!(r.cigar, host.cigar, "kernel and host CIGARs agree");
        r.cigar.validate(&a, &b).unwrap();
    }

    #[test]
    fn multiple_jobs_and_pools() {
        let seqs: Vec<(DnaSeq, DnaSeq)> = (0..13)
            .map(|k| {
                let base = "GATTACAT".repeat(6 + k % 3);
                let mut other = base.clone();
                other.insert_str(10 + k, "ACG");
                (seq(&base), seq(&other))
            })
            .collect();
        let pairs: Vec<(&DnaSeq, &DnaSeq)> = seqs.iter().map(|(a, b)| (a, b)).collect();
        let kernel = NwKernel::paper_default();
        let (dpu, batch) = run_batch(&pairs, params16(), &kernel);
        let results = batch.read_results(&dpu.mram).unwrap();
        assert_eq!(results.len(), 13);
        for (r, (a, b)) in results.iter().zip(&seqs) {
            assert_eq!(r.status, JobStatus::Ok);
            r.cigar.validate(a, b).unwrap();
            assert_eq!(r.cigar.score(&params16().scheme), r.score);
        }
        assert!(dpu.stats.cycles > 0);
        assert!(dpu.stats.instructions > 0);
        assert!(
            dpu.stats.dma_write_bytes > 0,
            "BT rows + outputs were written"
        );
    }

    #[test]
    fn score_only_mode_writes_no_cigar() {
        let a = seq(&"ACGTTGCA".repeat(10));
        let b = seq(&"ACGATGCA".repeat(10));
        let params = KernelParams {
            score_only: true,
            ..params16()
        };
        let kernel = NwKernel::paper_default();
        let (dpu, batch) = run_batch(&[(&a, &b)], params, &kernel);
        let r = &batch.read_results(&dpu.mram).unwrap()[0];
        assert_eq!(r.status, JobStatus::Ok);
        assert!(r.cigar.runs().is_empty());
        let host = AdaptiveAligner::new(params.scheme, params.band)
            .score(&a, &b)
            .unwrap();
        assert_eq!(r.score, host);
    }

    #[test]
    fn score_only_is_cheaper_than_full() {
        let a = seq(&"ACGTTGCA".repeat(20));
        let b = a.clone();
        let kernel = NwKernel::paper_default();
        let (d_full, _) = run_batch(&[(&a, &b)], params16(), &kernel);
        let so = KernelParams {
            score_only: true,
            ..params16()
        };
        let (d_so, _) = run_batch(&[(&a, &b)], so, &kernel);
        assert!(
            d_so.stats.cycles < d_full.stats.cycles,
            "score-only {} !< full {}",
            d_so.stats.cycles,
            d_full.stats.cycles
        );
        assert!(d_so.stats.dma_write_bytes < d_full.stats.dma_write_bytes);
    }

    #[test]
    fn band_constrained_result_is_valid_but_suboptimal() {
        // A 60-base length difference with window 16: the adaptive window's
        // guards still deliver a consistent global alignment (trailing-gap
        // style), but it cannot be better than the full-DP optimum — this is
        // the accuracy loss Table 1 quantifies.
        let a = seq(&"ACGT".repeat(10));
        let b = seq(&"ACGT".repeat(25));
        let kernel = NwKernel::paper_default();
        let (dpu, batch) = run_batch(&[(&a, &b)], params16(), &kernel);
        let r = &batch.read_results(&dpu.mram).unwrap()[0];
        assert_eq!(r.status, JobStatus::Ok);
        r.cigar.validate(&a, &b).unwrap();
        let optimal = nw_core::full::FullAligner::affine(params16().scheme).score(&a, &b);
        assert!(r.score <= optimal);
        // And the kernel agrees with the host-side adaptive aligner exactly.
        let host = AdaptiveAligner::new(params16().scheme, 16)
            .align(&a, &b)
            .unwrap();
        assert_eq!(r.score, host.score);
        assert_eq!(r.cigar, host.cigar);
    }

    #[test]
    fn asm_variant_is_faster_table7_direction() {
        let a = seq(&"ACGTGGTCAT".repeat(20));
        let b = seq(&"ACGTGGTCAC".repeat(20));
        let c_kernel = NwKernel::new(PoolConfig::default(), KernelVariant::PureC);
        let asm_kernel = NwKernel::new(PoolConfig::default(), KernelVariant::Asm);
        let (d_c, _) = run_batch(&[(&a, &b)], params16(), &c_kernel);
        let (d_asm, _) = run_batch(&[(&a, &b)], params16(), &asm_kernel);
        let speedup = d_c.stats.cycles as f64 / d_asm.stats.cycles as f64;
        assert!(speedup > 1.2, "asm speedup {speedup} too small");
        assert!(speedup < 2.2, "asm speedup {speedup} implausibly large");
    }

    #[test]
    fn wram_exhaustion_with_wide_band_and_many_pools() {
        // Band 512 with 6 pools needs > 64 KB of WRAM: the kernel must
        // refuse, mirroring the paper's constraint analysis.
        let a = seq("ACGTACGT");
        let mut builder = JobBatchBuilder::new(
            KernelParams {
                band: 512,
                ..KernelParams::paper_default()
            },
            6,
        );
        builder.add_pair(a.pack(), a.pack());
        let mut dpu = Dpu::new(DpuConfig::default());
        let batch = builder.build(dpu.cfg.mram_size).unwrap();
        dpu.mram.host_write(0, &batch.image).unwrap();
        let err = NwKernel::paper_default().run(&mut dpu).unwrap_err();
        assert!(matches!(err, SimError::WramExhausted { .. }), "got {err}");
    }

    #[test]
    fn bad_magic_is_a_kernel_fault() {
        let mut dpu = Dpu::new(DpuConfig::default());
        dpu.mram.host_write(0, &[0xFF; 64]).unwrap();
        let err = NwKernel::paper_default().run(&mut dpu).unwrap_err();
        assert!(matches!(err, SimError::KernelFault { .. }));
    }

    #[test]
    fn too_many_tasklets_rejected() {
        let kernel = NwKernel::new(
            PoolConfig {
                pools: 7,
                tasklets: 4,
            },
            KernelVariant::Asm,
        );
        let mut dpu = Dpu::new(DpuConfig::default());
        let err = kernel.run(&mut dpu).unwrap_err();
        assert!(matches!(
            err,
            SimError::BadTasklet {
                tasklet: 28,
                max: 24
            }
        ));
    }

    #[test]
    fn pipeline_utilization_is_high_at_paper_config() {
        // P=6, T=4 at the paper's band of 128 keeps the pipeline 90+%
        // utilized (the paper reports 95-99%); MRAM impact stays small.
        let a = seq(&"ACGTGGTCAT".repeat(60));
        let b = seq(&"ACGTGGTCAC".repeat(60));
        let pairs: Vec<(&DnaSeq, &DnaSeq)> = std::iter::repeat_n((&a, &b), 12).collect();
        let kernel = NwKernel::paper_default();
        let (dpu, _) = run_batch(&pairs, KernelParams::paper_default(), &kernel);
        let util = dpu.stats.pipeline_utilization();
        assert!(util > 0.9, "utilization {util}");
        let dma = dpu.stats.dma_impact();
        assert!(dma < 0.1, "dma impact {dma}");
    }

    #[test]
    fn empty_batch_is_fine() {
        let kernel = NwKernel::paper_default();
        let builder = JobBatchBuilder::new(params16(), kernel.pool_cfg.pools);
        let mut dpu = Dpu::new(DpuConfig::default());
        let batch = builder.build(dpu.cfg.mram_size).unwrap();
        dpu.mram.host_write(0, &batch.image).unwrap();
        kernel.run(&mut dpu).unwrap();
        assert!(batch.read_results(&dpu.mram).unwrap().is_empty());
    }
}
