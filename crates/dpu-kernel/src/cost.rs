//! Per-cell cost model for the kernel timing, derived from interpreting the
//! [`crate::isa_loops`] programs — the counts are measured, not assumed.

use std::sync::OnceLock;

/// Which kernel build is running (Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelVariant {
    /// Plain compiled C: no `cmpb4`, no fused jumps.
    PureC,
    /// The 26-lines-of-assembly build of §5.5.
    Asm,
}

impl KernelVariant {
    /// Display label matching the paper's Table 7 rows.
    pub fn label(self) -> &'static str {
        match self {
            KernelVariant::PureC => "DPU pure C",
            KernelVariant::Asm => "DPU asm",
        }
    }
}

/// Instructions per cell spent *around* the measured inner-loop body:
/// segment-bound checks, WRAM address arithmetic, window bookkeeping and
/// sequence-buffer maintenance that the real kernel executes per cell but
/// the isolated inner loop does not. The constant is identical for both
/// variants (it is exactly the code the hand optimization does not touch)
/// and is calibrated against the paper's own throughput: Table 2 implies
/// ~7.1 M cells/s per DPU at 350 MHz and 95–99 % utilization, i.e. ~49
/// effective instructions per cell, of which our measured asm inner loop
/// accounts for ~26.5.
pub const CELL_ENV_INSTRUCTIONS: f64 = 14.0;

/// Instruction costs per unit of kernel work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellCosts {
    /// Instructions per DP cell with `BT` production.
    pub cell_with_bt: f64,
    /// Instructions per DP cell in score-only mode.
    pub cell_score_only: f64,
    /// Per-anti-diagonal fixed overhead per tasklet (segment setup, barrier
    /// entry).
    pub step_overhead: u64,
    /// Extra master-tasklet work per anti-diagonal (shift decision over the
    /// window extrema, origin bookkeeping, BT row store issue).
    pub master_overhead: u64,
    /// Traceback instructions per CIGAR column (sequential, master only).
    pub traceback_per_op: u64,
    /// Instructions to unpack one 2-bit base into a WRAM byte buffer
    /// (shift+mask+store amortized over a 32-bit word of 16 bases).
    pub unpack_per_base: f64,
    /// Per-job fixed overhead (descriptor parse, buffer setup).
    pub job_overhead: u64,
}

impl CellCosts {
    /// Instructions for `cells` DP cells in the given mode, including the
    /// per-cell loop environment ([`CELL_ENV_INSTRUCTIONS`]).
    pub fn cells(&self, cells: u64, with_bt: bool) -> u64 {
        let per = if with_bt {
            self.cell_with_bt
        } else {
            self.cell_score_only
        };
        (cells as f64 * (per + CELL_ENV_INSTRUCTIONS)).round() as u64
    }

    /// Measured costs for a kernel variant (cached; interpreting the loops
    /// takes microseconds but the kernel asks per anti-diagonal).
    pub fn for_variant(variant: KernelVariant) -> &'static CellCosts {
        static PURE_C: OnceLock<CellCosts> = OnceLock::new();
        static ASM: OnceLock<CellCosts> = OnceLock::new();
        let cell = match variant {
            KernelVariant::PureC => &PURE_C,
            KernelVariant::Asm => &ASM,
        };
        cell.get_or_init(|| {
            let bt = crate::isa_loops::measure(variant, true);
            let so = crate::isa_loops::measure(variant, false);
            match variant {
                KernelVariant::PureC => CellCosts {
                    cell_with_bt: bt.instr_per_cell,
                    cell_score_only: so.instr_per_cell,
                    step_overhead: 24,
                    master_overhead: 40,
                    // Compiled traceback: state machine with byte extraction.
                    traceback_per_op: 14,
                    unpack_per_base: 3.0,
                    job_overhead: 400,
                },
                KernelVariant::Asm => CellCosts {
                    cell_with_bt: bt.instr_per_cell,
                    cell_score_only: so.instr_per_cell,
                    step_overhead: 20,
                    // The decision loop also profits from fused jumps.
                    master_overhead: 30,
                    // The paper's asm targets the inner loop; traceback is
                    // only mildly improved (fused nibble decode).
                    traceback_per_op: 11,
                    unpack_per_base: 2.0,
                    job_overhead: 400,
                },
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_are_measured_and_cached() {
        let a = CellCosts::for_variant(KernelVariant::Asm);
        let b = CellCosts::for_variant(KernelVariant::Asm);
        assert!(std::ptr::eq(a, b), "OnceLock caching");
        assert!(a.cell_with_bt > 5.0 && a.cell_with_bt < 60.0);
    }

    #[test]
    fn asm_beats_c_on_every_mode() {
        let c = CellCosts::for_variant(KernelVariant::PureC);
        let a = CellCosts::for_variant(KernelVariant::Asm);
        assert!(a.cell_with_bt < c.cell_with_bt);
        assert!(a.cell_score_only < c.cell_score_only);
        assert!(a.traceback_per_op <= c.traceback_per_op);
    }

    #[test]
    fn cells_cost_scales_linearly() {
        let c = CellCosts::for_variant(KernelVariant::PureC);
        let one = c.cells(1000, true);
        let two = c.cells(2000, true);
        assert!((two as i64 - 2 * one as i64).abs() <= 1);
        assert!(c.cells(1000, false) < one, "score-only is cheaper");
    }

    #[test]
    fn labels() {
        assert_eq!(KernelVariant::PureC.label(), "DPU pure C");
        assert_eq!(KernelVariant::Asm.label(), "DPU asm");
    }
}
