//! Per-cell cost model for the kernel timing, derived from interpreting the
//! [`crate::isa_loops`] programs — the counts are measured, not assumed.
//!
//! The same module derives *worst-case* budgets: [`wcet_watchdog_cycles`]
//! turns the symbolic instruction bounds of [`crate::isa_loops::kernel_wcet`]
//! into a per-launch watchdog cycle budget, replacing the old one-size
//! 100 M-cycle constant with a bound that scales with the actual batch.

use pim_sim::isa::{InterpMode, KernelParams, Reg};
use std::sync::OnceLock;

/// Which kernel build is running (Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelVariant {
    /// Plain compiled C: no `cmpb4`, no fused jumps.
    PureC,
    /// The 26-lines-of-assembly build of §5.5.
    Asm,
}

impl KernelVariant {
    /// Display label matching the paper's Table 7 rows.
    pub fn label(self) -> &'static str {
        match self {
            KernelVariant::PureC => "DPU pure C",
            KernelVariant::Asm => "DPU asm",
        }
    }
}

/// Instructions per cell spent *around* the measured inner-loop body:
/// segment-bound checks, WRAM address arithmetic, window bookkeeping and
/// sequence-buffer maintenance that the real kernel executes per cell but
/// the isolated inner loop does not. The constant is identical for both
/// variants (it is exactly the code the hand optimization does not touch)
/// and is calibrated against the paper's own throughput: Table 2 implies
/// ~7.1 M cells/s per DPU at 350 MHz and 95–99 % utilization, i.e. ~49
/// effective instructions per cell, of which our measured asm inner loop
/// accounts for ~26.5.
pub const CELL_ENV_INSTRUCTIONS: f64 = 14.0;

/// Instruction costs per unit of kernel work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellCosts {
    /// Instructions per DP cell with `BT` production.
    pub cell_with_bt: f64,
    /// Instructions per DP cell in score-only mode.
    pub cell_score_only: f64,
    /// Per-anti-diagonal fixed overhead per tasklet (segment setup, barrier
    /// entry).
    pub step_overhead: u64,
    /// Extra master-tasklet work per anti-diagonal (shift decision over the
    /// window extrema, origin bookkeeping, BT row store issue).
    pub master_overhead: u64,
    /// Traceback instructions per CIGAR column (sequential, master only).
    pub traceback_per_op: u64,
    /// Instructions to unpack one 2-bit base into a WRAM byte buffer
    /// (shift+mask+store amortized over a 32-bit word of 16 bases).
    pub unpack_per_base: f64,
    /// Per-job fixed overhead (descriptor parse, buffer setup).
    pub job_overhead: u64,
}

impl CellCosts {
    /// Instructions for `cells` DP cells in the given mode, including the
    /// per-cell loop environment ([`CELL_ENV_INSTRUCTIONS`]).
    pub fn cells(&self, cells: u64, with_bt: bool) -> u64 {
        let per = if with_bt {
            self.cell_with_bt
        } else {
            self.cell_score_only
        };
        (cells as f64 * (per + CELL_ENV_INSTRUCTIONS)).round() as u64
    }

    /// Measured costs for a kernel variant (cached; interpreting the loops
    /// takes microseconds but the kernel asks per anti-diagonal).
    pub fn for_variant(variant: KernelVariant) -> &'static CellCosts {
        Self::for_variant_mode(variant, InterpMode::default())
    }

    /// [`CellCosts::for_variant`] measured through an explicit interpreter
    /// tier. The numbers are bit-identical across tiers (the equivalence
    /// contract), so this only picks *how* the one-time measurement runs;
    /// each (variant, tier) cell is cached independently so a divergence
    /// would surface as a cost mismatch rather than hide in a shared cache.
    pub fn for_variant_mode(variant: KernelVariant, mode: InterpMode) -> &'static CellCosts {
        static CELLS: [[OnceLock<CellCosts>; 3]; 2] = [
            [OnceLock::new(), OnceLock::new(), OnceLock::new()],
            [OnceLock::new(), OnceLock::new(), OnceLock::new()],
        ];
        let v = match variant {
            KernelVariant::PureC => 0,
            KernelVariant::Asm => 1,
        };
        let m = match mode {
            InterpMode::Checked => 0,
            InterpMode::Fast => 1,
            InterpMode::Jit => 2,
        };
        CELLS[v][m].get_or_init(|| {
            // The gated path: translated tiers only for kernels that pass
            // the verifier gate, checked(+sanitized) otherwise.
            let bt = crate::isa_loops::measure_gated_mode(variant, true, mode);
            let so = crate::isa_loops::measure_gated_mode(variant, false, mode);
            match variant {
                KernelVariant::PureC => CellCosts {
                    cell_with_bt: bt.instr_per_cell,
                    cell_score_only: so.instr_per_cell,
                    step_overhead: 24,
                    master_overhead: 40,
                    // Compiled traceback: state machine with byte extraction.
                    traceback_per_op: 14,
                    unpack_per_base: 3.0,
                    job_overhead: 400,
                },
                KernelVariant::Asm => CellCosts {
                    cell_with_bt: bt.instr_per_cell,
                    cell_score_only: so.instr_per_cell,
                    step_overhead: 20,
                    // The decision loop also profits from fused jumps.
                    master_overhead: 30,
                    // The paper's asm targets the inner loop; traceback is
                    // only mildly improved (fused nibble decode).
                    traceback_per_op: 11,
                    unpack_per_base: 2.0,
                    job_overhead: 400,
                },
            }
        })
    }
}

/// Safety multiplier on the statically derived watchdog budget: the bound
/// itself is already conservative per component, the slack absorbs cost
/// model drift so a legitimate job is never reaped.
pub const WCET_SLACK: u64 = 2;

/// Floor for derived budgets so degenerate batches (empty, single tiny
/// pair) still give hung DPUs a meaningful grace window.
const WCET_MIN_BUDGET: u64 = 1_000_000;

/// Tasklets per pool and pools per DPU in the paper-default kernel layout —
/// the geometry the budget derivation assumes. Fewer pools or tasklets only
/// make the derived bound *more* conservative for the critical pool.
const WCET_TASKLETS: u64 = 4;
const WCET_POOLS: u64 = 6;
/// Issue-slot interval at full tasklet occupancy (`max_tasklets` in
/// [`pim_sim::DpuConfig`]): one instruction per resident tasklet per
/// revolver turn.
const WCET_ISSUE_INTERVAL: u64 = 24;

/// Upper bound on the instructions one tasklet retires in the inner loop
/// over `cells` cells, taken as the max over both kernel variants of the
/// symbolic WCET bound — so the budget is valid whichever build runs.
fn inner_loop_wcet(cells: u64, with_bt: bool) -> u64 {
    let r1 = Reg::new(1).expect("r1 exists");
    // The asm loop retires 4 cells/iteration; round up so the bound covers
    // the padded chunk the harness would actually pass.
    let padded = cells.next_multiple_of(4).max(4);
    [KernelVariant::PureC, KernelVariant::Asm]
        .into_iter()
        .map(|v| {
            crate::isa_loops::kernel_wcet(v, with_bt)
                .eval(&KernelParams::new().set(r1, padded))
                // Unbounded kernels never ship (CI asserts finiteness); if
                // one sneaks through, fall back to a generous linear bound.
                .unwrap_or(padded.saturating_mul(64).saturating_add(1024))
        })
        .max()
        .unwrap_or(0)
}

/// Worst-case simulated cycles for one alignment job of lengths `m`/`n` at
/// band width `band`, derived from the symbolic kernel bounds plus the
/// measured per-phase overheads of [`CellCosts`]. Every component dominates
/// the corresponding term of the kernel's timing model
/// (`crate::kernel::NwKernel`), so a legitimate job can never exceed it.
pub fn wcet_job_cycles(m: usize, n: usize, band: usize, score_only: bool) -> u64 {
    let w = band.max(1) as u64;
    let len = (m + n) as u64;
    // Anti-diagonal count of an (m, n) banded sweep is at most m + n + 1.
    let steps = len + 2;
    // The critical tasklet's chunk of one anti-diagonal.
    let chunk = w.div_ceil(WCET_TASKLETS);
    let with_bt = !score_only;
    // Per-step critical-tasklet instructions: symbolic inner-loop bound plus
    // the per-cell loop environment, segment setup, and the master's shift
    // decision and BT bookkeeping (w/8), with a pad for rounding.
    let crit_instr = inner_loop_wcet(chunk, with_bt)
        + (CELL_ENV_INSTRUCTIONS as u64) * chunk
        + 24 // step_overhead (max of the two variants)
        + 40 // master_overhead (max of the two variants)
        + w / 8
        + 16;
    // DMA for one BT row flush (~w/2 bytes at 2 B/cycle after setup);
    // charged twice per step to also cover the traceback re-fetch.
    let dma_row = 24 + (w / 2 + 8) / 2 + 1;
    let step_cycles = crit_instr * WCET_ISSUE_INTERVAL + 2 * dma_row;
    // Sequential master-only work: job setup, sequence unpack, traceback
    // state machine, and run-length output encoding.
    let seq_instr = 400 + 30 * len + 200;
    // Descriptor/staging/output transfers (packed bases move 2 B/cycle,
    // plus per-window setup).
    let seq_dma = len + 48 * (len / 512 + 4);
    steps * step_cycles + seq_instr * WCET_ISSUE_INTERVAL + seq_dma + 4096
}

/// Derive a per-launch watchdog cycle budget for a batch of jobs spread
/// over `dpus` DPUs with LPT balancing.
///
/// A DPU's cycle count is the max over its pools; LPT keeps a DPU's total
/// within `total/dpus + max_job` and the kernel's least-loaded pool
/// placement keeps a pool within `per_dpu/pools + max_job`, so
/// `total/(dpus·pools) + 2·max_job` bounds any pool timeline. The result
/// carries [`WCET_SLACK`] on top and never drops below a fixed floor.
pub fn wcet_watchdog_cycles(
    jobs: &[(usize, usize)],
    band: usize,
    score_only: bool,
    dpus: usize,
) -> u64 {
    let mut total: u64 = 0;
    let mut max_job: u64 = 0;
    for &(m, n) in jobs {
        let j = wcet_job_cycles(m, n, band, score_only);
        total = total.saturating_add(j);
        max_job = max_job.max(j);
    }
    let share = total / (dpus.max(1) as u64 * WCET_POOLS);
    let bound = share
        .saturating_add(2 * max_job)
        .saturating_add(10_000) // launch boot: header parse + buffer setup
        .saturating_mul(WCET_SLACK);
    bound.max(WCET_MIN_BUDGET)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_are_measured_and_cached() {
        let a = CellCosts::for_variant(KernelVariant::Asm);
        let b = CellCosts::for_variant(KernelVariant::Asm);
        assert!(std::ptr::eq(a, b), "OnceLock caching");
        assert!(a.cell_with_bt > 5.0 && a.cell_with_bt < 60.0);
    }

    #[test]
    fn asm_beats_c_on_every_mode() {
        let c = CellCosts::for_variant(KernelVariant::PureC);
        let a = CellCosts::for_variant(KernelVariant::Asm);
        assert!(a.cell_with_bt < c.cell_with_bt);
        assert!(a.cell_score_only < c.cell_score_only);
        assert!(a.traceback_per_op <= c.traceback_per_op);
    }

    #[test]
    fn cells_cost_scales_linearly() {
        let c = CellCosts::for_variant(KernelVariant::PureC);
        let one = c.cells(1000, true);
        let two = c.cells(2000, true);
        assert!((two as i64 - 2 * one as i64).abs() <= 1);
        assert!(c.cells(1000, false) < one, "score-only is cheaper");
    }

    #[test]
    fn labels() {
        assert_eq!(KernelVariant::PureC.label(), "DPU pure C");
        assert_eq!(KernelVariant::Asm.label(), "DPU asm");
    }

    #[test]
    fn derived_budget_has_a_floor_and_scales_with_work() {
        assert_eq!(wcet_watchdog_cycles(&[], 128, false, 8), WCET_MIN_BUDGET);
        let small = wcet_watchdog_cycles(&[(100, 100)], 64, false, 8);
        let big = wcet_watchdog_cycles(&[(10_000, 10_000)], 64, false, 8);
        assert!(small >= WCET_MIN_BUDGET);
        assert!(big > 4 * small, "budget scales with sequence length");
        // More DPUs shrink the aggregate share but never below 2× the
        // largest single job.
        let wide = wcet_watchdog_cycles(&[(1000, 1000); 32], 128, false, 64);
        assert!(wide >= WCET_SLACK * 2 * wcet_job_cycles(1000, 1000, 128, false));
    }

    #[test]
    fn job_bound_dominates_the_timing_model_per_step() {
        // The per-step critical-path instructions charged by the kernel's
        // timing model (`CellCosts::cells + overheads`) must stay under the
        // WCET per-step term for every chunk size the kernel can produce.
        for band in [16usize, 64, 128, 256] {
            let w = band as u64;
            let chunk = w.div_ceil(WCET_TASKLETS);
            for (variant, with_bt) in [
                (KernelVariant::PureC, true),
                (KernelVariant::PureC, false),
                (KernelVariant::Asm, true),
                (KernelVariant::Asm, false),
            ] {
                let c = CellCosts::for_variant(variant);
                let model = c.cells(chunk, with_bt) + c.step_overhead + c.master_overhead + w / 8;
                let bound = inner_loop_wcet(chunk, with_bt)
                    + (CELL_ENV_INSTRUCTIONS as u64) * chunk
                    + 24
                    + 40
                    + w / 8
                    + 16;
                assert!(
                    model <= bound,
                    "{variant:?} bt={with_bt} band={band}: model {model} > bound {bound}"
                );
            }
        }
    }
}
