#![warn(missing_docs)]

//! # dpu-kernel — the DPU program (§4.2)
//!
//! The kernel that every DPU runs: adaptive banded Needleman–Wunsch with
//! affine gaps, 4-bit traceback, CIGAR output — organized as `P` pools of
//! `T` tasklets (§4.2.3) so the 14-stage pipeline stays saturated.
//!
//! This crate is the simulated counterpart of the paper's C-plus-26-lines-
//! of-assembly kernel:
//!
//! * [`layout`] — the MRAM contract between host and DPU: header, job
//!   table, 2-bit packed sequences, per-job output records, per-pool `BT`
//!   scratch.
//! * [`kernel`] — the kernel itself ([`NwKernel`] implements
//!   [`pim_sim::dpu::Kernel`]). It drives the *same* [`nw_core::adaptive::Engine`]
//!   as the host aligner — scores and CIGARs agree bit-for-bit — while
//!   moving sequences, `BT` rows and CIGARs through simulated WRAM/MRAM
//!   with DMA rules enforced, and charging per-tasklet cycle costs.
//! * [`isa_loops`] — the inner anti-diagonal loop written twice in the mini
//!   DPU ISA: once as a compiler would emit it, once with `cmpb4` and fused
//!   jumps (§4.2.4 / §5.5). Instruction counts are *measured* by the
//!   interpreter.
//! * [`cost`] — the per-cell cost model derived from those measurements,
//!   consumed by the kernel's timing.

pub mod cost;
pub mod isa_loops;
pub mod kernel;
pub mod layout;

pub use cost::{CellCosts, KernelVariant};
pub use kernel::{NwKernel, PoolConfig};
pub use layout::{
    JobBatch, JobBatchBuilder, JobResult, JobStatus, KernelParams, RawResult, SeqRef,
};
