//! WCET soundness: the symbolic bounds from `pim-sim`'s analyzer must
//! dominate every concrete execution of the built-in kernels, and a
//! watchdog budget derived from those bounds must never reap a healthy
//! kernel on any interpreter tier.
//!
//! Randomness comes from a hand-rolled splitmix-style LCG so the tests
//! stay deterministic and dependency-free. `WCET_SMOKE_TRIALS` lets CI
//! run the property test at smoke scale.

use dpu_kernel::isa_loops::{self, InterpMode};
use dpu_kernel::KernelVariant;
use pim_sim::dpu::Kernel;
use pim_sim::isa::{KernelParams, Reg};
use pim_sim::{Dpu, DpuConfig, Rank, SimError};

/// Deterministic 64-bit mixer (splitmix64 step); good enough to spray
/// kernel shapes and band contents across the input space.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A random kernel configuration the analyzer claims a bound for: the
/// asm variant is 4-way unrolled, so its cell count is kept a multiple
/// of 4 (the same `input_multiple` precondition the verifier assumes).
fn random_shape(rng: &mut Lcg) -> (KernelVariant, bool, usize, u32) {
    let variant = if rng.next() & 1 == 0 {
        KernelVariant::PureC
    } else {
        KernelVariant::Asm
    };
    let with_bt = rng.next() & 1 == 0;
    let mut cells = 4 + (rng.next() as usize % 253); // 4..=256
    if variant == KernelVariant::Asm {
        cells &= !3;
    }
    let perturb = rng.next() as u32;
    (variant, with_bt, cells, perturb)
}

fn static_bound(variant: KernelVariant, with_bt: bool, cells: usize) -> u64 {
    let r1 = Reg::new(1).expect("r1");
    isa_loops::kernel_wcet(variant, with_bt)
        .eval(&KernelParams::new().set(r1, cells as u64))
        .expect("built-in kernels have finite WCET bounds")
}

fn trials() -> usize {
    std::env::var("WCET_SMOKE_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Property: for random kernel shapes, cell counts, and band contents,
/// the retired instruction count never exceeds the symbolic bound, and
/// all three interpreter tiers retire bit-identical results.
#[test]
fn retired_instructions_never_exceed_static_bound() {
    let mut rng = Lcg(0xD0A_5EED);
    for trial in 0..trials() {
        let (variant, with_bt, cells, perturb) = random_shape(&mut rng);
        let (checked, wram_checked) =
            isa_loops::bench_cells(variant, with_bt, perturb, cells, InterpMode::Checked)
                .expect("checked pass");
        let bound = static_bound(variant, with_bt, cells);
        assert!(
            checked.instructions <= bound,
            "trial {trial}: {variant:?} bt={with_bt} cells={cells} retired \
             {} > static bound {bound}",
            checked.instructions
        );
        for mode in [InterpMode::Fast, InterpMode::Jit] {
            let (other, wram_other) =
                isa_loops::bench_cells(variant, with_bt, perturb, cells, mode).expect("tier pass");
            assert_eq!(
                checked.instructions, other.instructions,
                "trial {trial}: {mode:?}"
            );
            assert_eq!(
                wram_checked, wram_other,
                "trial {trial}: {mode:?} WRAM diverged"
            );
        }
    }
}

/// A rank kernel that burns one simulated cycle per retired instruction
/// across several inner-loop passes and leaves an output digest in MRAM.
struct LoopKernel {
    variant: KernelVariant,
    with_bt: bool,
    cells: usize,
    passes: u32,
    mode: InterpMode,
}

impl Kernel for LoopKernel {
    fn run(&self, dpu: &mut Dpu) -> Result<(), SimError> {
        let mut digest = 0x5EED;
        for pass in 0..self.passes {
            let (stats, wram) =
                isa_loops::bench_cells(self.variant, self.with_bt, pass, self.cells, self.mode)?;
            dpu.stats.instructions += stats.instructions;
            dpu.stats.cycles += stats.instructions;
            digest = isa_loops::output_digest(&wram, self.cells, digest);
        }
        dpu.mram.host_write(0, &digest.to_le_bytes())?;
        Ok(())
    }
}

/// A watchdog budget derived from the static bound (passes x per-pass
/// WCET at one cycle per instruction) must never reap a healthy kernel,
/// and all three interpreter tiers must agree bit-for-bit underneath it.
#[test]
fn interpreters_agree_under_the_derived_watchdog_budget() {
    const PASSES: u32 = 3;
    for variant in [KernelVariant::PureC, KernelVariant::Asm] {
        for with_bt in [false, true] {
            let cells = isa_loops::PROOF_CELLS;
            let budget = u64::from(PASSES) * static_bound(variant, with_bt, cells);
            let cfg = DpuConfig {
                watchdog_cycles: budget,
                ..Default::default()
            };
            let mut digests = Vec::new();
            for mode in [InterpMode::Checked, InterpMode::Fast, InterpMode::Jit] {
                let kernel = LoopKernel {
                    variant,
                    with_bt,
                    cells,
                    passes: PASSES,
                    mode,
                };
                let mut rank = Rank::new(cfg, 2);
                let run = rank.launch(&kernel).expect("launch");
                assert!(
                    run.errors.is_empty(),
                    "{variant:?} bt={with_bt} {mode:?}: derived budget {budget} \
                     reaped a healthy kernel: {:?}",
                    run.errors
                );
                assert!(run.stats.total.cycles <= 2 * budget);
                digests.push(rank.dpu_mut(0).unwrap().mram.host_read(0, 8).unwrap());
            }
            assert_eq!(
                digests[0], digests[1],
                "{variant:?} bt={with_bt}: fast path diverged"
            );
            assert_eq!(
                digests[0], digests[2],
                "{variant:?} bt={with_bt}: jit path diverged"
            );
        }
    }
}
