//! Failure-injection tests for the DPU kernel: every contract between host
//! and kernel (magic word, band rules, WRAM capacity, MRAM footprint) must
//! fail loudly, never corrupt results silently.

use dpu_kernel::layout::{JobBatchBuilder, KernelParams, SeqRef, MAGIC};
use dpu_kernel::{KernelVariant, NwKernel, PoolConfig};
use nw_core::seq::DnaSeq;
use pim_sim::dpu::Kernel;
use pim_sim::{Dpu, DpuConfig, SimError};

fn seq(text: &str) -> DnaSeq {
    DnaSeq::from_ascii(text.as_bytes()).unwrap()
}

fn params16() -> KernelParams {
    KernelParams {
        band: 16,
        ..KernelParams::paper_default()
    }
}

#[test]
fn zeroed_mram_is_rejected() {
    let mut dpu = Dpu::new(DpuConfig::default());
    // Nothing written at all: magic is 0.
    let err = NwKernel::paper_default().run(&mut dpu).unwrap_err();
    assert!(matches!(err, SimError::KernelFault { code: 0, .. }));
}

#[test]
fn corrupted_magic_is_rejected() {
    let mut builder = JobBatchBuilder::new(params16(), 6);
    builder.add_pair(seq("ACGTACGT").pack(), seq("ACGTACGT").pack());
    let mut dpu = Dpu::new(DpuConfig::default());
    let batch = builder.build(dpu.cfg.mram_size).unwrap();
    let mut image = batch.image.clone();
    image[0] ^= 0xFF; // flip a magic byte
    dpu.mram.host_write(0, &image).unwrap();
    let err = NwKernel::paper_default().run(&mut dpu).unwrap_err();
    match err {
        SimError::KernelFault { code, .. } => assert_ne!(code, MAGIC),
        other => panic!("expected KernelFault, got {other}"),
    }
}

#[test]
fn truncated_sequence_descriptor_reads_zeros_not_garbage() {
    // A descriptor claiming more bases than the image holds: the DMA reads
    // zero-fill (uncommitted MRAM reads as zero), so the kernel aligns a
    // deterministic all-A tail rather than faulting — and the result is
    // still a valid CIGAR for the *claimed* lengths.
    let mut builder = JobBatchBuilder::new(params16(), 6);
    builder.add_pair_external(
        SeqRef {
            off: 1 << 20,
            len: 64,
        },
        SeqRef {
            off: 2 << 20,
            len: 64,
        },
    );
    let mut dpu = Dpu::new(DpuConfig::default());
    let batch = builder.build(dpu.cfg.mram_size).unwrap();
    dpu.mram.host_write(0, &batch.image).unwrap();
    NwKernel::paper_default().run(&mut dpu).unwrap();
    let results = batch.read_results(&dpu.mram).unwrap();
    assert_eq!(results.len(), 1);
    // All-zero packed bytes decode to all-A on both sides: perfect match.
    assert_eq!(results[0].cigar.to_string(), "64=");
}

#[test]
fn wram_exhaustion_reports_requested_bytes() {
    // 8 pools at band 384 need ~8 * 9 KiB of WRAM > the 64 KiB scratchpad.
    let mut builder = JobBatchBuilder::new(
        KernelParams {
            band: 384,
            ..KernelParams::paper_default()
        },
        8,
    );
    builder.add_pair(seq("ACGTACGT").pack(), seq("ACGTACGT").pack());
    let mut dpu = Dpu::new(DpuConfig::default());
    let batch = builder.build(dpu.cfg.mram_size).unwrap();
    dpu.mram.host_write(0, &batch.image).unwrap();
    let kernel = NwKernel::new(
        PoolConfig {
            pools: 8,
            tasklets: 2,
        },
        KernelVariant::Asm,
    );
    let err = kernel.run(&mut dpu).unwrap_err();
    match err {
        SimError::WramExhausted {
            requested,
            available,
        } => {
            assert!(requested > available);
        }
        other => panic!("expected WramExhausted, got {other}"),
    }
}

#[test]
fn tiny_mram_rejects_batches_at_build_time() {
    // The host-side builder is the first line of defence.
    let mut builder = JobBatchBuilder::new(params16(), 6);
    for _ in 0..4 {
        builder.add_pair(
            seq(&"ACGT".repeat(64)).pack(),
            seq(&"ACGT".repeat(64)).pack(),
        );
    }
    let err = builder.build(16 * 1024).unwrap_err();
    assert!(matches!(err, SimError::MramOutOfBounds { .. }));
}

#[test]
fn relaunching_after_a_fault_recovers() {
    // A fault must not poison the DPU: after writing a good image the same
    // DPU runs normally.
    let mut dpu = Dpu::new(DpuConfig::default());
    assert!(NwKernel::paper_default().run(&mut dpu).is_err());

    let mut builder = JobBatchBuilder::new(params16(), 6);
    let a = seq("ACGTGGTCATACGTGGTCAT");
    builder.add_pair(a.pack(), a.pack());
    let batch = builder.build(dpu.cfg.mram_size).unwrap();
    dpu.reset_for_launch();
    dpu.mram.host_write(0, &batch.image).unwrap();
    NwKernel::paper_default().run(&mut dpu).unwrap();
    let results = batch.read_results(&dpu.mram).unwrap();
    assert_eq!(results[0].cigar.to_string(), "20=");
}

#[test]
fn score_only_and_cigar_kernels_agree_on_scores() {
    let a = seq(&"ACGTGGTCAT".repeat(8));
    let mut btext = "ACGTGGTCAT".repeat(8);
    btext.insert_str(11, "GG");
    let b = seq(&btext);
    let run = |score_only: bool| -> i32 {
        let params = KernelParams {
            band: 32,
            score_only,
            ..KernelParams::paper_default()
        };
        let mut builder = JobBatchBuilder::new(params, 6);
        builder.add_pair(a.pack(), b.pack());
        let mut dpu = Dpu::new(DpuConfig::default());
        let batch = builder.build(dpu.cfg.mram_size).unwrap();
        dpu.mram.host_write(0, &batch.image).unwrap();
        NwKernel::paper_default().run(&mut dpu).unwrap();
        batch.read_results(&dpu.mram).unwrap()[0].score
    };
    assert_eq!(run(true), run(false));
}
