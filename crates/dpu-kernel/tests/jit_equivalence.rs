//! Differential equivalence of the three interpreter tiers: the fully
//! checked oracle, the verified dense fast path, and the block-translating
//! JIT must retire bit-identical results — registers, WRAM, halt pc,
//! instruction/mem-op/jump counts — and report identical faults at the
//! same machine state, on the built-in kernels and on adversarial
//! hand-written programs, including under watchdog budgets and seeded
//! fault plans.
//!
//! Randomness comes from the same hand-rolled splitmix-style LCG as the
//! WCET suite so the tests stay deterministic and dependency-free.
//! `JIT_SMOKE_TRIALS` lets CI run the property tests at smoke scale.

use dpu_kernel::isa_loops::{self, InterpMode};
use dpu_kernel::KernelVariant;
use pim_sim::dpu::Kernel;
use pim_sim::isa::{assemble, IsaError, Jit, Machine, Prepared, Reg, RunStats, VerifySpec};
use pim_sim::{Dpu, DpuConfig, FaultPlan, Rank, SimError};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn trials() -> usize {
    std::env::var("JIT_SMOKE_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120)
}

fn random_shape(rng: &mut Lcg) -> (KernelVariant, bool, usize, u32) {
    let variant = if rng.next() & 1 == 0 {
        KernelVariant::PureC
    } else {
        KernelVariant::Asm
    };
    let with_bt = rng.next() & 1 == 0;
    let mut cells = 4 + (rng.next() as usize % 253); // 4..=256
    if variant == KernelVariant::Asm {
        cells &= !3;
    }
    let perturb = rng.next() as u32;
    (variant, with_bt, cells, perturb)
}

/// Property: for random built-in kernel shapes and band contents, all
/// three tiers retire the same full [`RunStats`] (not just instruction
/// counts: memory ops and taken jumps too) and bit-identical WRAM, and
/// the chained output digests agree.
#[test]
fn three_tiers_retire_bit_identical_results() {
    let mut rng = Lcg(0x71E2_5EED);
    let mut digests = [0u64; 3];
    for trial in 0..trials() {
        let (variant, with_bt, cells, perturb) = random_shape(&mut rng);
        let (checked, wram_checked) =
            isa_loops::bench_cells(variant, with_bt, perturb, cells, InterpMode::Checked)
                .expect("checked pass");
        for mode in [InterpMode::Fast, InterpMode::Jit] {
            let (stats, wram) =
                isa_loops::bench_cells(variant, with_bt, perturb, cells, mode).expect("tier pass");
            assert_eq!(
                checked, stats,
                "trial {trial}: {variant:?} bt={with_bt} cells={cells} \
                 {mode:?} RunStats diverged"
            );
            assert_eq!(
                wram_checked, wram,
                "trial {trial}: {variant:?} bt={with_bt} cells={cells} \
                 {mode:?} WRAM diverged"
            );
        }
        for (slot, mode) in [
            (0usize, InterpMode::Checked),
            (1, InterpMode::Fast),
            (2, InterpMode::Jit),
        ] {
            let (_, d) = isa_loops::bench_cells_digest(
                variant,
                with_bt,
                perturb,
                cells,
                mode,
                digests[slot],
            )
            .expect("digest pass");
            digests[slot] = d;
        }
        assert_eq!(digests[0], digests[1], "trial {trial}: fast digest chain");
        assert_eq!(digests[0], digests[2], "trial {trial}: jit digest chain");
    }
}

/// How one tier ended: the run result plus the final machine state, so
/// faulting runs can be compared at the exact architectural state they
/// stopped in.
#[derive(Debug, PartialEq)]
struct Outcome {
    result: Result<RunStats, IsaError>,
    regs: Vec<u32>,
    pc: usize,
    wram: Vec<u8>,
}

/// Run `program` on the given tier from the same entry state. The fast
/// and JIT tiers must actually engage (their eligibility and entry gates
/// are asserted), so a divergence cannot hide behind a silent fallback to
/// the checked interpreter.
fn run_tier(
    tier: usize,
    program: &[pim_sim::isa::Inst],
    spec: &VerifySpec,
    init: &[(u8, u32)],
    wram_len: usize,
    max_steps: u64,
) -> Outcome {
    let mut m = Machine::new();
    for &(r, v) in init {
        m.set_reg(Reg::new(r).expect("register index in range"), v);
    }
    let mut wram = vec![0u8; wram_len];
    let result = match tier {
        0 => m.run(program, &mut wram, max_steps),
        1 => {
            let prep = Prepared::new(program.to_vec(), spec);
            assert!(prep.fast_eligible(), "fast tier must engage");
            assert!(prep.fast_path_active(&m, wram.len()));
            m.run_prepared(&prep, &mut wram, max_steps)
        }
        _ => {
            let jit = Jit::new(program.to_vec(), spec);
            assert!(jit.jit_eligible(), "jit tier must engage");
            assert!(jit.jit_active(&m, wram.len()));
            m.run_jit(&jit, &mut wram, max_steps)
        }
    };
    Outcome {
        result,
        regs: m.regs.to_vec(),
        pc: m.pc,
        wram,
    }
}

fn assert_tiers_agree(
    label: &str,
    program: &[pim_sim::isa::Inst],
    spec: &VerifySpec,
    init: &[(u8, u32)],
    wram_len: usize,
    max_steps: u64,
) -> Outcome {
    let checked = run_tier(0, program, spec, init, wram_len, max_steps);
    for (tier, name) in [(1usize, "fast"), (2, "jit")] {
        let other = run_tier(tier, program, spec, init, wram_len, max_steps);
        assert_eq!(checked, other, "{label}: {name} tier diverged");
    }
    checked
}

/// A store/load walker whose addresses come from entry registers the
/// verifier cannot bound: every WRAM access is only backstop-checked at
/// runtime, which is exactly the path whose faults must match the oracle.
/// `r1` = word count, `r2` = byte address cursor, `r3` = value seed.
const WALKER: &str = "
loop:
  sw   r3, r2, 0
  lw   r4, r2, 0
  add  r4, r4, r3
  sb   r4, r2, 1
  lbu  r3, r2, 2
  add  r3, r3, 17
  add  r2, r2, 4
  sub  r1, r1, 1, jnz loop
  halt
";

fn walker_spec(frame: usize) -> VerifySpec {
    let r = |i: u8| Reg::new(i).expect("register index in range");
    VerifySpec::new()
        .frame(frame)
        .input(r(1))
        .input(r(2))
        .input(r(3))
}

/// Faulting programs stop all three tiers at the same instruction with
/// the same [`IsaError`], the same registers, pc, and WRAM — word and
/// byte accesses, in-bounds, out-of-bounds, misaligned, and
/// address-wrapped cases alike.
#[test]
fn three_tiers_report_identical_faults() {
    let program = assemble(WALKER).expect("walker assembles");
    let spec = walker_spec(64);
    let max = 1 << 20;
    let cases: &[(&str, &[(u8, u32)])] = &[
        // 8 iterations fill bytes 0..32 of the 64-byte frame: success.
        ("clean run", &[(1, 8), (2, 0), (3, 7)]),
        // The 17th word store lands at byte 64: out of frame.
        ("oob store", &[(1, 32), (2, 0), (3, 7)]),
        // Word access at byte 2: misaligned before anything else.
        ("misaligned store", &[(1, 4), (2, 2), (3, 7)]),
        // Address 61: the word fits nowhere, bounds fire before alignment.
        ("tail oob", &[(1, 4), (2, 61), (3, 7)]),
        // A huge cursor: base + offset wraps through i64 arithmetic and
        // must fault identically, not wrap differently per tier.
        ("wrapped address", &[(1, 4), (2, u32::MAX - 2), (3, 7)]),
    ];
    for (label, init) in cases {
        let outcome = assert_tiers_agree(label, &program, &spec, init, 64, max);
        if *label == "clean run" {
            assert!(outcome.result.is_ok(), "clean run must halt normally");
        } else {
            assert!(outcome.result.is_err(), "{label} must fault");
        }
    }
}

/// Property: random entry states spray the walker across success, OOB,
/// misalignment, and wrap faults; every one must agree across the tiers.
#[test]
fn random_walker_states_agree_across_tiers() {
    let program = assemble(WALKER).expect("walker assembles");
    let spec = walker_spec(96);
    let mut rng = Lcg(0xFAC7_5EED);
    for trial in 0..trials() {
        let words = 1 + (rng.next() as u32 % 40);
        let addr = match rng.next() % 4 {
            0 => rng.next() as u32 % 96,        // mostly in frame
            1 => (rng.next() as u32 % 96) & !3, // aligned in frame
            2 => 90 + (rng.next() as u32 % 16), // straddling the edge
            _ => u32::MAX - (rng.next() as u32 % 8),
        };
        let seedv = rng.next() as u32;
        assert_tiers_agree(
            &format!("trial {trial} (words={words} addr={addr})"),
            &program,
            &spec,
            &[(1, words), (2, addr), (3, seedv)],
            96,
            1 << 20,
        );
    }
}

/// Exhausted step budgets surface the same [`IsaError::MaxSteps`] on all
/// tiers. The budget check granularity is documented to differ (per
/// instruction / per window / per block), so only the error — not the
/// partial machine state — is compared here.
#[test]
fn step_budgets_exhaust_with_the_same_error() {
    let program = assemble(WALKER).expect("walker assembles");
    let spec = walker_spec(4096);
    let init: &[(u8, u32)] = &[(1, 1000), (2, 0), (3, 1)];
    for limit in [1u64, 7, 100, 1001] {
        let mut errs = Vec::new();
        for tier in 0..3 {
            let out = run_tier(tier, &program, &spec, init, 4096, limit);
            errs.push(out.result.expect_err("budget must exhaust"));
        }
        assert_eq!(errs[0], IsaError::MaxSteps { limit });
        assert_eq!(errs[0], errs[1], "fast tier budget error");
        assert_eq!(errs[0], errs[2], "jit tier budget error");
    }
}

/// A rank kernel running the built-in inner loop in one interpreter tier,
/// folding the per-pass digest into MRAM (same shape as the benchmark
/// kernel).
struct TierKernel {
    mode: InterpMode,
    passes: u32,
}

impl Kernel for TierKernel {
    fn run(&self, dpu: &mut Dpu) -> Result<(), SimError> {
        let tag = u32::from_le_bytes(dpu.mram.host_read(0, 4)?.try_into().expect("4 bytes"));
        let mut digest = u64::from_le_bytes(dpu.mram.host_read(8, 8)?.try_into().expect("8 bytes"));
        for pass in 0..self.passes {
            let (stats, folded) = isa_loops::bench_cells_digest(
                KernelVariant::Asm,
                true,
                tag.wrapping_add(pass),
                isa_loops::PROOF_CELLS,
                self.mode,
                digest,
            )?;
            digest = folded;
            dpu.stats.instructions += stats.instructions;
            dpu.stats.cycles += stats.instructions;
        }
        dpu.mram.host_write(8, &digest.to_le_bytes())?;
        Ok(())
    }
}

/// Under a seeded chaos fault plan (launch faults, injected hangs reaped
/// by the watchdog, corruption arming), every observable rank outcome —
/// errors, watchdog expiries, barrier cycles, surviving digests — is
/// identical whichever tier executes the kernels: the fault draws are
/// pure per-DPU functions of the plan, and the tiers are bit-identical
/// underneath them.
#[test]
fn fault_plans_and_watchdogs_are_tier_blind() {
    const DPUS: usize = 8;
    const LAUNCHES: usize = 4;
    let plan = FaultPlan {
        seed: 0x00C0_FFEE,
        dpu_fault_rate: 0.2,
        hang_rate: 0.25,
        silent_corrupt_rate: 0.2,
        disabled_dpus: vec![(0, 3)],
        ..Default::default()
    };
    let cfg = DpuConfig {
        // Finite budget so injected hangs resolve deterministically.
        watchdog_cycles: 2_000_000,
        ..Default::default()
    };
    let run = |mode: InterpMode| {
        let mut rank = Rank::with_faults(cfg, DPUS, plan.rank_state(0, DPUS));
        for d in 0..DPUS {
            if !rank.dpu_enabled(d) {
                continue;
            }
            let tag = 0x5EED_u32 ^ (d as u32).wrapping_mul(0x9E37);
            let dpu = rank.dpu_mut(d).expect("dpu exists");
            dpu.mram.host_write(0, &tag.to_le_bytes()).expect("tag");
            dpu.mram.host_write(8, &[0u8; 8]).expect("digest");
        }
        let kernel = TierKernel { mode, passes: 2 };
        let mut log = Vec::new();
        for _ in 0..LAUNCHES {
            let r = rank.launch_threads(&kernel, 2).expect("launch");
            log.push((
                r.errors,
                r.faulted,
                r.barrier_cycles,
                r.stats.watchdog_expired,
                r.stats.total,
            ));
        }
        let digests: Vec<Vec<u8>> = (0..DPUS)
            .filter(|&d| rank.dpu_enabled(d))
            .map(|d| {
                rank.dpu(d)
                    .and_then(|dpu| dpu.mram.host_read(8, 8))
                    .expect("digest readback")
            })
            .collect();
        (log, digests)
    };
    let checked = run(InterpMode::Checked);
    assert_eq!(checked, run(InterpMode::Fast), "fast tier under faults");
    assert_eq!(checked, run(InterpMode::Jit), "jit tier under faults");
}
