//! A KSW2-style static banded affine aligner.
//!
//! Same algorithm and band geometry as [`nw_core::banded::BandedAligner`]
//! (results are bit-identical), restructured the way KSW2 structures it for
//! speed on a CPU:
//!
//! * a **query profile**: for each of the four nucleotides, the per-column
//!   substitution scores against `B` are precomputed into a flat array, so
//!   the inner loop indexes a slice instead of branching on base equality —
//!   the "query sequence profile, a branchless programming strategy" of
//!   §5.1;
//! * flat rolling arrays indexed by diagonal, with the row's in-band span
//!   hoisted out of the loop;
//! * a score-only fast path with no `BT` writes at all;
//! * a **two-pass row sweep**: the insertion gap and the diagonal
//!   candidate have no dependency carried along the row, so pass 1
//!   computes them elementwise — with `std::simd` lanes when the
//!   `portable-simd` feature is on (nightly), the stand-in for KSW2's SSE
//!   vectorization — while pass 2 runs the sequential deletion carry and
//!   the cell select. Both first-pass kernels perform the identical
//!   integer operations per element, so results are bit-exact across
//!   them; the scalar kernel stays compiled in as the oracle
//!   ([`Ksw2Aligner::scalar_kernel`]).

use nw_core::banded::BandGeometry;
use nw_core::error::AlignError;
use nw_core::seq::{Base, DnaSeq};
use nw_core::traceback::{walk, BtCell, BtRow, Origin};
use nw_core::{Alignment, Score, ScoringScheme, NEG_INF};

/// KSW2-style banded aligner.
#[derive(Debug, Clone)]
pub struct Ksw2Aligner {
    scheme: ScoringScheme,
    band: usize,
    /// Force the scalar first pass even when the lane kernel is compiled
    /// in (see [`Ksw2Aligner::scalar_kernel`]).
    force_scalar: bool,
}

/// Per-reference query profile: `profile[c * (n + 1) + j]` is
/// `sub(c, b[j-1])` for nucleotide code `c` (j is 1-based like the DP).
fn build_profile(scheme: &ScoringScheme, b: &DnaSeq) -> Vec<Score> {
    let n = b.len();
    let mut profile = vec![0; 4 * (n + 1)];
    for c in 0..4u8 {
        let base = Base::from_code(c);
        let row = &mut profile[(c as usize) * (n + 1)..(c as usize + 1) * (n + 1)];
        for (j, slot) in row.iter_mut().enumerate().skip(1) {
            *slot = scheme.substitution(base, b.get(j - 1));
        }
    }
    profile
}

impl Ksw2Aligner {
    /// Build an aligner with band width `band` (>= 2).
    pub fn new(scheme: ScoringScheme, band: usize) -> Self {
        assert!(band >= 2, "band width must be at least 2");
        Self {
            scheme,
            band,
            force_scalar: false,
        }
    }

    /// Force the scalar first-pass kernel even when the `portable-simd`
    /// lane kernel is compiled in. This is the bit-exactness oracle: the
    /// equivalence suite aligns with both kernels and requires identical
    /// scores and CIGARs.
    pub fn scalar_kernel(mut self) -> Self {
        self.force_scalar = true;
        self
    }

    /// Which first-pass kernel [`Ksw2Aligner::score`]/[`Ksw2Aligner::align`]
    /// dispatch to: `"simd"` only when the `portable-simd` feature is
    /// compiled in and the scalar oracle was not forced.
    pub fn kernel_name(&self) -> &'static str {
        if !self.force_scalar && cfg!(feature = "portable-simd") {
            "simd"
        } else {
            "scalar"
        }
    }

    /// Lane count of the compiled-in SIMD kernel (0 without
    /// `portable-simd`).
    pub fn simd_lanes() -> usize {
        #[cfg(feature = "portable-simd")]
        {
            lanes::LANES
        }
        #[cfg(not(feature = "portable-simd"))]
        {
            0
        }
    }

    /// Band width.
    pub fn band(&self) -> usize {
        self.band
    }

    /// Scoring scheme.
    pub fn scheme(&self) -> &ScoringScheme {
        &self.scheme
    }

    /// Number of DP cells the banded sweep evaluates for lengths `(m, n)` —
    /// the workload measure used by the runtime model.
    pub fn cells(&self, m: usize, n: usize) -> u64 {
        BandGeometry::new(m, n, self.band).cells(m, n)
    }

    /// Score-only alignment (fast path).
    pub fn score(&self, a: &DnaSeq, b: &DnaSeq) -> Result<Score, AlignError> {
        self.run::<false>(a, b).map(|(s, _)| s)
    }

    /// Alignment with CIGAR.
    pub fn align(&self, a: &DnaSeq, b: &DnaSeq) -> Result<Alignment, AlignError> {
        let (m, n) = (a.len(), b.len());
        let (score, bt) = self.run::<true>(a, b)?;
        let geom = BandGeometry::new(m, n, self.band);
        let bt = bt.expect("BT requested");
        let cigar = walk(m, n, self.band, |i, j| {
            geom.index(i, j).map(|k| bt[i].get(k))
        })?;
        Ok(Alignment { score, cigar })
    }

    /// The banded sweep. `WANT_BT` selects traceback recording at compile
    /// time so the score-only path carries zero per-cell overhead.
    fn run<const WANT_BT: bool>(
        &self,
        a: &DnaSeq,
        b: &DnaSeq,
    ) -> Result<(Score, Option<Vec<BtRow>>), AlignError> {
        let (m, n) = (a.len(), b.len());
        let geom = BandGeometry::new(m, n, self.band);
        if !geom.reaches_end(m, n) {
            return Err(AlignError::OutOfBand {
                band: self.band,
                m,
                n,
            });
        }
        let width = geom.width();
        let (go, ge) = (self.scheme.gap_open, self.scheme.gap_extend);
        let profile = build_profile(&self.scheme, b);
        let np1 = n + 1;

        let mut h_prev = vec![NEG_INF; width];
        let mut i_prev = vec![NEG_INF; width];
        let mut h_cur = vec![NEG_INF; width];
        let mut i_cur = vec![NEG_INF; width];
        // Row scratch for pass 1 (insertion gap / extend flag / diagonal
        // candidate), indexed by position within the row's in-band span.
        let mut ins_row = vec![NEG_INF; width];
        let mut diag_row = vec![NEG_INF; width];
        let mut iext_row = vec![false; width];
        let mut bt: Vec<BtRow> = if WANT_BT {
            (0..=m).map(|_| BtRow::new(width)).collect()
        } else {
            Vec::new()
        };

        for j in geom.j_range(0, n) {
            let k = geom.index(0, j).expect("row 0 in band");
            h_prev[k] = if j == 0 { 0 } else { -go - (j as Score) * ge };
        }

        // `i` drives the band geometry, the query profile, and `bt` at once.
        #[allow(clippy::needless_range_loop)]
        for i in 1..=m {
            h_cur.fill(NEG_INF);
            i_cur.fill(NEG_INF);
            let code = a.get(i - 1).code() as usize;
            let prof = &profile[code * np1..(code + 1) * np1];
            let jr = geom.j_range(i, n);
            let (j_lo, j_hi) = (*jr.start(), *jr.end());
            let mut d: Score = NEG_INF;
            // Hoist the j == 0 boundary out of the hot loop.
            let mut j = j_lo;
            if j == 0 {
                let k = geom.index(i, 0).expect("in band");
                h_cur[k] = -go - (i as Score) * ge;
                i_cur[k] = h_cur[k];
                j = 1;
            }
            if j > j_hi {
                std::mem::swap(&mut h_prev, &mut h_cur);
                std::mem::swap(&mut i_prev, &mut i_cur);
                continue;
            }
            let k0 = geom.index(i, j).expect("in band");
            let len = j_hi - j + 1;

            // Pass 1: the insertion gap (competition between opening from
            // `H` above and extending `I` above) and the diagonal
            // candidate read only the previous row, so they are
            // elementwise in `k` — no carried dependency — and vectorize.
            // Only the span's last cell can sit on the band edge
            // (`k + 1 == width`), where "above" reads -inf.
            let up_len = len.min(width - k0 - 1);
            self.pass1(
                &h_prev[k0..k0 + len],
                &h_prev[k0 + 1..k0 + 1 + up_len],
                &i_prev[k0 + 1..k0 + 1 + up_len],
                &prof[j..j + len],
                &mut ins_row[..len],
                &mut diag_row[..len],
                &mut iext_row[..len],
            );

            // Pass 2: the deletion gap carries along the row through the
            // just-written `H`, so it stays sequential; everything else
            // was precomputed.
            for (t, k) in (k0..k0 + len).enumerate() {
                let h_left = if k > 0 { h_cur[k - 1] } else { NEG_INF };
                let open_d = h_left - go - ge;
                let ext_d = d - ge;
                let d_extend = ext_d >= open_d;
                d = if d_extend { ext_d } else { open_d };
                let ins = ins_row[t];
                i_cur[k] = ins;
                let diag = diag_row[t];
                let best = diag.max(d).max(ins);
                h_cur[k] = best;
                if WANT_BT {
                    let origin = if best == diag && h_prev[k] > NEG_INF / 2 {
                        if prof[j + t] > 0 {
                            Origin::DiagMatch
                        } else {
                            Origin::DiagMismatch
                        }
                    } else if best == ins {
                        Origin::Ins
                    } else {
                        Origin::Del
                    };
                    bt[i].set(k, BtCell::new(origin, iext_row[t], d_extend));
                }
            }
            std::mem::swap(&mut h_prev, &mut h_cur);
            std::mem::swap(&mut i_prev, &mut i_cur);
        }

        let k_final = geom.index(m, n).ok_or(AlignError::OutOfBand {
            band: self.band,
            m,
            n,
        })?;
        let score = h_prev[k_final];
        if score < NEG_INF / 2 {
            return Err(AlignError::OutOfBand {
                band: self.band,
                m,
                n,
            });
        }
        Ok((score, WANT_BT.then_some(bt)))
    }

    /// Pass 1 of the row sweep: per cell, the insertion gap (open from `H`
    /// above vs extend `I` above), its extend flag, and the diagonal
    /// candidate. `h_up`/`i_up` may be one element shorter than the span
    /// when its last cell sits on the band edge; that tail reads -inf
    /// above. Dispatches to the `std::simd` lane kernel when compiled in.
    #[allow(clippy::too_many_arguments)]
    fn pass1(
        &self,
        h_diag: &[Score],
        h_up: &[Score],
        i_up: &[Score],
        prof: &[Score],
        ins: &mut [Score],
        diag: &mut [Score],
        iext: &mut [bool],
    ) {
        let (go, ge) = (self.scheme.gap_open, self.scheme.gap_extend);
        #[cfg(feature = "portable-simd")]
        if !self.force_scalar {
            lanes::pass1(go, ge, h_diag, h_up, i_up, prof, ins, diag, iext);
            return;
        }
        let up_len = h_up.len();
        ins_span(go, ge, h_up, i_up, &mut ins[..up_len], &mut iext[..up_len]);
        ins_edge(go, ge, &mut ins[up_len..], &mut iext[up_len..]);
        diag_span(h_diag, prof, diag);
    }
}

/// Elementwise insertion-gap kernel over equal-length spans: the exact
/// per-cell operations both first-pass kernels must perform.
fn ins_span(
    go: Score,
    ge: Score,
    h_up: &[Score],
    i_up: &[Score],
    ins: &mut [Score],
    iext: &mut [bool],
) {
    for (((&h, &iu), slot), flag) in h_up
        .iter()
        .zip(i_up)
        .zip(ins.iter_mut())
        .zip(iext.iter_mut())
    {
        let open_i = h - go - ge;
        let ext_i = iu - ge;
        let e = ext_i >= open_i;
        *slot = if e { ext_i } else { open_i };
        *flag = e;
    }
}

/// Band-edge cells read -inf above; run them through the same operations so
/// the extend flag (and thus the traceback) matches the fused loop exactly.
fn ins_edge(go: Score, ge: Score, ins: &mut [Score], iext: &mut [bool]) {
    let open_i = NEG_INF - go - ge;
    let ext_i = NEG_INF - ge;
    let e = ext_i >= open_i;
    for (slot, flag) in ins.iter_mut().zip(iext.iter_mut()) {
        *slot = if e { ext_i } else { open_i };
        *flag = e;
    }
}

/// Elementwise diagonal-candidate kernel: `H[i-1][j-1] + sub`, saturating,
/// clamped at -inf.
fn diag_span(h_diag: &[Score], prof: &[Score], diag: &mut [Score]) {
    for ((&h, &s), slot) in h_diag.iter().zip(prof).zip(diag.iter_mut()) {
        *slot = h.saturating_add(s).max(NEG_INF);
    }
}

/// `std::simd` first-pass kernel (`portable-simd` feature, nightly). Each
/// lane performs the identical subtract/compare/select and saturating-add
/// operations as [`ins_span`]/[`diag_span`], so results are bit-exact;
/// span remainders shorter than a register fall through to those scalar
/// helpers.
#[cfg(feature = "portable-simd")]
mod lanes {
    use super::{diag_span, ins_edge, ins_span, Score, NEG_INF};
    use std::simd::cmp::{SimdOrd, SimdPartialOrd};
    use std::simd::num::SimdInt;
    use std::simd::{Select, Simd};

    /// 8 x i32 = 256 bits: one AVX2 register, two SSE ops, or whatever the
    /// backend legalizes it to.
    pub const LANES: usize = 8;
    type V = Simd<Score, LANES>;

    #[allow(clippy::too_many_arguments)]
    pub fn pass1(
        go: Score,
        ge: Score,
        h_diag: &[Score],
        h_up: &[Score],
        i_up: &[Score],
        prof: &[Score],
        ins: &mut [Score],
        diag: &mut [Score],
        iext: &mut [bool],
    ) {
        let up_len = h_up.len();
        let len = h_diag.len();
        let gov = V::splat(go);
        let gev = V::splat(ge);
        let neg_inf = V::splat(NEG_INF);

        let mut t = 0;
        while t + LANES <= up_len {
            let h = V::from_slice(&h_up[t..]);
            let iu = V::from_slice(&i_up[t..]);
            let open_i = h - gov - gev;
            let ext_i = iu - gev;
            let e = ext_i.simd_ge(open_i);
            e.select(ext_i, open_i)
                .copy_to_slice(&mut ins[t..t + LANES]);
            iext[t..t + LANES].copy_from_slice(&e.to_array());
            t += LANES;
        }
        ins_span(
            go,
            ge,
            &h_up[t..],
            &i_up[t..],
            &mut ins[t..up_len],
            &mut iext[t..up_len],
        );
        ins_edge(go, ge, &mut ins[up_len..len], &mut iext[up_len..len]);

        let mut t = 0;
        while t + LANES <= len {
            let h = V::from_slice(&h_diag[t..]);
            let s = V::from_slice(&prof[t..]);
            h.saturating_add(s)
                .simd_max(neg_inf)
                .copy_to_slice(&mut diag[t..t + LANES]);
            t += LANES;
        }
        diag_span(&h_diag[t..], &prof[t..len], &mut diag[t..len]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nw_core::banded::BandedAligner;
    use nw_core::full::FullAligner;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    #[test]
    fn profile_matches_substitution() {
        let scheme = ScoringScheme::default();
        let b = seq("ACGTAC");
        let p = build_profile(&scheme, &b);
        for c in 0..4u8 {
            for j in 1..=b.len() {
                assert_eq!(
                    p[c as usize * (b.len() + 1) + j],
                    scheme.substitution(Base::from_code(c), b.get(j - 1))
                );
            }
        }
    }

    #[test]
    fn identical_to_reference_banded_aligner() {
        let pairs = [
            ("GATTACAGATTACA", "GATTACAGATTACA"),
            ("ACGTACGTACGT", "ACGTTACGTAGT"),
            ("ACGTGGTCATCGATTACA", "ACGTGGTCATCGATTACA"),
            ("AAAATTTTCCCCGGGG", "AAAATTTTGCCCGGG"),
        ];
        let scheme = ScoringScheme::default();
        for w in [4usize, 8, 16, 64] {
            let ksw = Ksw2Aligner::new(scheme, w);
            let reference = BandedAligner::new(scheme, w);
            for (x, y) in pairs {
                let (a, b) = (seq(x), seq(y));
                match (ksw.align(&a, &b), reference.align(&a, &b)) {
                    (Ok(k), Ok(r)) => {
                        assert_eq!(k.score, r.score, "{x} vs {y} w={w}");
                        assert_eq!(k.cigar, r.cigar, "{x} vs {y} w={w}");
                    }
                    (Err(ke), Err(re)) => assert_eq!(ke, re),
                    (k, r) => panic!("divergence on {x} vs {y} w={w}: {k:?} vs {r:?}"),
                }
            }
        }
    }

    #[test]
    fn wide_band_is_optimal() {
        let a = seq("ACGTACGGGGTACGTACGT");
        let b = seq("ACGTACGTACGTAGGT");
        let scheme = ScoringScheme::default();
        let ksw = Ksw2Aligner::new(scheme, 2 * (a.len() + b.len()));
        let aln = ksw.align(&a, &b).unwrap();
        assert_eq!(aln.score, FullAligner::affine(scheme).score(&a, &b));
        aln.cigar.validate(&a, &b).unwrap();
    }

    #[test]
    fn score_matches_align() {
        let a = seq(&"ACGGTTCA".repeat(20));
        let b = seq(&"ACGTTTCA".repeat(20));
        let ksw = Ksw2Aligner::new(ScoringScheme::default(), 32);
        assert_eq!(ksw.score(&a, &b).unwrap(), ksw.align(&a, &b).unwrap().score);
    }

    #[test]
    fn out_of_band_on_large_length_difference() {
        let a = seq("ACGT");
        let b = seq(&"ACGT".repeat(20));
        let ksw = Ksw2Aligner::new(ScoringScheme::default(), 8);
        assert!(matches!(
            ksw.score(&a, &b),
            Err(AlignError::OutOfBand { .. })
        ));
    }

    #[test]
    fn empty_inputs() {
        let ksw = Ksw2Aligner::new(ScoringScheme::default(), 8);
        let e = DnaSeq::new();
        assert_eq!(ksw.score(&e, &e).unwrap(), 0);
        let aln = ksw.align(&seq("ACG"), &e).unwrap();
        assert_eq!(aln.cigar.to_string(), "3I");
    }

    #[test]
    fn cells_counts_band_area() {
        let ksw = Ksw2Aligner::new(ScoringScheme::default(), 128);
        let cells = ksw.cells(1000, 1000);
        // ~ (w+1) * m for same-length sequences.
        assert!(cells > 100_000 && cells < 140_000, "cells {cells}");
    }
}
