//! A KSW2-style static banded affine aligner.
//!
//! Same algorithm and band geometry as [`nw_core::banded::BandedAligner`]
//! (results are bit-identical), restructured the way KSW2 structures it for
//! speed on a CPU:
//!
//! * a **query profile**: for each of the four nucleotides, the per-column
//!   substitution scores against `B` are precomputed into a flat array, so
//!   the inner loop indexes a slice instead of branching on base equality —
//!   the "query sequence profile, a branchless programming strategy" of
//!   §5.1;
//! * flat rolling arrays indexed by diagonal, with the row's in-band span
//!   hoisted out of the loop;
//! * a score-only fast path with no `BT` writes at all.

use nw_core::banded::BandGeometry;
use nw_core::error::AlignError;
use nw_core::seq::{Base, DnaSeq};
use nw_core::traceback::{walk, BtCell, BtRow, Origin};
use nw_core::{Alignment, Score, ScoringScheme, NEG_INF};

/// KSW2-style banded aligner.
#[derive(Debug, Clone)]
pub struct Ksw2Aligner {
    scheme: ScoringScheme,
    band: usize,
}

/// Per-reference query profile: `profile[c * (n + 1) + j]` is
/// `sub(c, b[j-1])` for nucleotide code `c` (j is 1-based like the DP).
fn build_profile(scheme: &ScoringScheme, b: &DnaSeq) -> Vec<Score> {
    let n = b.len();
    let mut profile = vec![0; 4 * (n + 1)];
    for c in 0..4u8 {
        let base = Base::from_code(c);
        let row = &mut profile[(c as usize) * (n + 1)..(c as usize + 1) * (n + 1)];
        for (j, slot) in row.iter_mut().enumerate().skip(1) {
            *slot = scheme.substitution(base, b.get(j - 1));
        }
    }
    profile
}

impl Ksw2Aligner {
    /// Build an aligner with band width `band` (>= 2).
    pub fn new(scheme: ScoringScheme, band: usize) -> Self {
        assert!(band >= 2, "band width must be at least 2");
        Self { scheme, band }
    }

    /// Band width.
    pub fn band(&self) -> usize {
        self.band
    }

    /// Scoring scheme.
    pub fn scheme(&self) -> &ScoringScheme {
        &self.scheme
    }

    /// Number of DP cells the banded sweep evaluates for lengths `(m, n)` —
    /// the workload measure used by the runtime model.
    pub fn cells(&self, m: usize, n: usize) -> u64 {
        BandGeometry::new(m, n, self.band).cells(m, n)
    }

    /// Score-only alignment (fast path).
    pub fn score(&self, a: &DnaSeq, b: &DnaSeq) -> Result<Score, AlignError> {
        self.run::<false>(a, b).map(|(s, _)| s)
    }

    /// Alignment with CIGAR.
    pub fn align(&self, a: &DnaSeq, b: &DnaSeq) -> Result<Alignment, AlignError> {
        let (m, n) = (a.len(), b.len());
        let (score, bt) = self.run::<true>(a, b)?;
        let geom = BandGeometry::new(m, n, self.band);
        let bt = bt.expect("BT requested");
        let cigar = walk(m, n, self.band, |i, j| {
            geom.index(i, j).map(|k| bt[i].get(k))
        })?;
        Ok(Alignment { score, cigar })
    }

    /// The banded sweep. `WANT_BT` selects traceback recording at compile
    /// time so the score-only path carries zero per-cell overhead.
    fn run<const WANT_BT: bool>(
        &self,
        a: &DnaSeq,
        b: &DnaSeq,
    ) -> Result<(Score, Option<Vec<BtRow>>), AlignError> {
        let (m, n) = (a.len(), b.len());
        let geom = BandGeometry::new(m, n, self.band);
        if !geom.reaches_end(m, n) {
            return Err(AlignError::OutOfBand {
                band: self.band,
                m,
                n,
            });
        }
        let width = geom.width();
        let (go, ge) = (self.scheme.gap_open, self.scheme.gap_extend);
        let profile = build_profile(&self.scheme, b);
        let np1 = n + 1;

        let mut h_prev = vec![NEG_INF; width];
        let mut i_prev = vec![NEG_INF; width];
        let mut h_cur = vec![NEG_INF; width];
        let mut i_cur = vec![NEG_INF; width];
        let mut bt: Vec<BtRow> = if WANT_BT {
            (0..=m).map(|_| BtRow::new(width)).collect()
        } else {
            Vec::new()
        };

        for j in geom.j_range(0, n) {
            let k = geom.index(0, j).expect("row 0 in band");
            h_prev[k] = if j == 0 { 0 } else { -go - (j as Score) * ge };
        }

        // `i` drives the band geometry, the query profile, and `bt` at once.
        #[allow(clippy::needless_range_loop)]
        for i in 1..=m {
            h_cur.fill(NEG_INF);
            i_cur.fill(NEG_INF);
            let code = a.get(i - 1).code() as usize;
            let prof = &profile[code * np1..(code + 1) * np1];
            let jr = geom.j_range(i, n);
            let (j_lo, j_hi) = (*jr.start(), *jr.end());
            let mut d: Score = NEG_INF;
            // Hoist the j == 0 boundary out of the hot loop.
            let mut j = j_lo;
            if j == 0 {
                let k = geom.index(i, 0).expect("in band");
                h_cur[k] = -go - (i as Score) * ge;
                i_cur[k] = h_cur[k];
                j = 1;
            }
            let k0 = geom.index(i, j).expect("in band");
            let mut k = k0;
            while j <= j_hi {
                let h_left = if k > 0 { h_cur[k - 1] } else { NEG_INF };
                let open_d = h_left - go - ge;
                let ext_d = d - ge;
                let d_extend = ext_d >= open_d;
                d = if d_extend { ext_d } else { open_d };
                let (h_up, i_up) = if k + 1 < width {
                    (h_prev[k + 1], i_prev[k + 1])
                } else {
                    (NEG_INF, NEG_INF)
                };
                let open_i = h_up - go - ge;
                let ext_i = i_up - ge;
                let i_extend = ext_i >= open_i;
                let ins = if i_extend { ext_i } else { open_i };
                i_cur[k] = ins;
                let sub = prof[j];
                let diag_h = h_prev[k];
                let diag = diag_h.saturating_add(sub).max(NEG_INF);
                let best = diag.max(d).max(ins);
                h_cur[k] = best;
                if WANT_BT {
                    let origin = if best == diag && diag_h > NEG_INF / 2 {
                        if sub > 0 {
                            Origin::DiagMatch
                        } else {
                            Origin::DiagMismatch
                        }
                    } else if best == ins {
                        Origin::Ins
                    } else {
                        Origin::Del
                    };
                    bt[i].set(k, BtCell::new(origin, i_extend, d_extend));
                }
                j += 1;
                k += 1;
            }
            std::mem::swap(&mut h_prev, &mut h_cur);
            std::mem::swap(&mut i_prev, &mut i_cur);
        }

        let k_final = geom.index(m, n).ok_or(AlignError::OutOfBand {
            band: self.band,
            m,
            n,
        })?;
        let score = h_prev[k_final];
        if score < NEG_INF / 2 {
            return Err(AlignError::OutOfBand {
                band: self.band,
                m,
                n,
            });
        }
        Ok((score, WANT_BT.then_some(bt)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nw_core::banded::BandedAligner;
    use nw_core::full::FullAligner;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    #[test]
    fn profile_matches_substitution() {
        let scheme = ScoringScheme::default();
        let b = seq("ACGTAC");
        let p = build_profile(&scheme, &b);
        for c in 0..4u8 {
            for j in 1..=b.len() {
                assert_eq!(
                    p[c as usize * (b.len() + 1) + j],
                    scheme.substitution(Base::from_code(c), b.get(j - 1))
                );
            }
        }
    }

    #[test]
    fn identical_to_reference_banded_aligner() {
        let pairs = [
            ("GATTACAGATTACA", "GATTACAGATTACA"),
            ("ACGTACGTACGT", "ACGTTACGTAGT"),
            ("ACGTGGTCATCGATTACA", "ACGTGGTCATCGATTACA"),
            ("AAAATTTTCCCCGGGG", "AAAATTTTGCCCGGG"),
        ];
        let scheme = ScoringScheme::default();
        for w in [4usize, 8, 16, 64] {
            let ksw = Ksw2Aligner::new(scheme, w);
            let reference = BandedAligner::new(scheme, w);
            for (x, y) in pairs {
                let (a, b) = (seq(x), seq(y));
                match (ksw.align(&a, &b), reference.align(&a, &b)) {
                    (Ok(k), Ok(r)) => {
                        assert_eq!(k.score, r.score, "{x} vs {y} w={w}");
                        assert_eq!(k.cigar, r.cigar, "{x} vs {y} w={w}");
                    }
                    (Err(ke), Err(re)) => assert_eq!(ke, re),
                    (k, r) => panic!("divergence on {x} vs {y} w={w}: {k:?} vs {r:?}"),
                }
            }
        }
    }

    #[test]
    fn wide_band_is_optimal() {
        let a = seq("ACGTACGGGGTACGTACGT");
        let b = seq("ACGTACGTACGTAGGT");
        let scheme = ScoringScheme::default();
        let ksw = Ksw2Aligner::new(scheme, 2 * (a.len() + b.len()));
        let aln = ksw.align(&a, &b).unwrap();
        assert_eq!(aln.score, FullAligner::affine(scheme).score(&a, &b));
        aln.cigar.validate(&a, &b).unwrap();
    }

    #[test]
    fn score_matches_align() {
        let a = seq(&"ACGGTTCA".repeat(20));
        let b = seq(&"ACGTTTCA".repeat(20));
        let ksw = Ksw2Aligner::new(ScoringScheme::default(), 32);
        assert_eq!(ksw.score(&a, &b).unwrap(), ksw.align(&a, &b).unwrap().score);
    }

    #[test]
    fn out_of_band_on_large_length_difference() {
        let a = seq("ACGT");
        let b = seq(&"ACGT".repeat(20));
        let ksw = Ksw2Aligner::new(ScoringScheme::default(), 8);
        assert!(matches!(
            ksw.score(&a, &b),
            Err(AlignError::OutOfBand { .. })
        ));
    }

    #[test]
    fn empty_inputs() {
        let ksw = Ksw2Aligner::new(ScoringScheme::default(), 8);
        let e = DnaSeq::new();
        assert_eq!(ksw.score(&e, &e).unwrap(), 0);
        let aln = ksw.align(&seq("ACG"), &e).unwrap();
        assert_eq!(aln.cigar.to_string(), "3I");
    }

    #[test]
    fn cells_counts_band_area() {
        let ksw = Ksw2Aligner::new(ScoringScheme::default(), 128);
        let cells = ksw.cells(1000, 1000);
        // ~ (w+1) * m for same-length sequences.
        assert!(cells > 100_000 && cells < 140_000, "cells {cells}");
    }
}
