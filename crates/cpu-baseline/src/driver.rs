//! The multi-threaded driver — the paper's "OpenMP multi-threaded CPU
//! implementation". Pairs are pulled from a shared atomic cursor by
//! scoped worker threads (work stealing at pair granularity, the same
//! dynamic schedule OpenMP's `schedule(dynamic)` gives minimap2).

use crate::ksw2::Ksw2Aligner;
use nw_core::error::AlignError;
use nw_core::seq::DnaSeq;
use nw_core::{Alignment, Score, ScoringScheme};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Multi-threaded banded CPU aligner.
#[derive(Debug, Clone)]
pub struct CpuBaseline {
    aligner: Ksw2Aligner,
    threads: usize,
}

/// Outcome of a batch run, with the wall time actually measured.
#[derive(Debug)]
pub struct BatchOutcome<T> {
    /// Per-pair results, in input order.
    pub results: Vec<Result<T, AlignError>>,
    /// Wall-clock duration of the compute phase.
    pub elapsed: std::time::Duration,
    /// DP cells evaluated (sum of per-pair band areas, successful or not).
    pub cells: u64,
}

impl<T> BatchOutcome<T> {
    /// Measured throughput in DP cells per second.
    pub fn cells_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.cells as f64 / secs
    }
}

impl CpuBaseline {
    /// Build a driver with `threads` worker threads (>= 1).
    pub fn new(scheme: ScoringScheme, band: usize, threads: usize) -> Self {
        assert!(threads >= 1, "at least one thread");
        Self {
            aligner: Ksw2Aligner::new(scheme, band),
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The underlying single-pair aligner.
    pub fn aligner(&self) -> &Ksw2Aligner {
        &self.aligner
    }

    /// Align every pair, returning scores + CIGARs.
    pub fn align_all(&self, pairs: &[(DnaSeq, DnaSeq)]) -> BatchOutcome<Alignment> {
        self.run(pairs, |al, a, b| al.align(a, b))
    }

    /// Score every pair (no CIGAR) — the 16S mode.
    pub fn score_all(&self, pairs: &[(DnaSeq, DnaSeq)]) -> BatchOutcome<Score> {
        self.run(pairs, |al, a, b| al.score(a, b))
    }

    fn run<T, F>(&self, pairs: &[(DnaSeq, DnaSeq)], work: F) -> BatchOutcome<T>
    where
        T: Send,
        F: Fn(&Ksw2Aligner, &DnaSeq, &DnaSeq) -> Result<T, AlignError> + Sync,
    {
        let cells: u64 = pairs
            .iter()
            .map(|(a, b)| self.aligner.cells(a.len(), b.len()))
            .sum();
        let aligner = &self.aligner;
        let (results, elapsed) = run_batch(self.threads, pairs, |a, b| work(aligner, a, b));
        BatchOutcome {
            results,
            elapsed,
            cells,
        }
    }
}

/// Run `work` over every pair on `threads` scoped worker threads with the
/// shared-cursor dynamic schedule, returning per-pair results in input
/// order plus the measured wall time.
///
/// This is the driver's engine exposed generically: any `work` function
/// (ksw2, the adaptive aligner, ...) gets the same work-stealing schedule —
/// the PiM host uses it to run CPU-fallback batches with the aligner that
/// matches the DPU kernel.
pub fn run_batch<T, F>(
    threads: usize,
    pairs: &[(DnaSeq, DnaSeq)],
    work: F,
) -> (Vec<Result<T, AlignError>>, std::time::Duration)
where
    T: Send,
    F: Fn(&DnaSeq, &DnaSeq) -> Result<T, AlignError> + Sync,
{
    assert!(threads >= 1, "at least one thread");
    let start = std::time::Instant::now();
    let mut results: Vec<Option<Result<T, AlignError>>> = (0..pairs.len()).map(|_| None).collect();
    if threads == 1 || pairs.len() <= 1 {
        for (slot, (a, b)) in results.iter_mut().zip(pairs) {
            *slot = Some(work(a, b));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let slots = &mut results[..];
        // Workers claim indices from the shared cursor, collect into
        // per-worker vecs, then the parent scatters into the slots.
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let cursor = &cursor;
                let work = &work;
                handles.push(scope.spawn(move || {
                    let mut mine: Vec<(usize, Result<T, AlignError>)> = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= pairs.len() {
                            break;
                        }
                        let (a, b) = &pairs[idx];
                        mine.push((idx, work(a, b)));
                    }
                    mine
                }));
            }
            for h in handles {
                for (idx, r) in h.join().expect("worker panicked") {
                    slots[idx] = Some(r);
                }
            }
        });
    }
    let elapsed = start.elapsed();
    (
        results
            .into_iter()
            .map(|r| r.expect("all slots filled"))
            .collect(),
        elapsed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    fn pairs(n: usize) -> Vec<(DnaSeq, DnaSeq)> {
        (0..n)
            .map(|k| {
                let a = "ACGTGGTCAT".repeat(4 + k % 5);
                let mut b = a.clone();
                b.insert_str(5 + k % 7, "GG");
                (seq(&a), seq(&b))
            })
            .collect()
    }

    #[test]
    fn multithreaded_matches_single_threaded() {
        let ps = pairs(37);
        let scheme = ScoringScheme::default();
        let one = CpuBaseline::new(scheme, 16, 1).align_all(&ps);
        let four = CpuBaseline::new(scheme, 16, 4).align_all(&ps);
        assert_eq!(one.results.len(), four.results.len());
        for (a, b) in one.results.iter().zip(&four.results) {
            assert_eq!(a.as_ref().ok(), b.as_ref().ok());
        }
        assert_eq!(one.cells, four.cells);
    }

    #[test]
    fn results_are_in_input_order() {
        let ps = pairs(16);
        let out = CpuBaseline::new(ScoringScheme::default(), 16, 3).align_all(&ps);
        for (r, (a, b)) in out.results.iter().zip(&ps) {
            let aln = r.as_ref().unwrap();
            aln.cigar.validate(a, b).unwrap();
        }
    }

    #[test]
    fn score_all_matches_align_all() {
        let ps = pairs(8);
        let driver = CpuBaseline::new(ScoringScheme::default(), 16, 2);
        let scores = driver.score_all(&ps);
        let aligns = driver.align_all(&ps);
        for (s, a) in scores.results.iter().zip(&aligns.results) {
            assert_eq!(s.as_ref().ok(), a.as_ref().ok().map(|x| &x.score));
        }
    }

    #[test]
    fn empty_batch() {
        let out = CpuBaseline::new(ScoringScheme::default(), 8, 4).align_all(&[]);
        assert!(out.results.is_empty());
        assert_eq!(out.cells, 0);
    }

    #[test]
    fn failures_are_per_pair() {
        // One pair with a huge length difference fails; others succeed.
        let mut ps = pairs(3);
        ps.insert(1, (seq("ACGT"), seq(&"ACGT".repeat(30))));
        let out = CpuBaseline::new(ScoringScheme::default(), 8, 2).align_all(&ps);
        assert!(out.results[0].is_ok());
        assert!(out.results[1].is_err());
        assert!(out.results[2].is_ok());
    }

    #[test]
    fn throughput_is_positive() {
        let ps = pairs(20);
        let out = CpuBaseline::new(ScoringScheme::default(), 16, 2).score_all(&ps);
        assert!(out.cells_per_second() > 0.0);
        assert!(out.cells > 0);
    }
}
