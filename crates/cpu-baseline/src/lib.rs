#![warn(missing_docs)]
#![cfg_attr(feature = "portable-simd", feature(portable_simd))]

//! # cpu-baseline — the minimap2/KSW2-style CPU reference
//!
//! The paper compares its PiM implementation against "an OpenMP
//! multi-threaded CPU implementation sourced from the minimap2 GitHub
//! repository ... shared with the KSW2 library ... vector-optimized with SSE
//! instructions", running *only* the banded N&W step (§5).
//!
//! This crate is that baseline, built from scratch:
//!
//! * [`ksw2`] — a static banded affine-gap aligner in the KSW2 style:
//!   a **query profile** (substitution scores pre-computed per reference
//!   base, §5.1's "query sequence profile"), branchless inner loop, flat
//!   arrays, and — behind the `portable-simd` feature (nightly) — a
//!   `std::simd` lane-parallel first pass, the stand-in for KSW2's SSE
//!   vectorization. Scores and CIGARs are bit-identical to
//!   [`nw_core::banded::BandedAligner`] (property-tested), just faster;
//!   the scalar kernel stays compiled in as the bit-exactness oracle.
//! * [`driver`] — the OpenMP-equivalent: a work-stealing thread pool over
//!   alignment pairs using std scoped threads.
//! * [`calibrate`] — measures this machine's cells/second and projects the
//!   paper's Xeon 4215/4216 runtimes through a core-count + bandwidth
//!   saturation model (the paper's CPUs scale sub-linearly; §5.2 shows the
//!   4216 at only 1.2-2x the 4215 despite 2x the cores).

pub mod calibrate;
pub mod driver;
pub mod ksw2;

pub use calibrate::{Calibration, XeonModel};
pub use driver::CpuBaseline;
pub use ksw2::Ksw2Aligner;
