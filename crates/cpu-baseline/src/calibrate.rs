//! Calibration + Xeon projection model.
//!
//! Absolute runtimes in the paper come from dual-socket Xeon 4215/4216
//! servers we do not have. What *is* portable is the work: DP cells
//! evaluated. We measure this machine's cells/second on the real KSW2-style
//! kernel, then project the paper's CPUs as
//!
//! ```text
//! time = cells / (per_core_rate * cores * efficiency(cores))
//! ```
//!
//! with a saturation term for the shared-memory ceiling: the paper observes
//! the 64-core 4216 beating the 32-core 4215 by only 1.2–2.0x ("the scaling
//! of Minimap2 with an increasing number of cores is quite poor", §5.2),
//! which a pure core-count model would miss. Efficiency is modeled as
//! `1 / (1 + (cores / half_sat))` — at `half_sat` cores the machine runs at
//! half its linear-scaling throughput, which reproduces the observed
//! 4216/4215 ratios (1.2x on S1000 .. 2x on S10000 bracket the model's
//! 1.45x with the default constant).

use crate::driver::CpuBaseline;
use nw_core::seq::{Base, DnaSeq};
use nw_core::ScoringScheme;

/// Measured throughput of this machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Single-thread DP cells per second with traceback.
    pub cells_per_second_bt: f64,
    /// Single-thread DP cells per second score-only.
    pub cells_per_second_score: f64,
}

impl Calibration {
    /// Measure on synthetic data. `budget_cells` bounds the work (~tens of
    /// milliseconds at 1e7).
    pub fn measure(budget_cells: u64) -> Calibration {
        let scheme = ScoringScheme::default();
        let band = 128usize;
        // One pair sized so the band area is ~budget/8, repeated 8 times.
        let len = ((budget_cells / 8) / (band as u64 + 1)).clamp(256, 100_000) as usize;
        let a: DnaSeq = (0..len).map(|i| Base::from_code((i % 4) as u8)).collect();
        let mut bv: Vec<Base> = a.as_slice().to_vec();
        for i in (37..len).step_by(97) {
            bv[i] = bv[i].complement();
        }
        let b = DnaSeq::from_bases(bv);
        let pairs: Vec<(DnaSeq, DnaSeq)> = (0..8).map(|_| (a.clone(), b.clone())).collect();
        let driver = CpuBaseline::new(scheme, band, 1);
        let bt = driver.align_all(&pairs);
        let so = driver.score_all(&pairs);
        Calibration {
            cells_per_second_bt: bt.cells_per_second().max(1.0),
            cells_per_second_score: so.cells_per_second().max(1.0),
        }
    }

    /// The paper-anchored reference calibration.
    ///
    /// The paper's own tables imply the 4215's full-machine throughput:
    /// Table 2 gives ~1.29 T banded cells / 294 s ≈ 4.4 G cells/s with
    /// traceback; Table 5 gives ~6 G score-only. Dividing by the model's
    /// `cores × clock × efficiency` for the 4215 yields these per-core
    /// rates, which also sit where a SSE KSW2 core plausibly lands. Using
    /// them keeps the reproduced CPU/DPU *ratios* independent of the local
    /// machine; `Calibration::measure` exists for local projection.
    pub fn reference() -> Calibration {
        Calibration {
            cells_per_second_bt: 3.0e8,
            cells_per_second_score: 4.0e8,
        }
    }
}

/// A projected multi-core Xeon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XeonModel {
    /// Human-readable label (Table rows).
    pub label: &'static str,
    /// Physical cores across both sockets.
    pub cores: usize,
    /// Clock relative to the calibration machine's core (the 4215 runs at
    /// 2.5 GHz, the 4216 at 2.1 GHz; expressed as a scale factor on the
    /// calibrated per-core rate).
    pub clock_scale: f64,
    /// Cores at which shared-resource contention halves per-core
    /// throughput (memory bandwidth + L3, the paper's scaling ceiling).
    pub half_saturation_cores: f64,
}

impl XeonModel {
    /// The paper's Intel Xeon 4215 server (2 sockets x 16 cores, 2.5 GHz).
    pub fn xeon_4215() -> Self {
        Self {
            label: "Minimap2 Intel 4215 (32c)",
            cores: 32,
            clock_scale: 0.75,
            half_saturation_cores: 48.0,
        }
    }

    /// The paper's Intel Xeon 4216 server (2 sockets x 32 cores, 2.1 GHz,
    /// double the L3 — a higher saturation point).
    pub fn xeon_4216() -> Self {
        Self {
            label: "Minimap2 Intel 4216 (64c)",
            cores: 64,
            clock_scale: 0.63,
            half_saturation_cores: 96.0,
        }
    }

    /// Effective parallel efficiency in `(0, 1]`.
    pub fn efficiency(&self) -> f64 {
        1.0 / (1.0 + self.cores as f64 / self.half_saturation_cores)
    }

    /// Projected seconds to evaluate `cells` DP cells.
    pub fn seconds(&self, cells: u64, cal: &Calibration, with_bt: bool) -> f64 {
        let rate = if with_bt {
            cal.cells_per_second_bt
        } else {
            cal.cells_per_second_score
        };
        let throughput = rate * self.clock_scale * self.cores as f64 * self.efficiency();
        cells as f64 / throughput
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_sane_rates() {
        let cal = Calibration::measure(2_000_000);
        // Anything from an emulated core to a fast desktop.
        assert!(cal.cells_per_second_bt > 1e5, "{cal:?}");
        assert!(cal.cells_per_second_bt < 1e11, "{cal:?}");
        // Score-only must not be slower than with-traceback (same sweep,
        // strictly less work).
        assert!(
            cal.cells_per_second_score >= 0.8 * cal.cells_per_second_bt,
            "{cal:?}"
        );
    }

    #[test]
    fn xeon_4216_beats_4215_sublinearly() {
        let cal = Calibration::reference();
        let cells = 10_000_000_000u64;
        let t4215 = XeonModel::xeon_4215().seconds(cells, &cal, true);
        let t4216 = XeonModel::xeon_4216().seconds(cells, &cal, true);
        let speedup = t4215 / t4216;
        // The paper's observed range across datasets is 1.2x .. 2.0x.
        assert!(speedup > 1.1, "speedup {speedup}");
        assert!(speedup < 2.0, "speedup {speedup}");
    }

    #[test]
    fn seconds_scale_linearly_with_cells() {
        let cal = Calibration::reference();
        let m = XeonModel::xeon_4215();
        let t1 = m.seconds(1_000_000, &cal, true);
        let t2 = m.seconds(2_000_000, &cal, true);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn efficiency_declines_with_cores() {
        let mut m = XeonModel::xeon_4215();
        let e32 = m.efficiency();
        m.cores = 64;
        assert!(m.efficiency() < e32);
        assert!(e32 > 0.0 && e32 <= 1.0);
    }

    #[test]
    fn score_only_projection_is_faster() {
        let cal = Calibration::reference();
        let m = XeonModel::xeon_4215();
        assert!(m.seconds(1 << 30, &cal, false) < m.seconds(1 << 30, &cal, true));
    }
}
