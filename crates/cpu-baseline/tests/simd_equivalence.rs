//! The `std::simd` first-pass kernel must be bit-identical to the scalar
//! oracle: same scores, same CIGARs, same errors, on random sequence
//! pairs across band widths. Without the `portable-simd` feature both
//! aligners dispatch to the scalar kernel and the suite degenerates to a
//! self-check (plus the reference cross-check), so it runs on stable too.
//!
//! Randomness comes from a hand-rolled splitmix-style LCG so the tests
//! stay deterministic and dependency-free. `SIMD_SMOKE_TRIALS` lets CI
//! run the property test at smoke scale.

use cpu_baseline::Ksw2Aligner;
use nw_core::banded::BandedAligner;
use nw_core::seq::DnaSeq;
use nw_core::ScoringScheme;

/// Deterministic 64-bit mixer (splitmix64 step).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn trials() -> usize {
    std::env::var("SIMD_SMOKE_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150)
}

fn random_seq(rng: &mut Lcg, len: usize) -> DnaSeq {
    let bases = b"ACGT";
    let text: Vec<u8> = (0..len).map(|_| bases[(rng.next() & 3) as usize]).collect();
    DnaSeq::from_ascii(&text).expect("valid bases")
}

/// Mutate `a` into a related sequence so alignments exercise all three
/// origins (substitutions, insertions, deletions) instead of pure noise.
fn mutate(rng: &mut Lcg, a: &DnaSeq, rate_pct: u64) -> DnaSeq {
    let bases = b"ACGT";
    let mut text = Vec::with_capacity(a.len() + 8);
    for i in 0..a.len() {
        let roll = rng.next() % 100;
        if roll < rate_pct {
            match rng.next() % 3 {
                0 => text.push(bases[(rng.next() & 3) as usize]), // substitute
                1 => {
                    // insert
                    text.push(bases[(rng.next() & 3) as usize]);
                    text.push(a.get(i).to_ascii());
                }
                _ => {} // delete
            }
        } else {
            text.push(a.get(i).to_ascii());
        }
    }
    DnaSeq::from_ascii(&text).expect("valid bases")
}

#[test]
fn simd_and_scalar_kernels_are_bit_identical() {
    let mut rng = Lcg(0x51D_CAFE);
    let scheme = ScoringScheme::default();
    let mut aligned = 0usize;
    for trial in 0..trials() {
        let len = 1 + (rng.next() as usize % 300);
        let a = random_seq(&mut rng, len);
        let rate = 2 + rng.next() % 18;
        let b = mutate(&mut rng, &a, rate);
        let band = 2 + (rng.next() as usize % 64);
        let simd = Ksw2Aligner::new(scheme, band);
        let scalar = simd.clone().scalar_kernel();
        match (simd.align(&a, &b), scalar.align(&a, &b)) {
            (Ok(s), Ok(c)) => {
                assert_eq!(s.score, c.score, "trial {trial}: score diverged");
                assert_eq!(s.cigar, c.cigar, "trial {trial}: CIGAR diverged");
                assert_eq!(
                    simd.score(&a, &b).expect("score-only"),
                    s.score,
                    "trial {trial}: score-only path diverged"
                );
                aligned += 1;
            }
            (Err(se), Err(ce)) => assert_eq!(se, ce, "trial {trial}: errors diverged"),
            (s, c) => panic!("trial {trial}: kernel divergence: {s:?} vs {c:?}"),
        }
    }
    // The band draw keeps most pairs alignable; make sure the test is not
    // vacuously passing on OutOfBand everywhere.
    assert!(aligned * 2 > trials(), "only {aligned} pairs aligned");
}

/// Both kernels must also match the naive reference aligner — a guard
/// against the scalar oracle itself drifting.
#[test]
fn both_kernels_match_the_reference_aligner() {
    let mut rng = Lcg(0xBAD_5EED);
    let scheme = ScoringScheme::default();
    for trial in 0..trials().min(40) {
        let len = 1 + (rng.next() as usize % 120);
        let a = random_seq(&mut rng, len);
        let rate = 2 + rng.next() % 10;
        let b = mutate(&mut rng, &a, rate);
        let band = 8 + (rng.next() as usize % 32);
        let simd = Ksw2Aligner::new(scheme, band);
        let reference = BandedAligner::new(scheme, band);
        match (simd.align(&a, &b), reference.align(&a, &b)) {
            (Ok(s), Ok(r)) => {
                assert_eq!(s.score, r.score, "trial {trial}");
                assert_eq!(s.cigar, r.cigar, "trial {trial}");
            }
            (Err(se), Err(re)) => assert_eq!(se, re, "trial {trial}"),
            (s, r) => panic!("trial {trial}: reference divergence: {s:?} vs {r:?}"),
        }
    }
}

#[test]
fn kernel_name_reports_the_dispatch() {
    let aligner = Ksw2Aligner::new(ScoringScheme::default(), 8);
    let expected = if cfg!(feature = "portable-simd") {
        "simd"
    } else {
        "scalar"
    };
    assert_eq!(aligner.kernel_name(), expected);
    assert_eq!(aligner.scalar_kernel().kernel_name(), "scalar");
    if cfg!(feature = "portable-simd") {
        assert!(Ksw2Aligner::simd_lanes() > 0);
    } else {
        assert_eq!(Ksw2Aligner::simd_lanes(), 0);
    }
}
