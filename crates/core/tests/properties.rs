//! Randomized tests for the alignment core.
//!
//! These check the algebraic invariants the rest of the system (DPU kernel,
//! host pipeline, benchmarks) relies on: banded aligners never beat the
//! exact DP, wide bands are exact, CIGARs always reconstruct their inputs,
//! and the 2-bit packing is lossless. Cases come from a seeded
//! [`SplitMix64`] stream, so every run exercises the same inputs.

use nw_core::adaptive::AdaptiveAligner;
use nw_core::banded::BandedAligner;
use nw_core::cigar::Cigar;
use nw_core::full::{FullAligner, GapModel};
use nw_core::rng::SplitMix64;
use nw_core::seq::{Base, DnaSeq};
use nw_core::traceback::{BtCell, BtRow};
use nw_core::wfa::{Penalties, WfaAligner};
use nw_core::ScoringScheme;

fn rand_seq(rng: &mut SplitMix64, max_len: usize) -> DnaSeq {
    let len = rng.below(max_len as u64 + 1) as usize;
    (0..len)
        .map(|_| Base::from_code(rng.below(4) as u8))
        .collect()
}

fn rand_scheme(rng: &mut SplitMix64) -> ScoringScheme {
    ScoringScheme::new(
        rng.between(1, 4) as i32,
        rng.between(0, 6) as i32,
        rng.between(0, 8) as i32,
        rng.between(1, 4) as i32,
    )
}

/// A pair of related sequences: `b` derives from `a` through point mutations
/// and short indels, like reads from the same genomic region.
fn related_pair(rng: &mut SplitMix64) -> (DnaSeq, DnaSeq) {
    let a = rand_seq(rng, 60);
    let mut b: Vec<Base> = a.as_slice().to_vec();
    for _ in 0..rng.below(8) {
        if b.is_empty() {
            break;
        }
        let pos = rng.below(b.len() as u64) as usize;
        let code = Base::from_code(rng.below(4) as u8);
        match rng.below(6) {
            0..=2 => b[pos] = code,       // substitution
            3 | 4 => b.insert(pos, code), // insertion
            _ => {
                b.remove(pos);
            }
        }
    }
    (a, DnaSeq::from_bases(b))
}

const TRIALS: usize = 80;

#[test]
fn packing_round_trips() {
    let mut rng = SplitMix64::new(1);
    for _ in 0..TRIALS {
        let seq = rand_seq(&mut rng, 300);
        let packed = seq.pack();
        assert_eq!(packed.unpack(), seq);
        assert_eq!(packed.len(), seq.len());
        assert_eq!(packed.byte_len(), seq.len().div_ceil(4));
    }
}

#[test]
fn reverse_complement_involution() {
    let mut rng = SplitMix64::new(2);
    for _ in 0..TRIALS {
        let seq = rand_seq(&mut rng, 200);
        assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }
}

#[test]
fn full_align_score_matches_score_only() {
    let mut rng = SplitMix64::new(3);
    for _ in 0..TRIALS {
        let (a, b) = related_pair(&mut rng);
        let scheme = rand_scheme(&mut rng);
        let full = FullAligner::affine(scheme);
        let aln = full.align(&a, &b).unwrap();
        assert_eq!(aln.score, full.score(&a, &b));
        assert!(aln.cigar.validate(&a, &b).is_ok());
        assert_eq!(aln.cigar.score(&scheme), aln.score);
    }
}

#[test]
fn linear_align_is_consistent() {
    let mut rng = SplitMix64::new(4);
    for _ in 0..TRIALS {
        let (a, b) = related_pair(&mut rng);
        let full = FullAligner::new(ScoringScheme::unit(), GapModel::Linear);
        let aln = full.align(&a, &b).unwrap();
        assert_eq!(aln.score, full.score(&a, &b));
        assert!(aln.cigar.validate(&a, &b).is_ok());
    }
}

#[test]
fn score_is_symmetric() {
    let mut rng = SplitMix64::new(5);
    for _ in 0..TRIALS {
        let (a, b) = related_pair(&mut rng);
        let full = FullAligner::affine(rand_scheme(&mut rng));
        assert_eq!(full.score(&a, &b), full.score(&b, &a));
    }
}

#[test]
fn self_alignment_is_perfect() {
    let mut rng = SplitMix64::new(6);
    for _ in 0..TRIALS {
        let a = rand_seq(&mut rng, 80);
        let scheme = rand_scheme(&mut rng);
        let full = FullAligner::affine(scheme);
        assert_eq!(full.score(&a, &a), scheme.perfect(a.len()));
    }
}

#[test]
fn wide_adaptive_band_is_exact() {
    let mut rng = SplitMix64::new(7);
    for _ in 0..TRIALS {
        let (a, b) = related_pair(&mut rng);
        let scheme = rand_scheme(&mut rng);
        let w = 2 * (a.len() + b.len()) + 4;
        let adaptive = AdaptiveAligner::new(scheme, w);
        let full = FullAligner::affine(scheme);
        let aln = adaptive.align(&a, &b).unwrap();
        assert_eq!(aln.score, full.score(&a, &b));
        assert!(aln.cigar.validate(&a, &b).is_ok());
        assert_eq!(aln.cigar.score(&scheme), aln.score);
    }
}

#[test]
fn wide_static_band_is_exact() {
    let mut rng = SplitMix64::new(8);
    for _ in 0..TRIALS {
        let (a, b) = related_pair(&mut rng);
        let scheme = rand_scheme(&mut rng);
        let w = 2 * (a.len() + b.len()) + 4;
        let banded = BandedAligner::new(scheme, w);
        let full = FullAligner::affine(scheme);
        let aln = banded.align(&a, &b).unwrap();
        assert_eq!(aln.score, full.score(&a, &b));
        assert!(aln.cigar.validate(&a, &b).is_ok());
    }
}

#[test]
fn banded_never_beats_optimal() {
    let mut rng = SplitMix64::new(9);
    for _ in 0..TRIALS {
        let (a, b) = related_pair(&mut rng);
        let scheme = ScoringScheme::default();
        let optimal = FullAligner::affine(scheme).score(&a, &b);
        for w in [4usize, 8, 16, 32] {
            if let Ok(s) = BandedAligner::new(scheme, w).score(&a, &b) {
                assert!(s <= optimal, "static w={w} score {s} > optimal {optimal}");
            }
            if let Ok(s) = AdaptiveAligner::new(scheme, w).score(&a, &b) {
                assert!(s <= optimal, "adaptive w={w} score {s} > optimal {optimal}");
            }
        }
    }
}

#[test]
fn adaptive_cigar_consistent_at_any_width() {
    let mut rng = SplitMix64::new(10);
    for _ in 0..TRIALS {
        let (a, b) = related_pair(&mut rng);
        let w = rng.between(4, 39) as usize;
        let scheme = ScoringScheme::default();
        if let Ok(aln) = AdaptiveAligner::new(scheme, w).align(&a, &b) {
            assert!(aln.cigar.validate(&a, &b).is_ok());
            assert_eq!(aln.cigar.score(&scheme), aln.score);
        }
    }
}

#[test]
fn static_cigar_consistent_at_any_width() {
    let mut rng = SplitMix64::new(11);
    for _ in 0..TRIALS {
        let (a, b) = related_pair(&mut rng);
        let w = rng.between(4, 39) as usize;
        let scheme = ScoringScheme::default();
        if let Ok(aln) = BandedAligner::new(scheme, w).align(&a, &b) {
            assert!(aln.cigar.validate(&a, &b).is_ok());
            assert_eq!(aln.cigar.score(&scheme), aln.score);
        }
    }
}

#[test]
fn adaptive_window_always_covers_final_cell() {
    let mut rng = SplitMix64::new(12);
    for _ in 0..TRIALS {
        let (a, b) = related_pair(&mut rng);
        let w = rng.between(8, 47) as usize;
        if let Ok(out) = AdaptiveAligner::new(ScoringScheme::default(), w).align_traced(&a, &b) {
            let o_final = *out.trace.origins.last().unwrap();
            let k = a.len() as i64 - o_final;
            assert!((0..w as i64).contains(&k));
            // Down-shift count equals total origin movement.
            assert_eq!(out.trace.downs() as i64, o_final - out.trace.origins[0]);
        }
    }
}

#[test]
fn cigar_text_round_trips() {
    let mut rng = SplitMix64::new(13);
    for _ in 0..TRIALS {
        let (a, b) = related_pair(&mut rng);
        let aln = FullAligner::affine(ScoringScheme::default())
            .align(&a, &b)
            .unwrap();
        let text = aln.cigar.to_string();
        if text.is_empty() {
            assert_eq!(a.len() + b.len(), 0);
        } else {
            assert_eq!(Cigar::parse(&text).unwrap(), aln.cigar);
        }
    }
}

#[test]
fn bt_row_round_trips() {
    let mut rng = SplitMix64::new(14);
    for _ in 0..TRIALS {
        let cells: Vec<u8> = (0..rng.between(1, 127))
            .map(|_| rng.below(16) as u8)
            .collect();
        let mut row = BtRow::new(cells.len());
        for (i, &c) in cells.iter().enumerate() {
            row.set(i, BtCell(c));
        }
        for (i, &c) in cells.iter().enumerate() {
            assert_eq!(row.get(i).bits(), c & 0x0F);
        }
        let rebuilt = BtRow::from_bytes(row.as_bytes().to_vec(), cells.len()).unwrap();
        for (i, &c) in cells.iter().enumerate() {
            assert_eq!(rebuilt.get(i).bits(), c & 0x0F);
        }
    }
}

#[test]
fn wfa_agrees_with_gotoh_through_the_transform() {
    let mut rng = SplitMix64::new(15);
    for _ in 0..TRIALS {
        let (a, b) = related_pair(&mut rng);
        let scheme = ScoringScheme::default();
        let pens = Penalties::from_scheme(&scheme);
        let wfa = WfaAligner::new(pens);
        let aln = wfa.align(&a, &b).unwrap();
        assert!(aln.cigar.validate(&a, &b).is_ok());
        let score = pens.penalty_to_score(&scheme, a.len(), b.len(), aln.penalty);
        let full = FullAligner::affine(scheme);
        assert_eq!(score, full.score(&a, &b));
        // The CIGAR rescored under the maximizing scheme reaches the same
        // optimum (WFA and Gotoh agree on the alignment, not just the value).
        assert_eq!(aln.cigar.score(&scheme), score);
    }
}

#[test]
fn wfa_penalty_is_metric_like() {
    let mut rng = SplitMix64::new(16);
    for _ in 0..TRIALS {
        let (a, b) = related_pair(&mut rng);
        let wfa = WfaAligner::new(Penalties::default());
        let p_ab = wfa.penalty(&a, &b).unwrap();
        let p_ba = wfa.penalty(&b, &a).unwrap();
        assert_eq!(p_ab, p_ba, "symmetry");
        assert_eq!(wfa.penalty(&a, &a).unwrap(), 0, "identity");
    }
}

#[test]
fn identity_is_bounded() {
    let mut rng = SplitMix64::new(17);
    for _ in 0..TRIALS {
        let (a, b) = related_pair(&mut rng);
        let aln = FullAligner::affine(ScoringScheme::default())
            .align(&a, &b)
            .unwrap();
        let id = aln.identity();
        assert!((0.0..=1.0).contains(&id));
    }
}
