//! Property-based tests for the alignment core.
//!
//! These check the algebraic invariants the rest of the system (DPU kernel,
//! host pipeline, benchmarks) relies on: banded aligners never beat the
//! exact DP, wide bands are exact, CIGARs always reconstruct their inputs,
//! and the 2-bit packing is lossless.

use nw_core::adaptive::AdaptiveAligner;
use nw_core::banded::BandedAligner;
use nw_core::cigar::Cigar;
use nw_core::full::{FullAligner, GapModel};
use nw_core::seq::{Base, DnaSeq};
use nw_core::traceback::{BtCell, BtRow};
use nw_core::wfa::{Penalties, WfaAligner};
use nw_core::ScoringScheme;
use proptest::prelude::*;

fn arb_seq(max_len: usize) -> impl Strategy<Value = DnaSeq> {
    prop::collection::vec(0u8..4, 0..=max_len)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

fn arb_scheme() -> impl Strategy<Value = ScoringScheme> {
    (1i32..=4, 0i32..=6, 0i32..=8, 1i32..=4)
        .prop_map(|(m, x, go, ge)| ScoringScheme::new(m, x, go, ge))
}

/// A pair of related sequences: `b` derives from `a` through point mutations
/// and short indels, like reads from the same genomic region.
fn arb_related_pair() -> impl Strategy<Value = (DnaSeq, DnaSeq)> {
    (arb_seq(60), prop::collection::vec((0usize..60, 0u8..6, 0u8..4), 0..8)).prop_map(
        |(a, edits)| {
            let mut b: Vec<Base> = a.as_slice().to_vec();
            for (pos, kind, code) in edits {
                if b.is_empty() {
                    break;
                }
                let pos = pos % b.len();
                match kind {
                    0 | 1 | 2 => b[pos] = Base::from_code(code), // substitution
                    3 | 4 => b.insert(pos, Base::from_code(code)), // insertion
                    _ => {
                        b.remove(pos);
                    }
                }
            }
            (a, DnaSeq::from_bases(b))
        },
    )
}

proptest! {
    #[test]
    fn packing_round_trips(seq in arb_seq(300)) {
        let packed = seq.pack();
        prop_assert_eq!(packed.unpack(), seq.clone());
        prop_assert_eq!(packed.len(), seq.len());
        prop_assert_eq!(packed.byte_len(), seq.len().div_ceil(4));
    }

    #[test]
    fn reverse_complement_involution(seq in arb_seq(200)) {
        prop_assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn full_align_score_matches_score_only(
        (a, b) in arb_related_pair(),
        scheme in arb_scheme(),
    ) {
        let full = FullAligner::affine(scheme);
        let aln = full.align(&a, &b).unwrap();
        prop_assert_eq!(aln.score, full.score(&a, &b));
        prop_assert!(aln.cigar.validate(&a, &b).is_ok());
        prop_assert_eq!(aln.cigar.score(&scheme), aln.score);
    }

    #[test]
    fn linear_align_is_consistent((a, b) in arb_related_pair()) {
        let full = FullAligner::new(ScoringScheme::unit(), GapModel::Linear);
        let aln = full.align(&a, &b).unwrap();
        prop_assert_eq!(aln.score, full.score(&a, &b));
        prop_assert!(aln.cigar.validate(&a, &b).is_ok());
    }

    #[test]
    fn score_is_symmetric((a, b) in arb_related_pair(), scheme in arb_scheme()) {
        let full = FullAligner::affine(scheme);
        prop_assert_eq!(full.score(&a, &b), full.score(&b, &a));
    }

    #[test]
    fn self_alignment_is_perfect(a in arb_seq(80), scheme in arb_scheme()) {
        let full = FullAligner::affine(scheme);
        prop_assert_eq!(full.score(&a, &a), scheme.perfect(a.len()));
    }

    #[test]
    fn wide_adaptive_band_is_exact((a, b) in arb_related_pair(), scheme in arb_scheme()) {
        let w = 2 * (a.len() + b.len()) + 4;
        let adaptive = AdaptiveAligner::new(scheme, w);
        let full = FullAligner::affine(scheme);
        let aln = adaptive.align(&a, &b).unwrap();
        prop_assert_eq!(aln.score, full.score(&a, &b));
        prop_assert!(aln.cigar.validate(&a, &b).is_ok());
        prop_assert_eq!(aln.cigar.score(&scheme), aln.score);
    }

    #[test]
    fn wide_static_band_is_exact((a, b) in arb_related_pair(), scheme in arb_scheme()) {
        let w = 2 * (a.len() + b.len()) + 4;
        let banded = BandedAligner::new(scheme, w);
        let full = FullAligner::affine(scheme);
        let aln = banded.align(&a, &b).unwrap();
        prop_assert_eq!(aln.score, full.score(&a, &b));
        prop_assert!(aln.cigar.validate(&a, &b).is_ok());
    }

    #[test]
    fn banded_never_beats_optimal((a, b) in arb_related_pair()) {
        let scheme = ScoringScheme::default();
        let optimal = FullAligner::affine(scheme).score(&a, &b);
        for w in [4usize, 8, 16, 32] {
            if let Ok(s) = BandedAligner::new(scheme, w).score(&a, &b) {
                prop_assert!(s <= optimal, "static w={} score {} > optimal {}", w, s, optimal);
            }
            if let Ok(s) = AdaptiveAligner::new(scheme, w).score(&a, &b) {
                prop_assert!(s <= optimal, "adaptive w={} score {} > optimal {}", w, s, optimal);
            }
        }
    }

    #[test]
    fn adaptive_cigar_consistent_at_any_width((a, b) in arb_related_pair(), w in 4usize..40) {
        let scheme = ScoringScheme::default();
        if let Ok(aln) = AdaptiveAligner::new(scheme, w).align(&a, &b) {
            prop_assert!(aln.cigar.validate(&a, &b).is_ok());
            prop_assert_eq!(aln.cigar.score(&scheme), aln.score);
        }
    }

    #[test]
    fn static_cigar_consistent_at_any_width((a, b) in arb_related_pair(), w in 4usize..40) {
        let scheme = ScoringScheme::default();
        if let Ok(aln) = BandedAligner::new(scheme, w).align(&a, &b) {
            prop_assert!(aln.cigar.validate(&a, &b).is_ok());
            prop_assert_eq!(aln.cigar.score(&scheme), aln.score);
        }
    }

    #[test]
    fn adaptive_window_always_covers_final_cell((a, b) in arb_related_pair(), w in 8usize..48) {
        if let Ok(out) = AdaptiveAligner::new(ScoringScheme::default(), w).align_traced(&a, &b) {
            let o_final = *out.trace.origins.last().unwrap();
            let k = a.len() as i64 - o_final;
            prop_assert!((0..w as i64).contains(&k));
            // Down-shift count equals total origin movement.
            prop_assert_eq!(
                out.trace.downs() as i64,
                o_final - out.trace.origins[0]
            );
        }
    }

    #[test]
    fn cigar_text_round_trips((a, b) in arb_related_pair()) {
        let aln = FullAligner::affine(ScoringScheme::default()).align(&a, &b).unwrap();
        let text = aln.cigar.to_string();
        if text.is_empty() {
            prop_assert_eq!(a.len() + b.len(), 0);
        } else {
            prop_assert_eq!(Cigar::parse(&text).unwrap(), aln.cigar);
        }
    }

    #[test]
    fn bt_row_round_trips(cells in prop::collection::vec(0u8..16, 1..128)) {
        let mut row = BtRow::new(cells.len());
        for (i, &c) in cells.iter().enumerate() {
            row.set(i, BtCell(c));
        }
        for (i, &c) in cells.iter().enumerate() {
            prop_assert_eq!(row.get(i).bits(), c & 0x0F);
        }
        let rebuilt = BtRow::from_bytes(row.as_bytes().to_vec(), cells.len()).unwrap();
        for (i, &c) in cells.iter().enumerate() {
            prop_assert_eq!(rebuilt.get(i).bits(), c & 0x0F);
        }
    }

    #[test]
    fn wfa_agrees_with_gotoh_through_the_transform((a, b) in arb_related_pair()) {
        let scheme = ScoringScheme::default();
        let pens = Penalties::from_scheme(&scheme);
        let wfa = WfaAligner::new(pens);
        let aln = wfa.align(&a, &b).unwrap();
        prop_assert!(aln.cigar.validate(&a, &b).is_ok());
        let score = pens.penalty_to_score(&scheme, a.len(), b.len(), aln.penalty);
        let full = FullAligner::affine(scheme);
        prop_assert_eq!(score, full.score(&a, &b));
        // The CIGAR rescored under the maximizing scheme reaches the same
        // optimum (WFA and Gotoh agree on the alignment, not just the value).
        prop_assert_eq!(aln.cigar.score(&scheme), score);
    }

    #[test]
    fn wfa_penalty_is_metric_like((a, b) in arb_related_pair()) {
        let wfa = WfaAligner::new(Penalties::default());
        let p_ab = wfa.penalty(&a, &b).unwrap();
        let p_ba = wfa.penalty(&b, &a).unwrap();
        prop_assert_eq!(p_ab, p_ba, "symmetry");
        prop_assert_eq!(wfa.penalty(&a, &a).unwrap(), 0, "identity");
    }

    #[test]
    fn identity_is_bounded((a, b) in arb_related_pair()) {
        let aln = FullAligner::affine(ScoringScheme::default()).align(&a, &b).unwrap();
        let id = aln.identity();
        prop_assert!((0.0..=1.0).contains(&id));
    }
}
