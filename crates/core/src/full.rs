//! Full-matrix dynamic programming: the exact O(m·n) references.
//!
//! * [`GapModel::Linear`] — the original Needleman–Wunsch recursion
//!   (paper eqs. 1–2) with a constant per-base gap cost.
//! * [`GapModel::Affine`] — the Gotoh recursion (paper eqs. 3–5) with
//!   separate gap-open and gap-extend penalties, as used by the DPU kernel.
//!
//! The paper uses minimap2 *with the band heuristic disabled* as the source
//! of optimal alignments when measuring banded accuracy (§5.1) — these
//! aligners play that role here. They are exact but quadratic in time, and
//! [`FullAligner::align`] is quadratic in memory too, so reserve `align` for
//! moderate lengths; [`FullAligner::score`] uses rolling rows and is O(n)
//! in memory.

use crate::error::AlignError;
use crate::scoring::ScoringScheme;
use crate::seq::DnaSeq;
use crate::traceback::{walk, BtCell, Origin};
use crate::{Alignment, Score, NEG_INF};

/// Gap cost model selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapModel {
    /// Constant cost per gapped base (eq. 1–2). The scheme's `gap_extend` is
    /// used as the per-base cost; `gap_open` is ignored.
    Linear,
    /// Affine `open + k * extend` model (eq. 3–5).
    Affine,
}

/// Exact full-matrix aligner.
#[derive(Debug, Clone)]
pub struct FullAligner {
    scheme: ScoringScheme,
    model: GapModel,
}

impl FullAligner {
    /// Build an aligner with the given scheme and gap model.
    pub fn new(scheme: ScoringScheme, model: GapModel) -> Self {
        Self { scheme, model }
    }

    /// Affine-gap aligner with the given scheme (the paper's configuration).
    pub fn affine(scheme: ScoringScheme) -> Self {
        Self::new(scheme, GapModel::Affine)
    }

    /// The scoring scheme in use.
    pub fn scheme(&self) -> &ScoringScheme {
        &self.scheme
    }

    /// The gap model in use.
    pub fn model(&self) -> GapModel {
        self.model
    }

    /// Optimal global alignment score, O(n) memory.
    pub fn score(&self, a: &DnaSeq, b: &DnaSeq) -> Score {
        match self.model {
            GapModel::Linear => self.score_linear(a, b),
            GapModel::Affine => self.score_affine(a, b),
        }
    }

    /// Optimal global alignment with CIGAR, O(m·n) memory.
    pub fn align(&self, a: &DnaSeq, b: &DnaSeq) -> Result<Alignment, AlignError> {
        match self.model {
            GapModel::Linear => self.align_linear(a, b),
            GapModel::Affine => self.align_affine(a, b),
        }
    }

    fn score_linear(&self, a: &DnaSeq, b: &DnaSeq) -> Score {
        let (m, n) = (a.len(), b.len());
        let gap = self.scheme.gap_extend;
        let mut prev: Vec<Score> = (0..=n).map(|j| -(j as Score) * gap).collect();
        let mut cur = vec![0; n + 1];
        for i in 1..=m {
            cur[0] = -(i as Score) * gap;
            let ai = a.get(i - 1);
            for j in 1..=n {
                let diag = prev[j - 1] + self.scheme.substitution(ai, b.get(j - 1));
                let up = prev[j] - gap;
                let left = cur[j - 1] - gap;
                cur[j] = diag.max(up).max(left);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[n]
    }

    fn score_affine(&self, a: &DnaSeq, b: &DnaSeq) -> Score {
        let (m, n) = (a.len(), b.len());
        let (go, ge) = (self.scheme.gap_open, self.scheme.gap_extend);
        // Row i-1 of H; D and I are maintained per eq. 3-4. D[i][j] depends on
        // column j-1 of the same row; I[i][j] depends on row i-1.
        let mut h_prev: Vec<Score> = vec![0; n + 1];
        let mut i_prev: Vec<Score> = vec![NEG_INF; n + 1];
        for (j, h) in h_prev.iter_mut().enumerate().skip(1) {
            *h = -go - (j as Score) * ge; // H[0][j] = D[0][j]
        }
        let mut h_cur = vec![0; n + 1];
        let mut i_cur = vec![0; n + 1];
        for i in 1..=m {
            h_cur[0] = -go - (i as Score) * ge; // H[i][0] = I[i][0]
            i_cur[0] = h_cur[0];
            let mut d: Score = NEG_INF; // D[i][0] = -inf
            let ai = a.get(i - 1);
            for j in 1..=n {
                d = (d - ge).max(h_cur[j - 1] - go - ge);
                let ins = (i_prev[j] - ge).max(h_prev[j] - go - ge);
                i_cur[j] = ins;
                let diag = h_prev[j - 1] + self.scheme.substitution(ai, b.get(j - 1));
                h_cur[j] = diag.max(d).max(ins);
            }
            std::mem::swap(&mut h_prev, &mut h_cur);
            std::mem::swap(&mut i_prev, &mut i_cur);
        }
        h_prev[n]
    }

    fn align_linear(&self, a: &DnaSeq, b: &DnaSeq) -> Result<Alignment, AlignError> {
        let (m, n) = (a.len(), b.len());
        let gap = self.scheme.gap_extend;
        let mut bt = vec![0u8; m.checked_mul(n).expect("matrix too large")];
        let mut prev: Vec<Score> = (0..=n).map(|j| -(j as Score) * gap).collect();
        let mut cur = vec![0; n + 1];
        for i in 1..=m {
            cur[0] = -(i as Score) * gap;
            let ai = a.get(i - 1);
            for j in 1..=n {
                let sub = self.scheme.substitution(ai, b.get(j - 1));
                let diag = prev[j - 1] + sub;
                let up = prev[j] - gap;
                let left = cur[j - 1] - gap;
                let best = diag.max(up).max(left);
                let origin = if best == diag {
                    if sub > 0 {
                        Origin::DiagMatch
                    } else {
                        Origin::DiagMismatch
                    }
                } else if best == up {
                    Origin::Ins
                } else {
                    Origin::Del
                };
                // Linear gaps: no extension chains; the walker re-decides at
                // every step because both extend bits are clear.
                bt[(i - 1) * n + (j - 1)] = BtCell::new(origin, false, false).bits();
                cur[j] = best;
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        let score = prev[n];
        let cigar = walk(m, n, usize::MAX, |i, j| {
            Some(BtCell(bt[(i - 1) * n + (j - 1)]))
        })?;
        Ok(Alignment { score, cigar })
    }

    fn align_affine(&self, a: &DnaSeq, b: &DnaSeq) -> Result<Alignment, AlignError> {
        let (m, n) = (a.len(), b.len());
        let (go, ge) = (self.scheme.gap_open, self.scheme.gap_extend);
        let mut bt = vec![0u8; m.checked_mul(n).expect("matrix too large")];
        let mut h_prev: Vec<Score> = vec![0; n + 1];
        let mut i_prev: Vec<Score> = vec![NEG_INF; n + 1];
        for (j, h) in h_prev.iter_mut().enumerate().skip(1) {
            *h = -go - (j as Score) * ge;
        }
        let mut h_cur = vec![0; n + 1];
        let mut i_cur = vec![0; n + 1];
        for i in 1..=m {
            h_cur[0] = -go - (i as Score) * ge;
            i_cur[0] = h_cur[0];
            let mut d: Score = NEG_INF;
            let ai = a.get(i - 1);
            for j in 1..=n {
                let d_extend = d - ge >= h_cur[j - 1] - go - ge;
                d = (d - ge).max(h_cur[j - 1] - go - ge);
                let i_extend = i_prev[j] - ge >= h_prev[j] - go - ge;
                let ins = (i_prev[j] - ge).max(h_prev[j] - go - ge);
                i_cur[j] = ins;
                let sub = self.scheme.substitution(ai, b.get(j - 1));
                let diag = h_prev[j - 1] + sub;
                let best = diag.max(d).max(ins);
                let origin = if best == diag {
                    if sub > 0 {
                        Origin::DiagMatch
                    } else {
                        Origin::DiagMismatch
                    }
                } else if best == ins {
                    Origin::Ins
                } else {
                    Origin::Del
                };
                bt[(i - 1) * n + (j - 1)] = BtCell::new(origin, i_extend, d_extend).bits();
                h_cur[j] = best;
            }
            std::mem::swap(&mut h_prev, &mut h_cur);
            std::mem::swap(&mut i_prev, &mut i_cur);
        }
        let score = h_prev[n];
        let cigar = walk(m, n, usize::MAX, |i, j| {
            Some(BtCell(bt[(i - 1) * n + (j - 1)]))
        })?;
        Ok(Alignment { score, cigar })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cigar::CigarOp;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    fn affine() -> FullAligner {
        FullAligner::affine(ScoringScheme::default())
    }

    fn linear() -> FullAligner {
        FullAligner::new(ScoringScheme::unit(), GapModel::Linear)
    }

    #[test]
    fn identical_sequences_score_perfectly() {
        let s = seq("ACGTACGTAC");
        let aln = affine().align(&s, &s).unwrap();
        assert_eq!(aln.score, ScoringScheme::default().perfect(10));
        assert_eq!(aln.cigar.to_string(), "10=");
        assert_eq!(aln.identity(), 1.0);
    }

    #[test]
    fn empty_vs_sequence_is_one_gap() {
        let a = DnaSeq::new();
        let b = seq("ACGT");
        let sch = ScoringScheme::default();
        let aln = affine().align(&a, &b).unwrap();
        assert_eq!(aln.score, -sch.gap_cost(4));
        assert_eq!(aln.cigar.to_string(), "4D");
        let aln = affine().align(&b, &a).unwrap();
        assert_eq!(aln.cigar.to_string(), "4I");
    }

    #[test]
    fn both_empty() {
        let aln = affine().align(&DnaSeq::new(), &DnaSeq::new()).unwrap();
        assert_eq!(aln.score, 0);
        assert_eq!(aln.cigar.to_string(), "");
    }

    #[test]
    fn single_mismatch() {
        let aln = affine().align(&seq("ACGT"), &seq("AGGT")).unwrap();
        assert_eq!(aln.score, 3 * 2 - 4);
        assert_eq!(aln.cigar.to_string(), "1=1X2=");
    }

    #[test]
    fn affine_prefers_one_long_gap() {
        // Two separate 1-gaps cost 2*(4+2)=12; one 2-gap costs 4+4=8.
        let a = seq("AAAATTTT");
        let b = seq("AAAACGTTTT");
        let aln = affine().align(&a, &b).unwrap();
        aln.cigar.validate(&a, &b).unwrap();
        assert_eq!(aln.cigar.count_op(CigarOp::Deletion), 2);
        // The deletions must form a single run.
        let del_runs = aln
            .cigar
            .runs()
            .iter()
            .filter(|(_, op)| *op == CigarOp::Deletion)
            .count();
        assert_eq!(del_runs, 1);
        assert_eq!(aln.score, 8 * 2 - (4 + 2 * 2));
    }

    #[test]
    fn linear_model_scores_per_base() {
        let a = seq("AAAA");
        let b = seq("AA");
        // Two single gaps at cost 1 each under the unit scheme.
        let aln = linear().align(&a, &b).unwrap();
        assert_eq!(aln.score, 2 - 2);
        assert_eq!(aln.cigar.a_len(), 4);
        assert_eq!(aln.cigar.b_len(), 2);
    }

    #[test]
    fn score_matches_align_for_both_models() {
        let pairs = [
            ("GATTACA", "GCTACAT"),
            ("ACGTACGTACGT", "ACGTTACGTAGT"),
            ("TTTT", "TTTTTTTT"),
            ("A", "C"),
            ("ACACACAC", "CACACACA"),
        ];
        for (x, y) in pairs {
            let (a, b) = (seq(x), seq(y));
            for aligner in [
                affine(),
                linear(),
                FullAligner::new(ScoringScheme::unit(), GapModel::Affine),
            ] {
                let aln = aligner.align(&a, &b).unwrap();
                assert_eq!(aln.score, aligner.score(&a, &b), "{x} vs {y}");
                aln.cigar.validate(&a, &b).unwrap();
                // Cigar::score assumes the affine model.
                if aligner.model() == GapModel::Affine {
                    assert_eq!(aln.cigar.score(aligner.scheme()), aln.score, "{x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn cigar_score_consistency_under_affine() {
        // The CIGAR rescored must equal the DP score: catches wrong extend bits.
        let a = seq("ACGTAAAACGTACGGGGGTACT");
        let b = seq("ACGTCGTACGTACTTT");
        let aln = affine().align(&a, &b).unwrap();
        aln.cigar.validate(&a, &b).unwrap();
        assert_eq!(aln.cigar.score(&ScoringScheme::default()), aln.score);
    }

    #[test]
    fn alignment_is_symmetric_in_score() {
        // Swapping inputs swaps I and D but keeps the score (sub is symmetric).
        let a = seq("ACGGTTACGT");
        let b = seq("ACGTTAGGT");
        let f = affine();
        assert_eq!(f.score(&a, &b), f.score(&b, &a));
    }

    #[test]
    fn figure1_example_structure() {
        // Figure 1: an alignment with one mismatch, one insertion, one
        // deletion. Build sequences that force exactly that.
        let a = seq("ACGTTTTTTTCAAAAAAA");
        let b = seq("AGGTTTTTTTAAAAAAAG");
        let aln = affine().align(&a, &b).unwrap();
        aln.cigar.validate(&a, &b).unwrap();
        assert!(aln.cigar.count_op(CigarOp::Mismatch) >= 1);
    }
}
