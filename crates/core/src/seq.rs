//! DNA sequences: alphabet, ASCII parsing, and the 2-bit packed encoding that
//! the paper's host program produces on the fly before shipping batches to
//! the DPUs (§4.1.1).
//!
//! Sequencers emit an ambiguous base `N` when a nucleotide was detected but
//! not identified. Following the paper (and metaFlye), `N` is substituted by
//! a deterministic pseudo-random nucleotide at parse time so that the packed
//! alphabet is exactly {A, C, G, T} and fits 2 bits per base.

use crate::error::AlignError;
use crate::rng::SplitMix64;

/// A nucleotide. The discriminant is the 2-bit on-the-wire code used in
/// [`PackedSeq`]: the same code the simulated DPU kernels unpack with shift
/// instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Base {
    /// Adenine (code 0).
    A = 0,
    /// Cytosine (code 1).
    C = 1,
    /// Guanine (code 2).
    G = 2,
    /// Thymine (code 3).
    T = 3,
}

impl Base {
    /// All four nucleotides, indexable by 2-bit code.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Decode a 2-bit code (only the low 2 bits are observed).
    #[inline]
    pub fn from_code(code: u8) -> Base {
        Self::ALL[(code & 0b11) as usize]
    }

    /// The 2-bit code.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// ASCII letter (upper-case).
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// Watson–Crick complement.
    #[inline]
    pub fn complement(self) -> Base {
        Self::from_code(self.code() ^ 0b11)
    }

    /// Parse one ASCII byte. `N`/`n` is *not* accepted here — ambiguous bases
    /// are a sequence-level policy, see [`NPolicy`].
    #[inline]
    pub fn from_ascii(byte: u8) -> Option<Base> {
        match byte {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }
}

/// What to do with ambiguous `N` bases when parsing ASCII (§4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NPolicy {
    /// Reject the sequence with [`AlignError::InvalidBase`].
    Reject,
    /// Substitute a deterministic pseudo-random nucleotide derived from the
    /// given seed and the base position (the paper's choice, citing metaFlye).
    RandomSubstitute {
        /// Seed mixed with the base position.
        seed: u64,
    },
    /// Substitute a fixed nucleotide (BWA converts `N` to a constant; the
    /// paper cites [17] noting this does not affect alignment results).
    FixedSubstitute(Base),
}

/// Read-only random access to a DNA sequence — what the DP engines consume.
///
/// Implemented for [`DnaSeq`] (host side), [`PackedSeq`] (2-bit wire format)
/// and the DPU kernel's WRAM-backed sequence windows.
pub trait SeqView {
    /// Number of bases.
    fn len(&self) -> usize;
    /// Base at `index`.
    fn base(&self, index: usize) -> Base;
    /// True when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SeqView for DnaSeq {
    fn len(&self) -> usize {
        DnaSeq::len(self)
    }
    fn base(&self, index: usize) -> Base {
        self.get(index)
    }
}

impl SeqView for PackedSeq {
    fn len(&self) -> usize {
        PackedSeq::len(self)
    }
    fn base(&self, index: usize) -> Base {
        self.get(index)
    }
}

impl SeqView for [Base] {
    fn len(&self) -> usize {
        <[Base]>::len(self)
    }
    fn base(&self, index: usize) -> Base {
        self[index]
    }
}

/// An unpacked DNA sequence: one `Base` per position. This is the working
/// representation for the host-side aligners.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DnaSeq {
    bases: Vec<Base>,
}

impl DnaSeq {
    /// Empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from raw bases.
    pub fn from_bases(bases: Vec<Base>) -> Self {
        Self { bases }
    }

    /// Parse ASCII, rejecting `N` (strict mode).
    pub fn from_ascii(text: &[u8]) -> Result<Self, AlignError> {
        Self::from_ascii_with(text, NPolicy::Reject)
    }

    /// Parse ASCII with an explicit ambiguous-base policy.
    pub fn from_ascii_with(text: &[u8], policy: NPolicy) -> Result<Self, AlignError> {
        let mut bases = Vec::with_capacity(text.len());
        for (position, &byte) in text.iter().enumerate() {
            match Base::from_ascii(byte) {
                Some(b) => bases.push(b),
                None if matches!(byte, b'N' | b'n') => match policy {
                    NPolicy::Reject => {
                        return Err(AlignError::InvalidBase { position, byte });
                    }
                    NPolicy::RandomSubstitute { seed } => {
                        // Mix the position in so that runs of N don't repeat
                        // one nucleotide, while staying reproducible.
                        let mut rng =
                            SplitMix64::new(seed ^ (position as u64).wrapping_mul(0x9E37_79B9));
                        bases.push(Base::from_code(rng.below(4) as u8));
                    }
                    NPolicy::FixedSubstitute(b) => bases.push(b),
                },
                None => return Err(AlignError::InvalidBase { position, byte }),
            }
        }
        Ok(Self { bases })
    }

    /// Length in bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// True if the sequence has no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Base at `index` (panics when out of bounds, like slice indexing).
    #[inline]
    pub fn get(&self, index: usize) -> Base {
        self.bases[index]
    }

    /// The underlying base slice.
    #[inline]
    pub fn as_slice(&self) -> &[Base] {
        &self.bases
    }

    /// Append a base.
    pub fn push(&mut self, base: Base) {
        self.bases.push(base);
    }

    /// Render as an ASCII string.
    pub fn to_ascii(&self) -> Vec<u8> {
        self.bases.iter().map(|b| b.to_ascii()).collect()
    }

    /// Reverse complement (used by dataset generators and tests).
    pub fn reverse_complement(&self) -> DnaSeq {
        DnaSeq {
            bases: self.bases.iter().rev().map(|b| b.complement()).collect(),
        }
    }

    /// Pack into the 2-bit wire format.
    pub fn pack(&self) -> PackedSeq {
        PackedSeq::from_bases(&self.bases)
    }
}

impl std::fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.bases {
            write!(f, "{}", b.to_ascii() as char)?;
        }
        Ok(())
    }
}

impl FromIterator<Base> for DnaSeq {
    fn from_iter<T: IntoIterator<Item = Base>>(iter: T) -> Self {
        Self {
            bases: iter.into_iter().collect(),
        }
    }
}

/// A 2-bit packed DNA sequence: 4 bases per byte, little-endian within the
/// byte (base `i` occupies bits `2*(i%4) .. 2*(i%4)+2` of byte `i/4`).
///
/// This is the exact format the host writes to DPU MRAM; it divides transfer
/// volume by four relative to ASCII (§4.1.1) and the simulated DPU kernel
/// unpacks it with shifts, as the real kernel does.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PackedSeq {
    data: Vec<u8>,
    len: usize,
}

impl PackedSeq {
    /// Pack a base slice.
    pub fn from_bases(bases: &[Base]) -> Self {
        let mut data = vec![0u8; bases.len().div_ceil(4)];
        for (i, b) in bases.iter().enumerate() {
            data[i / 4] |= b.code() << ((i % 4) * 2);
        }
        Self {
            data,
            len: bases.len(),
        }
    }

    /// Reconstruct from raw packed bytes and an explicit length.
    ///
    /// Returns `None` when `bytes` is too short for `len` bases.
    pub fn from_raw(bytes: Vec<u8>, len: usize) -> Option<Self> {
        if bytes.len() < len.div_ceil(4) {
            return None;
        }
        Some(Self { data: bytes, len })
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bases are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of bytes of packed payload.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Raw packed bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Base at `index` — a shift and a mask, mirroring the DPU's unpacking.
    #[inline]
    pub fn get(&self, index: usize) -> Base {
        assert!(
            index < self.len,
            "base index {index} out of range {}",
            self.len
        );
        let byte = self.data[index / 4];
        Base::from_code(byte >> ((index % 4) * 2))
    }

    /// Unpack the whole sequence.
    pub fn unpack(&self) -> DnaSeq {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_codes_round_trip() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii().to_ascii_lowercase()), Some(b));
        }
    }

    #[test]
    fn complement_is_involutive() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
            assert_ne!(b.complement(), b);
        }
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
    }

    #[test]
    fn parse_rejects_bad_bytes() {
        let err = DnaSeq::from_ascii(b"ACGX").unwrap_err();
        assert_eq!(
            err,
            AlignError::InvalidBase {
                position: 3,
                byte: b'X'
            }
        );
    }

    #[test]
    fn parse_rejects_n_by_default() {
        let err = DnaSeq::from_ascii(b"ACGN").unwrap_err();
        assert_eq!(
            err,
            AlignError::InvalidBase {
                position: 3,
                byte: b'N'
            }
        );
    }

    #[test]
    fn n_random_substitution_is_deterministic() {
        let p = NPolicy::RandomSubstitute { seed: 99 };
        let a = DnaSeq::from_ascii_with(b"ANNNA", p).unwrap();
        let b = DnaSeq::from_ascii_with(b"ANNNA", p).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.get(0), Base::A);
        assert_eq!(a.get(4), Base::A);
    }

    #[test]
    fn n_runs_are_not_constant() {
        // A long run of Ns should not collapse to a single repeated base.
        let text = vec![b'N'; 64];
        let s = DnaSeq::from_ascii_with(&text, NPolicy::RandomSubstitute { seed: 5 }).unwrap();
        let distinct: std::collections::HashSet<_> = s.as_slice().iter().collect();
        assert!(distinct.len() >= 3, "expected variety, got {distinct:?}");
    }

    #[test]
    fn n_fixed_substitution() {
        let s = DnaSeq::from_ascii_with(b"NNN", NPolicy::FixedSubstitute(Base::G)).unwrap();
        assert_eq!(s.to_ascii(), b"GGG");
    }

    #[test]
    fn display_matches_ascii() {
        let s = DnaSeq::from_ascii(b"ACGTacgt").unwrap();
        assert_eq!(s.to_string(), "ACGTACGT");
        assert_eq!(s.to_ascii(), b"ACGTACGT");
    }

    #[test]
    fn reverse_complement_round_trips() {
        let s = DnaSeq::from_ascii(b"AACGT").unwrap();
        assert_eq!(s.reverse_complement().to_ascii(), b"ACGTT");
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn packing_round_trips_all_lengths() {
        for len in 0..33 {
            let bases: Vec<Base> = (0..len).map(|i| Base::from_code((i % 4) as u8)).collect();
            let seq = DnaSeq::from_bases(bases);
            let packed = seq.pack();
            assert_eq!(packed.len(), len);
            assert_eq!(packed.byte_len(), len.div_ceil(4));
            assert_eq!(packed.unpack(), seq);
        }
    }

    #[test]
    fn packed_get_matches_unpacked() {
        let seq = DnaSeq::from_ascii(b"GATTACAGATTACA").unwrap();
        let packed = seq.pack();
        for i in 0..seq.len() {
            assert_eq!(packed.get(i), seq.get(i));
        }
    }

    #[test]
    fn packed_is_four_times_smaller() {
        let seq = DnaSeq::from_bases(vec![Base::A; 4000]);
        assert_eq!(seq.pack().byte_len(), 1000);
    }

    #[test]
    fn packed_from_raw_validates_length() {
        assert!(PackedSeq::from_raw(vec![0u8; 2], 9).is_none());
        let p = PackedSeq::from_raw(vec![0b11_10_01_00, 0b01], 5).unwrap();
        assert_eq!(p.unpack().to_ascii(), b"ACGTC");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn packed_get_out_of_range_panics() {
        PackedSeq::from_bases(&[Base::A]).get(1);
    }
}
