//! The paper's accuracy metric (§5.1): the percentage of pairs in a dataset
//! whose banded alignment reaches the *optimal* score, where optimality is
//! established by a full (band-disabled) DP — the role minimap2 without its
//! band heuristic plays in the paper.

use crate::adaptive::AdaptiveAligner;
use crate::banded::BandedAligner;
use crate::full::FullAligner;
use crate::scoring::ScoringScheme;
use crate::seq::DnaSeq;
use crate::Score;

/// Which banded heuristic to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Heuristic {
    /// Static band of the given width (§3.3).
    Static(usize),
    /// Adaptive window of the given width (§3.4).
    Adaptive(usize),
}

impl Heuristic {
    /// The band width parameter.
    pub fn band(self) -> usize {
        match self {
            Heuristic::Static(w) | Heuristic::Adaptive(w) => w,
        }
    }
}

/// Aggregated accuracy over a dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccuracyStats {
    /// Pairs evaluated.
    pub total: usize,
    /// Pairs whose banded score equals the optimum.
    pub correct: usize,
    /// Pairs where the banded aligner failed outright (path left the band so
    /// badly no score was produced). Counted as incorrect.
    pub failed: usize,
}

impl AccuracyStats {
    /// Accuracy percentage in `[0, 100]`.
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            return 100.0;
        }
        100.0 * self.correct as f64 / self.total as f64
    }

    /// Record one pair given the banded score (or `None` on failure) and the
    /// optimal score.
    pub fn record(&mut self, banded: Option<Score>, optimal: Score) {
        self.total += 1;
        match banded {
            Some(s) if s == optimal => self.correct += 1,
            Some(s) => {
                debug_assert!(s <= optimal, "banded score {s} exceeds optimum {optimal}");
            }
            None => self.failed += 1,
        }
    }

    /// Merge another stats block (for parallel evaluation).
    pub fn merge(&mut self, other: &AccuracyStats) {
        self.total += other.total;
        self.correct += other.correct;
        self.failed += other.failed;
    }
}

/// Measure a heuristic's accuracy over a set of pairs. Optimal scores are
/// computed with the exact affine DP, so keep sequence lengths moderate.
pub fn measure(
    scheme: ScoringScheme,
    heuristic: Heuristic,
    pairs: &[(DnaSeq, DnaSeq)],
) -> AccuracyStats {
    let full = FullAligner::affine(scheme);
    let optimal: Vec<Score> = pairs.iter().map(|(a, b)| full.score(a, b)).collect();
    measure_against(scheme, heuristic, pairs, &optimal)
}

/// Measure accuracy against precomputed optimal scores (lets callers compute
/// the expensive exact scores once and reuse them across band widths).
pub fn measure_against(
    scheme: ScoringScheme,
    heuristic: Heuristic,
    pairs: &[(DnaSeq, DnaSeq)],
    optimal: &[Score],
) -> AccuracyStats {
    assert_eq!(pairs.len(), optimal.len(), "one optimal score per pair");
    let mut stats = AccuracyStats::default();
    for ((a, b), &opt) in pairs.iter().zip(optimal) {
        let banded = match heuristic {
            Heuristic::Static(w) => BandedAligner::new(scheme, w).score(a, b).ok(),
            Heuristic::Adaptive(w) => AdaptiveAligner::new(scheme, w).score(a, b).ok(),
        };
        stats.record(banded, opt);
    }
    stats
}

/// Find the smallest band (among `candidates`, ascending) reaching
/// `target_percent` accuracy — how the paper picks band sizes per dataset
/// ("the band size is doubled until reaching 100% accuracy").
pub fn min_band_for_accuracy(
    scheme: ScoringScheme,
    adaptive: bool,
    pairs: &[(DnaSeq, DnaSeq)],
    candidates: &[usize],
    target_percent: f64,
) -> Option<usize> {
    let full = FullAligner::affine(scheme);
    let optimal: Vec<Score> = pairs.iter().map(|(a, b)| full.score(a, b)).collect();
    for &w in candidates {
        let h = if adaptive {
            Heuristic::Adaptive(w)
        } else {
            Heuristic::Static(w)
        };
        if measure_against(scheme, h, pairs, &optimal).percent() >= target_percent {
            return Some(w);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    fn gapped_pair(gap: usize) -> (DnaSeq, DnaSeq) {
        let core = "ACGTGGTCATCGATTACAGGCT".repeat(6);
        let mut b = core.clone();
        b.insert_str(60, &"T".repeat(gap));
        (seq(&core), seq(&b))
    }

    #[test]
    fn perfect_pairs_are_always_correct() {
        let s = seq(&"ACGT".repeat(25));
        let pairs = vec![(s.clone(), s.clone()); 4];
        for h in [Heuristic::Static(8), Heuristic::Adaptive(8)] {
            let stats = measure(ScoringScheme::default(), h, &pairs);
            assert_eq!(stats.percent(), 100.0);
            assert_eq!(stats.failed, 0);
        }
    }

    #[test]
    fn narrow_static_band_misses_gaps() {
        let pairs = vec![gapped_pair(30)];
        let stats = measure(ScoringScheme::default(), Heuristic::Static(8), &pairs);
        assert_eq!(stats.correct, 0);
        assert!(stats.percent() < 100.0);
    }

    #[test]
    fn adaptive_beats_static_at_equal_band_table1_shape() {
        // Table 1's qualitative claim on a miniature dataset: gaps of
        // 8..24 bases, band 32 for both heuristics. The static band's half
        // width (16) cannot absorb the longer gaps; the adaptive window
        // tracks them all (gaps comfortably below w).
        let pairs: Vec<_> = (0..5).map(|k| gapped_pair(8 + 4 * k)).collect();
        let scheme = ScoringScheme::default();
        let st = measure(scheme, Heuristic::Static(32), &pairs);
        let ad = measure(scheme, Heuristic::Adaptive(32), &pairs);
        assert_eq!(ad.percent(), 100.0, "adaptive@32 tracks all gaps <= 24");
        assert!(
            st.percent() <= 60.0,
            "static@32 must miss gaps > 16, got {}%",
            st.percent()
        );
        assert!(
            st.failed >= 2,
            "length differences beyond w/2 fail outright"
        );
    }

    #[test]
    fn min_band_search_finds_a_band() {
        let pairs: Vec<_> = (0..3).map(|k| gapped_pair(8 + k)).collect();
        let w = min_band_for_accuracy(
            ScoringScheme::default(),
            true,
            &pairs,
            &[4, 8, 16, 32, 64],
            100.0,
        );
        assert!(w.is_some());
        // And an absurd target over an impossible candidate list fails.
        let none = min_band_for_accuracy(ScoringScheme::default(), false, &pairs, &[2], 100.0);
        assert!(none.is_none());
    }

    #[test]
    fn stats_merge_and_empty_percent() {
        let mut a = AccuracyStats {
            total: 2,
            correct: 1,
            failed: 1,
        };
        let b = AccuracyStats {
            total: 2,
            correct: 2,
            failed: 0,
        };
        a.merge(&b);
        assert_eq!(
            a,
            AccuracyStats {
                total: 4,
                correct: 3,
                failed: 1
            }
        );
        assert_eq!(AccuracyStats::default().percent(), 100.0);
        assert_eq!(a.percent(), 75.0);
    }
}
