//! Figure-1-style rendering of an alignment: the two sequences padded with
//! `-` at gaps, and a rail of `|` (match), `*` (mismatch), ` ` (gap).

use crate::cigar::{Cigar, CigarOp};
use crate::seq::DnaSeq;

/// A rendered alignment: three equal-length ASCII rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rendering {
    /// Sequence `A` with `-` where `B` has unmatched bases.
    pub top: String,
    /// `|`, `*` or ` ` per column.
    pub rail: String,
    /// Sequence `B` with `-` where `A` has unmatched bases.
    pub bottom: String,
}

impl Rendering {
    /// Render the alignment of `a` and `b` described by `cigar`.
    ///
    /// # Panics
    /// If the CIGAR consumes more bases than the sequences provide; call
    /// [`Cigar::validate`] first for untrusted input.
    pub fn new(a: &DnaSeq, b: &DnaSeq, cigar: &Cigar) -> Rendering {
        let cols = cigar.alignment_columns();
        let mut top = String::with_capacity(cols);
        let mut rail = String::with_capacity(cols);
        let mut bottom = String::with_capacity(cols);
        let (mut i, mut j) = (0usize, 0usize);
        for op in cigar.ops() {
            match op {
                CigarOp::Match => {
                    top.push(a.get(i).to_ascii() as char);
                    rail.push('|');
                    bottom.push(b.get(j).to_ascii() as char);
                    i += 1;
                    j += 1;
                }
                CigarOp::Mismatch => {
                    top.push(a.get(i).to_ascii() as char);
                    rail.push('*');
                    bottom.push(b.get(j).to_ascii() as char);
                    i += 1;
                    j += 1;
                }
                CigarOp::Insertion => {
                    top.push(a.get(i).to_ascii() as char);
                    rail.push(' ');
                    bottom.push('-');
                    i += 1;
                }
                CigarOp::Deletion => {
                    top.push('-');
                    rail.push(' ');
                    bottom.push(b.get(j).to_ascii() as char);
                    j += 1;
                }
            }
        }
        Rendering { top, rail, bottom }
    }

    /// Format wrapped to `width` columns per block, blocks separated by a
    /// blank line.
    pub fn to_wrapped(&self, width: usize) -> String {
        assert!(width > 0, "wrap width must be positive");
        let mut out = String::new();
        let cols = self.top.len();
        let mut start = 0;
        while start < cols {
            let end = (start + width).min(cols);
            if start > 0 {
                out.push('\n');
            }
            out.push_str(&self.top[start..end]);
            out.push('\n');
            out.push_str(&self.rail[start..end]);
            out.push('\n');
            out.push_str(&self.bottom[start..end]);
            out.push('\n');
            start = end;
        }
        out
    }
}

impl std::fmt::Display for Rendering {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\n{}\n{}", self.top, self.rail, self.bottom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    #[test]
    fn figure1_shape() {
        // One mismatch, one insertion, one deletion — Figure 1 of the paper.
        let a = seq("GATTACA");
        let b = seq("GCTACAT");
        let cigar = Cigar::parse("1=1X1=1I3=1D").unwrap();
        cigar.validate(&a, &b).unwrap();
        let r = Rendering::new(&a, &b, &cigar);
        assert_eq!(r.top, "GATTACA-");
        assert_eq!(r.rail, "|*| ||| ");
        assert_eq!(r.bottom, "GCT-ACAT");
    }

    #[test]
    fn rows_have_equal_length() {
        let a = seq("ACGTACGT");
        let b = seq("ACGACGTT");
        let cigar = Cigar::parse("3=1I3=1D1=").unwrap();
        let r = Rendering::new(&a, &b, &cigar);
        assert_eq!(r.top.len(), r.rail.len());
        assert_eq!(r.rail.len(), r.bottom.len());
        assert_eq!(r.top.len(), cigar.alignment_columns());
    }

    #[test]
    fn wrapping_splits_blocks() {
        let a = seq("ACGTACGTAC");
        let b = seq("ACGTACGTAC");
        let cigar = Cigar::parse("10=").unwrap();
        let r = Rendering::new(&a, &b, &cigar);
        let wrapped = r.to_wrapped(4);
        let lines: Vec<&str> = wrapped.lines().collect();
        // 3 blocks of 3 rows + 2 separators = 11 lines.
        assert_eq!(lines.len(), 11);
        assert_eq!(lines[0], "ACGT");
        assert_eq!(lines[1], "||||");
        assert_eq!(lines[4], "ACGT");
        assert_eq!(lines[8], "AC");
    }

    #[test]
    fn display_is_three_lines() {
        let a = seq("AC");
        let b = seq("AC");
        let r = Rendering::new(&a, &b, &Cigar::parse("2=").unwrap());
        assert_eq!(r.to_string(), "AC\n||\nAC");
    }

    #[test]
    #[should_panic(expected = "wrap width must be positive")]
    fn zero_wrap_width_panics() {
        let a = seq("A");
        let r = Rendering::new(&a, &a, &Cigar::parse("1=").unwrap());
        r.to_wrapped(0);
    }
}
