//! CIGAR strings — Compact Idiosyncratic Gapped Alignment Report (§4.2.2).
//!
//! Conventions (SAM-style, treating sequence `A` as the query and `B` as the
//! reference):
//! * `=` — match, consumes one base of both `A` and `B`;
//! * `X` — mismatch, consumes one base of both;
//! * `I` — insertion: a base of `A` aligned against a gap (consumes `A`);
//! * `D` — deletion: a base of `B` aligned against a gap (consumes `B`).

use crate::error::AlignError;
use crate::scoring::ScoringScheme;
use crate::seq::DnaSeq;
use crate::Score;
use std::fmt;

/// One alignment operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CigarOp {
    /// `=` — bases are equal.
    Match,
    /// `X` — substitution.
    Mismatch,
    /// `I` — base of `A` against a gap.
    Insertion,
    /// `D` — base of `B` against a gap.
    Deletion,
}

impl CigarOp {
    /// SAM character for the op.
    pub fn symbol(self) -> char {
        match self {
            CigarOp::Match => '=',
            CigarOp::Mismatch => 'X',
            CigarOp::Insertion => 'I',
            CigarOp::Deletion => 'D',
        }
    }

    /// Parse a SAM op character (also accepts `M` as match for convenience).
    pub fn from_symbol(c: char) -> Option<CigarOp> {
        match c {
            '=' | 'M' => Some(CigarOp::Match),
            'X' => Some(CigarOp::Mismatch),
            'I' => Some(CigarOp::Insertion),
            'D' => Some(CigarOp::Deletion),
            _ => None,
        }
    }

    /// Does this op consume a base of `A` (the query)?
    pub fn consumes_a(self) -> bool {
        !matches!(self, CigarOp::Deletion)
    }

    /// Does this op consume a base of `B` (the reference)?
    pub fn consumes_b(self) -> bool {
        !matches!(self, CigarOp::Insertion)
    }
}

/// A run-length encoded CIGAR.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Cigar {
    runs: Vec<(u32, CigarOp)>,
}

impl Cigar {
    /// Empty CIGAR.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one operation, merging with the trailing run when equal.
    pub fn push(&mut self, op: CigarOp) {
        self.push_run(1, op);
    }

    /// Append `count` copies of `op`.
    pub fn push_run(&mut self, count: u32, op: CigarOp) {
        if count == 0 {
            return;
        }
        if let Some(last) = self.runs.last_mut() {
            if last.1 == op {
                last.0 += count;
                return;
            }
        }
        self.runs.push((count, op));
    }

    /// The run-length encoded content.
    pub fn runs(&self) -> &[(u32, CigarOp)] {
        &self.runs
    }

    /// Iterate ops one by one (expanded).
    pub fn ops(&self) -> impl Iterator<Item = CigarOp> + '_ {
        self.runs
            .iter()
            .flat_map(|&(n, op)| std::iter::repeat_n(op, n as usize))
    }

    /// Reverse in place — traceback produces ops end-to-start.
    pub fn reverse(&mut self) {
        self.runs.reverse();
        // Merging never needs to happen post-reverse: adjacent runs were
        // distinct before, and reversal preserves adjacency.
    }

    /// Total number of alignment columns.
    pub fn alignment_columns(&self) -> usize {
        self.runs.iter().map(|&(n, _)| n as usize).sum()
    }

    /// Number of columns with the given op.
    pub fn count_op(&self, op: CigarOp) -> usize {
        self.runs
            .iter()
            .filter(|&&(_, o)| o == op)
            .map(|&(n, _)| n as usize)
            .sum()
    }

    /// Bases of `A` consumed.
    pub fn a_len(&self) -> usize {
        self.runs
            .iter()
            .filter(|&&(_, op)| op.consumes_a())
            .map(|&(n, _)| n as usize)
            .sum()
    }

    /// Bases of `B` consumed.
    pub fn b_len(&self) -> usize {
        self.runs
            .iter()
            .filter(|&&(_, op)| op.consumes_b())
            .map(|&(n, _)| n as usize)
            .sum()
    }

    /// Parse from text such as `"10=1X3I"`.
    pub fn parse(text: &str) -> Option<Cigar> {
        let mut cigar = Cigar::new();
        let mut count: u32 = 0;
        let mut saw_digit = false;
        for c in text.chars() {
            if let Some(d) = c.to_digit(10) {
                count = count.checked_mul(10)?.checked_add(d)?;
                saw_digit = true;
            } else {
                let op = CigarOp::from_symbol(c)?;
                if !saw_digit || count == 0 {
                    return None;
                }
                cigar.push_run(count, op);
                count = 0;
                saw_digit = false;
            }
        }
        if saw_digit {
            return None; // trailing count with no op
        }
        Some(cigar)
    }

    /// Score this CIGAR under `scheme`. The CIGAR distinguishes `=` from `X`,
    /// so the score is fully determined without the sequences.
    pub fn score(&self, scheme: &ScoringScheme) -> Score {
        let mut score: Score = 0;
        for &(n, op) in &self.runs {
            let n = n as Score;
            match op {
                CigarOp::Match => score += scheme.match_score * n,
                CigarOp::Mismatch => score -= scheme.mismatch_penalty * n,
                CigarOp::Insertion | CigarOp::Deletion => {
                    score -= scheme.gap_open + scheme.gap_extend * n;
                }
            }
        }
        score
    }

    /// Check this CIGAR against the two sequences it claims to align:
    /// lengths must match and every `=`/`X` column must agree with the bases.
    pub fn validate(&self, a: &DnaSeq, b: &DnaSeq) -> Result<(), String> {
        if self.a_len() != a.len() {
            return Err(format!(
                "CIGAR consumes {} bases of A but A has {}",
                self.a_len(),
                a.len()
            ));
        }
        if self.b_len() != b.len() {
            return Err(format!(
                "CIGAR consumes {} bases of B but B has {}",
                self.b_len(),
                b.len()
            ));
        }
        let (mut i, mut j) = (0usize, 0usize);
        for (col, op) in self.ops().enumerate() {
            match op {
                CigarOp::Match => {
                    if a.get(i) != b.get(j) {
                        return Err(format!(
                            "column {col}: '=' on unequal bases at A[{i}], B[{j}]"
                        ));
                    }
                    i += 1;
                    j += 1;
                }
                CigarOp::Mismatch => {
                    if a.get(i) == b.get(j) {
                        return Err(format!(
                            "column {col}: 'X' on equal bases at A[{i}], B[{j}]"
                        ));
                    }
                    i += 1;
                    j += 1;
                }
                CigarOp::Insertion => i += 1,
                CigarOp::Deletion => j += 1,
            }
        }
        Ok(())
    }

    /// Apply this CIGAR to `a`, producing the sequence it maps to. The result
    /// equals `b` exactly when [`Cigar::validate`] passes — the mismatch
    /// column carries no target base, so `X` columns are reconstructed from
    /// nothing and this method needs `b` for them.
    pub fn apply(&self, a: &DnaSeq, b: &DnaSeq) -> Result<DnaSeq, AlignError> {
        let mut out = DnaSeq::new();
        let (mut i, mut j) = (0usize, 0usize);
        for op in self.ops() {
            match op {
                CigarOp::Match => {
                    out.push(a.get(i));
                    i += 1;
                    j += 1;
                }
                CigarOp::Mismatch => {
                    out.push(b.get(j));
                    i += 1;
                    j += 1;
                }
                CigarOp::Insertion => i += 1,
                CigarOp::Deletion => {
                    out.push(b.get(j));
                    j += 1;
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Cigar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &(n, op) in &self.runs {
            write!(f, "{n}{}", op.symbol())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    #[test]
    fn push_merges_runs() {
        let mut c = Cigar::new();
        c.push(CigarOp::Match);
        c.push(CigarOp::Match);
        c.push(CigarOp::Mismatch);
        c.push_run(3, CigarOp::Mismatch);
        assert_eq!(c.to_string(), "2=4X");
        assert_eq!(c.runs().len(), 2);
    }

    #[test]
    fn zero_run_is_ignored() {
        let mut c = Cigar::new();
        c.push_run(0, CigarOp::Match);
        assert!(c.runs().is_empty());
        assert_eq!(c.to_string(), "");
    }

    #[test]
    fn lengths_follow_consumption() {
        let c = Cigar::parse("5=2I3D1X").unwrap();
        assert_eq!(c.a_len(), 5 + 2 + 1);
        assert_eq!(c.b_len(), 5 + 3 + 1);
        assert_eq!(c.alignment_columns(), 11);
        assert_eq!(c.count_op(CigarOp::Insertion), 2);
    }

    #[test]
    fn parse_round_trips() {
        for text in ["10=", "3=1X2I4D7=", "1I1D1I"] {
            assert_eq!(Cigar::parse(text).unwrap().to_string(), text);
        }
    }

    #[test]
    fn parse_accepts_m_as_match() {
        assert_eq!(Cigar::parse("4M").unwrap().to_string(), "4=");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Cigar::parse("=").is_none());
        assert!(Cigar::parse("3").is_none());
        assert!(Cigar::parse("0=").is_none());
        assert!(Cigar::parse("3Q").is_none());
        assert!(Cigar::parse("99999999999999999=").is_none());
    }

    #[test]
    fn score_matches_hand_computation() {
        let s = ScoringScheme::default();
        // 10 matches, 1 mismatch, gap of 3: 20 - 4 - (4 + 6) = 6
        let c = Cigar::parse("10=1X3I").unwrap();
        assert_eq!(c.score(&s), 6);
    }

    #[test]
    fn figure1_alignment_validates() {
        // Figure 1 of the paper: one mismatch, one insertion, one deletion.
        //   A:  G A T T A C A -
        //   B:  G C T - A C A T   (shape only; concrete bases below)
        let a = seq("GATTACA");
        let b = seq("GCTACAT");
        let c = Cigar::parse("1=1X1=1I3=1D").unwrap();
        c.validate(&a, &b).unwrap();
        assert_eq!(c.apply(&a, &b).unwrap(), b);
    }

    #[test]
    fn validate_catches_wrong_lengths() {
        let c = Cigar::parse("3=").unwrap();
        assert!(c.validate(&seq("ACG"), &seq("AC")).is_err());
        assert!(c.validate(&seq("AC"), &seq("ACG")).is_err());
    }

    #[test]
    fn validate_catches_mislabelled_columns() {
        let c = Cigar::parse("1X2=").unwrap();
        // First column labelled mismatch but bases are equal.
        assert!(c.validate(&seq("ACG"), &seq("ACG")).is_err());
        let c = Cigar::parse("3=").unwrap();
        assert!(c.validate(&seq("ACG"), &seq("ACC")).is_err());
    }

    #[test]
    fn reverse_reverses_runs() {
        let mut c = Cigar::parse("2=1X3I").unwrap();
        c.reverse();
        assert_eq!(c.to_string(), "3I1X2=");
    }

    #[test]
    fn ops_expand_runs() {
        let c = Cigar::parse("2=1D").unwrap();
        let ops: Vec<_> = c.ops().collect();
        assert_eq!(ops, vec![CigarOp::Match, CigarOp::Match, CigarOp::Deletion]);
    }
}
