//! Error type shared by the aligners.

use std::fmt;

/// Errors reported by the alignment routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignError {
    /// A byte that is not one of `A`, `C`, `G`, `T`, `N` (case-insensitive)
    /// was found while parsing a sequence.
    InvalidBase {
        /// 0-based offset of the offending byte.
        position: usize,
        /// The byte found.
        byte: u8,
    },
    /// The optimal path left the band: the final cell `(m, n)` was never
    /// covered by the band window, so no score can be reported.
    /// The paper counts such pairs as alignment failures (Table 1 accuracy).
    OutOfBand {
        /// Band width in use.
        band: usize,
        /// Length of sequence `A`.
        m: usize,
        /// Length of sequence `B`.
        n: usize,
    },
    /// Band width must be non-zero (and for the adaptive aligner, >= 2 so a
    /// window has two extremities to compare).
    BandTooSmall {
        /// The rejected band width.
        band: usize,
    },
    /// Both sequences are empty — the alignment is trivial but callers almost
    /// always indicate a bug upstream, so we surface it.
    EmptyInput,
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignError::InvalidBase { position, byte } => {
                write!(f, "invalid base 0x{byte:02x} at position {position}")
            }
            AlignError::OutOfBand { band, m, n } => write!(
                f,
                "optimal path left the band (width {band}) for sequences of length {m} and {n}"
            ),
            AlignError::BandTooSmall { band } => {
                write!(f, "band width {band} is too small")
            }
            AlignError::EmptyInput => write!(f, "both input sequences are empty"),
        }
    }
}

impl std::error::Error for AlignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = AlignError::InvalidBase {
            position: 3,
            byte: b'Z',
        };
        assert!(e.to_string().contains("0x5a"));
        assert!(e.to_string().contains("position 3"));
        let e = AlignError::OutOfBand {
            band: 16,
            m: 100,
            n: 90,
        };
        assert!(e.to_string().contains("width 16"));
        let e = AlignError::BandTooSmall { band: 1 };
        assert!(e.to_string().contains('1'));
        assert!(!AlignError::EmptyInput.to_string().is_empty());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(AlignError::EmptyInput, AlignError::EmptyInput);
        assert_ne!(
            AlignError::BandTooSmall { band: 0 },
            AlignError::BandTooSmall { band: 1 }
        );
    }
}
