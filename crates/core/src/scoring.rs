//! Scoring schemes for the maximizing N&W recursion (paper eqs. 1–5).
//!
//! The paper uses the affine model of Gotoh: a substitution score
//! `sub(a, b)` (positive for a match, negative for a mismatch) plus separate
//! `gap_open` and `gap_extend` penalties. A gap of length `k` costs
//! `gap_open + k * gap_extend`.

use crate::seq::Base;
use crate::Score;

/// An affine-gap scoring scheme.
///
/// Penalties are stored as *positive magnitudes* and subtracted by the
/// recursion, matching the paper's `−gap_open − gap_ext` notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoringScheme {
    /// Score added for a match (`> 0`).
    pub match_score: Score,
    /// Penalty subtracted for a mismatch (`>= 0`).
    pub mismatch_penalty: Score,
    /// Penalty for opening a gap (`>= 0`).
    pub gap_open: Score,
    /// Penalty for each gapped base, including the first (`> 0`).
    pub gap_extend: Score,
}

impl Default for ScoringScheme {
    /// minimap2's defaults for map-ont style alignment: `A=2, B=4, q=4, e=2`.
    /// These are the parameters under which the paper's KSW2 baseline runs.
    fn default() -> Self {
        Self {
            match_score: 2,
            mismatch_penalty: 4,
            gap_open: 4,
            gap_extend: 2,
        }
    }
}

impl ScoringScheme {
    /// Build a scheme, validating the invariants the banded DP relies on.
    ///
    /// # Panics
    /// When `match_score <= 0`, `gap_extend <= 0`, or any magnitude is
    /// negative — such schemes make the adaptive band drift heuristic
    /// meaningless.
    pub fn new(
        match_score: Score,
        mismatch_penalty: Score,
        gap_open: Score,
        gap_extend: Score,
    ) -> Self {
        assert!(match_score > 0, "match score must be positive");
        assert!(
            mismatch_penalty >= 0,
            "mismatch penalty must be non-negative"
        );
        assert!(gap_open >= 0, "gap open penalty must be non-negative");
        assert!(gap_extend > 0, "gap extend penalty must be positive");
        Self {
            match_score,
            mismatch_penalty,
            gap_open,
            gap_extend,
        }
    }

    /// Unit edit-distance-like scheme, handy for tests: match +1,
    /// mismatch −1, open −1, extend −1.
    pub fn unit() -> Self {
        Self {
            match_score: 1,
            mismatch_penalty: 1,
            gap_open: 1,
            gap_extend: 1,
        }
    }

    /// `sub(a, b)` from eq. 1: positive on match, negative on mismatch.
    #[inline(always)]
    pub fn substitution(&self, a: Base, b: Base) -> Score {
        if a == b {
            self.match_score
        } else {
            -self.mismatch_penalty
        }
    }

    /// Total penalty of a gap of `len` bases: `gap_open + len * gap_extend`
    /// (returned as a non-negative magnitude).
    #[inline]
    pub fn gap_cost(&self, len: usize) -> Score {
        if len == 0 {
            0
        } else {
            self.gap_open + (len as Score) * self.gap_extend
        }
    }

    /// Score of a perfect alignment of `len` matching bases.
    #[inline]
    pub fn perfect(&self, len: usize) -> Score {
        self.match_score * len as Score
    }

    /// Upper bound on |score| for sequences of length `m`, `n` — used to
    /// size fixed-point representations and to check for overflow headroom.
    pub fn score_bound(&self, m: usize, n: usize) -> Score {
        let max_len = m.max(n) as Score;
        let worst = self
            .mismatch_penalty
            .max(self.gap_extend)
            .max(self.match_score);
        self.gap_open + worst * (max_len + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_minimap2_like() {
        let s = ScoringScheme::default();
        assert_eq!(
            (s.match_score, s.mismatch_penalty, s.gap_open, s.gap_extend),
            (2, 4, 4, 2)
        );
    }

    #[test]
    fn substitution_sign() {
        let s = ScoringScheme::default();
        assert_eq!(s.substitution(Base::A, Base::A), 2);
        assert_eq!(s.substitution(Base::A, Base::C), -4);
    }

    #[test]
    fn gap_cost_is_affine() {
        let s = ScoringScheme::default();
        assert_eq!(s.gap_cost(0), 0);
        assert_eq!(s.gap_cost(1), 6);
        assert_eq!(s.gap_cost(10), 24);
        // A long gap is cheaper than repeated 1-gaps: the point of Gotoh.
        assert!(s.gap_cost(10) < 10 * s.gap_cost(1));
    }

    #[test]
    fn perfect_score() {
        assert_eq!(ScoringScheme::default().perfect(100), 200);
        assert_eq!(ScoringScheme::unit().perfect(3), 3);
    }

    #[test]
    fn score_bound_dominates_real_scores() {
        let s = ScoringScheme::default();
        assert!(s.score_bound(100, 90) >= s.perfect(100));
        assert!(s.score_bound(100, 90) >= s.gap_cost(100));
    }

    #[test]
    #[should_panic(expected = "match score must be positive")]
    fn zero_match_rejected() {
        ScoringScheme::new(0, 1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "gap extend penalty must be positive")]
    fn zero_extend_rejected() {
        ScoringScheme::new(1, 1, 1, 0);
    }
}
