//! Gap-affine wavefront alignment (WFA) — the modern exact alternative the
//! paper cites ([19], Marco-Sola et al. 2020) and whose data generator it
//! uses for the synthetic datasets.
//!
//! Where banded DP bounds the *area* of the matrix it computes, WFA bounds
//! the *penalty*: it advances wavefronts of furthest-reaching points score
//! by score, so its cost is `O((m+n)·s)` for an optimal penalty `s` — very
//! fast for similar sequences and, unlike the banded heuristics, always
//! exact. This makes it the natural cross-check for Table 1's ground truth
//! and an interesting counterpoint in the benchmarks.
//!
//! WFA works in the *penalty* formulation: matches cost 0, a mismatch `x`,
//! a gap of length `L` costs `o + L·e`. A maximizing N&W score under
//! `(match = a, mismatch = -x', open = -o', extend = -e')` relates to a WFA
//! penalty through an affine transformation of the same alignment, so the
//! two agree on *which* alignment is optimal when the penalties are derived
//! per [`Penalties::from_scheme`].

use crate::cigar::{Cigar, CigarOp};
use crate::error::AlignError;
use crate::scoring::ScoringScheme;
use crate::seq::SeqView;

/// WFA penalty parameters (all costs; matches are free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Penalties {
    /// Mismatch penalty (> 0).
    pub mismatch: u32,
    /// Gap-open penalty (>= 0).
    pub gap_open: u32,
    /// Gap-extend penalty per base (> 0).
    pub gap_extend: u32,
}

impl Penalties {
    /// Build, validating.
    pub fn new(mismatch: u32, gap_open: u32, gap_extend: u32) -> Self {
        assert!(mismatch > 0, "mismatch penalty must be positive");
        assert!(gap_extend > 0, "gap extend penalty must be positive");
        Self {
            mismatch,
            gap_open,
            gap_extend,
        }
    }

    /// Derive equivalence-preserving penalties from a maximizing scheme:
    /// an alignment maximizes `a·matches − x·mismatches − Σ(o + L·e)` iff it
    /// minimizes `(a/2)·(m+n) − score`, which expands to WFA penalties
    /// `x' = 2x + 2a`, `o' = 2o`, `e' = 2e + a` (scaled by 2 to stay
    /// integral).
    pub fn from_scheme(s: &ScoringScheme) -> Self {
        let a = s.match_score as u32;
        Self {
            mismatch: 2 * (s.mismatch_penalty as u32) + 2 * a,
            gap_open: 2 * (s.gap_open as u32),
            gap_extend: 2 * (s.gap_extend as u32) + a,
        }
    }

    /// Convert a WFA penalty back to the maximizing scheme's score for
    /// sequences of lengths `m`, `n` (inverse of [`Penalties::from_scheme`]).
    pub fn penalty_to_score(
        &self,
        scheme: &ScoringScheme,
        m: usize,
        n: usize,
        penalty: u32,
    ) -> i32 {
        // score = (a·(m+n) − penalty) / 2 with the from_scheme scaling.
        (scheme.match_score * (m + n) as i32 - penalty as i32) / 2
    }
}

impl Default for Penalties {
    /// WFA paper defaults: x=4, o=6, e=2.
    fn default() -> Self {
        Self {
            mismatch: 4,
            gap_open: 6,
            gap_extend: 2,
        }
    }
}

/// Offset value stored in wavefronts: the number of `B` characters consumed
/// (`j`); `NONE` marks unreachable diagonals.
type Offset = i64;
const NONE: Offset = i64::MIN / 4;

/// One score's wavefront: offsets for diagonals `lo..=hi` of the three
/// affine components.
#[derive(Debug, Clone)]
struct Wavefront {
    lo: i64,
    hi: i64,
    m: Vec<Offset>,
    i: Vec<Offset>,
    d: Vec<Offset>,
}

impl Wavefront {
    fn new(lo: i64, hi: i64) -> Self {
        let width = (hi - lo + 1).max(0) as usize;
        Self {
            lo,
            hi,
            m: vec![NONE; width],
            i: vec![NONE; width],
            d: vec![NONE; width],
        }
    }

    #[inline]
    fn idx(&self, k: i64) -> Option<usize> {
        if k < self.lo || k > self.hi {
            None
        } else {
            Some((k - self.lo) as usize)
        }
    }

    #[inline]
    fn get_m(&self, k: i64) -> Offset {
        self.idx(k).map_or(NONE, |i| self.m[i])
    }

    #[inline]
    fn get_i(&self, k: i64) -> Offset {
        self.idx(k).map_or(NONE, |i| self.i[i])
    }

    #[inline]
    fn get_d(&self, k: i64) -> Offset {
        self.idx(k).map_or(NONE, |i| self.d[i])
    }
}

/// The gap-affine wavefront aligner.
#[derive(Debug, Clone)]
pub struct WfaAligner {
    penalties: Penalties,
    /// Safety valve: the maximum penalty explored before giving up (the
    /// quadratic worst case on unrelated sequences).
    max_penalty: u32,
}

/// A WFA result: optimal penalty plus the alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WfaAlignment {
    /// The optimal (minimal) penalty.
    pub penalty: u32,
    /// The alignment path.
    pub cigar: Cigar,
}

impl WfaAligner {
    /// Build an aligner.
    pub fn new(penalties: Penalties) -> Self {
        Self {
            penalties,
            max_penalty: 100_000,
        }
    }

    /// Override the exploration cap.
    pub fn with_max_penalty(mut self, cap: u32) -> Self {
        self.max_penalty = cap;
        self
    }

    /// Penalties in use.
    pub fn penalties(&self) -> &Penalties {
        &self.penalties
    }

    /// Optimal penalty between `a` and `b` (score-only).
    pub fn penalty<A: SeqView + ?Sized, B: SeqView + ?Sized>(
        &self,
        a: &A,
        b: &B,
    ) -> Result<u32, AlignError> {
        self.run(a, b).map(|(s, _)| s)
    }

    /// Full alignment with CIGAR.
    pub fn align<A: SeqView + ?Sized, B: SeqView + ?Sized>(
        &self,
        a: &A,
        b: &B,
    ) -> Result<WfaAlignment, AlignError> {
        let (penalty, fronts) = self.run(a, b)?;
        let cigar = self.backtrack(a, b, penalty, &fronts)?;
        Ok(WfaAlignment { penalty, cigar })
    }

    /// Advance wavefronts until `(m, n)` is reached; returns the optimal
    /// penalty and all wavefronts (indexed by score) for backtracking.
    fn run<A: SeqView + ?Sized, B: SeqView + ?Sized>(
        &self,
        a: &A,
        b: &B,
    ) -> Result<(u32, Vec<Option<Wavefront>>), AlignError> {
        let (m, n) = (a.len() as i64, b.len() as i64);
        let k_final = n - m; // diagonal k = j - i
        let Penalties {
            mismatch: x,
            gap_open: o,
            gap_extend: e,
        } = self.penalties;

        let mut fronts: Vec<Option<Wavefront>> = Vec::new();
        // Score 0: diagonal 0, offset after initial extension.
        let mut wf0 = Wavefront::new(0, 0);
        wf0.m[0] = extend(a, b, 0, 0);
        // Offset minus diagonal (k = 0) on both axes.
        if wf0.m[0] >= n && wf0.m[0] >= m {
            // Identical (or empty) inputs.
            if m == 0 && n == 0 {
                return Ok((0, vec![Some(wf0)]));
            }
        }
        if k_final == 0 && wf0.m[0] >= n {
            return Ok((0, vec![Some(wf0)]));
        }
        fronts.push(Some(wf0));

        for s in 1..=self.max_penalty {
            let s_us = s as usize;
            let get = |fs: &Vec<Option<Wavefront>>, back: u32| -> Option<usize> {
                if s < back {
                    None
                } else {
                    let idx = (s - back) as usize;
                    if idx < fs.len() && fs[idx].is_some() {
                        Some(idx)
                    } else {
                        None
                    }
                }
            };
            let src_x = get(&fronts, x);
            let src_oe = get(&fronts, o + e);
            let src_e = get(&fronts, e);
            if src_x.is_none() && src_oe.is_none() && src_e.is_none() {
                fronts.push(None);
                continue;
            }
            // New bounds: one beyond the union of the sources.
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            for idx in [src_x, src_oe, src_e].into_iter().flatten() {
                let f = fronts[idx].as_ref().expect("checked");
                lo = lo.min(f.lo);
                hi = hi.max(f.hi);
            }
            let (lo, hi) = (lo - 1, hi + 1);
            let mut wf = Wavefront::new(lo, hi);
            for k in lo..=hi {
                // I: gap in A (consumes B, j+1): from diagonal k-1.
                let i_open = src_oe
                    .map(|idx| fronts[idx].as_ref().unwrap().get_m(k - 1))
                    .unwrap_or(NONE);
                let i_ext = src_e
                    .map(|idx| fronts[idx].as_ref().unwrap().get_i(k - 1))
                    .unwrap_or(NONE);
                let i_val = i_open.max(i_ext);
                let i_val = if i_val <= NONE / 2 { NONE } else { i_val + 1 };
                // D: gap in B (consumes A, i+1): offset j unchanged, from k+1.
                let d_open = src_oe
                    .map(|idx| fronts[idx].as_ref().unwrap().get_m(k + 1))
                    .unwrap_or(NONE);
                let d_ext = src_e
                    .map(|idx| fronts[idx].as_ref().unwrap().get_d(k + 1))
                    .unwrap_or(NONE);
                let d_val = d_open.max(d_ext);
                // Mismatch: consumes both (j+1), same diagonal.
                let mm = src_x
                    .map(|idx| fronts[idx].as_ref().unwrap().get_m(k))
                    .unwrap_or(NONE);
                let mm = if mm <= NONE / 2 { NONE } else { mm + 1 };
                let mut best = mm.max(i_val).max(d_val);
                if best <= NONE / 2 {
                    continue;
                }
                // Clip to the matrix, then greedy-extend along matches.
                let i_coord = best - k;
                if best > n || i_coord > m || best < 0 || i_coord < 0 {
                    // Offset beyond the matrix: the furthest *valid* point
                    // on this diagonal cannot grow; drop it.
                    let widx = wf.idx(k).expect("in bounds");
                    wf.i[widx] = i_val.min(n).max(NONE);
                    wf.d[widx] = d_val.min(n).max(NONE);
                    continue;
                }
                best = extend(a, b, k, best);
                let widx = wf.idx(k).expect("in bounds");
                wf.m[widx] = best;
                wf.i[widx] = if i_val <= NONE / 2 { NONE } else { i_val };
                wf.d[widx] = if d_val <= NONE / 2 { NONE } else { d_val };
            }
            // Done?
            if wf.get_m(k_final) >= n {
                fronts.push(Some(wf));
                while fronts.len() <= s_us {
                    fronts.push(None);
                }
                return Ok((s, fronts));
            }
            fronts.push(Some(wf));
        }
        Err(AlignError::OutOfBand {
            band: self.max_penalty as usize,
            m: a.len(),
            n: b.len(),
        })
    }

    /// Reconstruct the CIGAR by walking the stored wavefronts backwards.
    fn backtrack<A: SeqView + ?Sized, B: SeqView + ?Sized>(
        &self,
        a: &A,
        b: &B,
        penalty: u32,
        fronts: &[Option<Wavefront>],
    ) -> Result<Cigar, AlignError> {
        let (m, n) = (a.len() as i64, b.len() as i64);
        let Penalties {
            mismatch: x,
            gap_open: o,
            gap_extend: e,
        } = self.penalties;
        #[derive(Clone, Copy, PartialEq)]
        enum Comp {
            M,
            I,
            D,
        }
        let mut ops_rev: Vec<CigarOp> = Vec::new();
        let mut s = penalty;
        let mut k = n - m;
        let mut j = n; // offset (B consumed)
        let mut comp = Comp::M;
        let front =
            |s: u32| -> Option<&Wavefront> { fronts.get(s as usize).and_then(|f| f.as_ref()) };

        loop {
            match comp {
                Comp::M => {
                    // Undo the greedy match extension down to the entry point
                    // of this wavefront cell.
                    let entry = {
                        // The M value before extension came from mm/I/D; find
                        // which source reproduces it.
                        let mm = if s >= x {
                            front(s - x).map_or(NONE, |f| f.get_m(k)).max(NONE)
                        } else {
                            NONE
                        };
                        let i_val = front(s).map_or(NONE, |f| f.get_i(k));
                        let d_val = front(s).map_or(NONE, |f| f.get_d(k));
                        (mm, i_val, d_val)
                    };
                    let (mm, i_val, d_val) = entry;
                    let mm_next = if mm <= NONE / 2 { NONE } else { mm + 1 };
                    // Matches consumed by extension: from max(entry) to j.
                    let entry_j = mm_next.max(i_val).max(d_val);
                    if s == 0 {
                        // Initial wavefront: pure matches back to (0,0) plus
                        // leading gap if k != 0 (cannot happen: k=0 at s=0).
                        for _ in 0..j.min(j - k.max(0)).max(0) {}
                        let matches = j - 0.max(k);
                        for _ in 0..matches {
                            ops_rev.push(CigarOp::Match);
                        }
                        break;
                    }
                    if entry_j <= NONE / 2 {
                        return Err(AlignError::OutOfBand {
                            band: self.max_penalty as usize,
                            m: a.len(),
                            n: b.len(),
                        });
                    }
                    let matches = j - entry_j;
                    for _ in 0..matches {
                        ops_rev.push(CigarOp::Match);
                    }
                    j = entry_j;
                    if mm_next == entry_j && mm_next > NONE / 2 {
                        ops_rev.push(CigarOp::Mismatch);
                        j -= 1;
                        s -= x;
                        // stay in M of s-x
                    } else if i_val == entry_j {
                        comp = Comp::I;
                    } else {
                        comp = Comp::D;
                    }
                }
                Comp::I => {
                    // I[s][k] = max(M[s-o-e][k-1], I[s-e][k-1]) + 1, consumes B.
                    ops_rev.push(CigarOp::Deletion); // B-only base (A gap)
                    j -= 1;
                    let from_open = if s >= o + e {
                        front(s - o - e).map_or(NONE, |f| f.get_m(k - 1))
                    } else {
                        NONE
                    };
                    let from_ext = if s >= e {
                        front(s - e).map_or(NONE, |f| f.get_i(k - 1))
                    } else {
                        NONE
                    };
                    k -= 1;
                    if from_ext == j && from_ext > NONE / 2 && s >= e {
                        s -= e;
                        comp = Comp::I;
                    } else if from_open == j && from_open > NONE / 2 {
                        s -= o + e;
                        comp = Comp::M;
                    } else {
                        return Err(AlignError::OutOfBand {
                            band: self.max_penalty as usize,
                            m: a.len(),
                            n: b.len(),
                        });
                    }
                }
                Comp::D => {
                    // D[s][k] = max(M[s-o-e][k+1], D[s-e][k+1]), consumes A.
                    ops_rev.push(CigarOp::Insertion); // A-only base (B gap)
                    let from_open = if s >= o + e {
                        front(s - o - e).map_or(NONE, |f| f.get_m(k + 1))
                    } else {
                        NONE
                    };
                    let from_ext = if s >= e {
                        front(s - e).map_or(NONE, |f| f.get_d(k + 1))
                    } else {
                        NONE
                    };
                    k += 1;
                    if from_ext == j && from_ext > NONE / 2 && s >= e {
                        s -= e;
                        comp = Comp::D;
                    } else if from_open == j && from_open > NONE / 2 {
                        s -= o + e;
                        comp = Comp::M;
                    } else {
                        return Err(AlignError::OutOfBand {
                            band: self.max_penalty as usize,
                            m: a.len(),
                            n: b.len(),
                        });
                    }
                }
            }
            if s == 0 && comp == Comp::M {
                // Finish the score-0 diagonal: all matches back to origin.
                let matches = j - 0.max(k);
                let _ = matches;
                for _ in 0..j.min(j - k).max(0).min(j) {}
                let count = j - k.max(0);
                for _ in 0..count {
                    ops_rev.push(CigarOp::Match);
                }
                break;
            }
        }
        let mut cigar = Cigar::new();
        for op in ops_rev.into_iter().rev() {
            cigar.push(op);
        }
        Ok(cigar)
    }
}

/// Greedy match extension along diagonal `k` starting at offset `j`
/// (returns the new offset).
#[inline]
fn extend<A: SeqView + ?Sized, B: SeqView + ?Sized>(a: &A, b: &B, k: i64, mut j: Offset) -> Offset {
    let (m, n) = (a.len() as i64, b.len() as i64);
    let mut i = j - k;
    while i < m && j < n && i >= 0 && j >= 0 && a.base(i as usize) == b.base(j as usize) {
        i += 1;
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::DnaSeq;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    /// Reference: plain min-based affine DP in the penalty formulation.
    fn reference_penalty(a: &DnaSeq, b: &DnaSeq, p: &Penalties) -> u32 {
        let (m, n) = (a.len(), b.len());
        const INF: u32 = u32::MAX / 4;
        let (x, o, e) = (p.mismatch, p.gap_open, p.gap_extend);
        let mut h = vec![vec![INF; n + 1]; m + 1];
        let mut gi = vec![vec![INF; n + 1]; m + 1]; // gap in B (consumes A)
        let mut gd = vec![vec![INF; n + 1]; m + 1]; // gap in A (consumes B)
        h[0][0] = 0;
        for i in 1..=m {
            gi[i][0] = o + e * i as u32;
            h[i][0] = gi[i][0];
        }
        for j in 1..=n {
            gd[0][j] = o + e * j as u32;
            h[0][j] = gd[0][j];
        }
        for i in 1..=m {
            for j in 1..=n {
                gi[i][j] = (gi[i - 1][j] + e).min(h[i - 1][j] + o + e);
                gd[i][j] = (gd[i][j - 1] + e).min(h[i][j - 1] + o + e);
                let sub = if a.get(i - 1) == b.get(j - 1) { 0 } else { x };
                h[i][j] = (h[i - 1][j - 1] + sub).min(gi[i][j]).min(gd[i][j]);
            }
        }
        h[m][n]
    }

    #[test]
    fn identical_sequences_cost_zero() {
        let s = seq("ACGTACGTACGT");
        let wfa = WfaAligner::new(Penalties::default());
        let aln = wfa.align(&s, &s).unwrap();
        assert_eq!(aln.penalty, 0);
        assert_eq!(aln.cigar.to_string(), "12=");
    }

    #[test]
    fn single_mismatch() {
        let a = seq("ACGTACGT");
        let b = seq("ACCTACGT");
        let wfa = WfaAligner::new(Penalties::default());
        let aln = wfa.align(&a, &b).unwrap();
        assert_eq!(aln.penalty, 4);
        assert_eq!(aln.cigar.to_string(), "2=1X5=");
        aln.cigar.validate(&a, &b).unwrap();
    }

    #[test]
    fn single_gap() {
        let a = seq("ACGTACGT");
        let b = seq("ACGTTACGT"); // one inserted T
        let wfa = WfaAligner::new(Penalties::default());
        let aln = wfa.align(&a, &b).unwrap();
        assert_eq!(aln.penalty, 6 + 2);
        assert_eq!(aln.cigar.a_len(), 8);
        assert_eq!(aln.cigar.b_len(), 9);
        aln.cigar.validate(&a, &b).unwrap();
    }

    #[test]
    fn long_gap_uses_affine_extension() {
        let a = seq("AAAACCCC");
        let b = seq("AAAATTTTTTCCCC");
        let wfa = WfaAligner::new(Penalties::default());
        let aln = wfa.align(&a, &b).unwrap();
        assert_eq!(aln.penalty, 6 + 6 * 2);
        aln.cigar.validate(&a, &b).unwrap();
    }

    #[test]
    fn empty_inputs() {
        let e = DnaSeq::new();
        let s = seq("ACG");
        let wfa = WfaAligner::new(Penalties::default());
        assert_eq!(wfa.penalty(&e, &e).unwrap(), 0);
        assert_eq!(wfa.penalty(&s, &e).unwrap(), 6 + 3 * 2);
        assert_eq!(wfa.penalty(&e, &s).unwrap(), 6 + 3 * 2);
        let aln = wfa.align(&s, &e).unwrap();
        assert_eq!(aln.cigar.to_string(), "3I");
        let aln = wfa.align(&e, &s).unwrap();
        assert_eq!(aln.cigar.to_string(), "3D");
    }

    #[test]
    fn matches_reference_dp_on_many_pairs() {
        let cases = [
            ("GATTACA", "GCTACAT"),
            ("ACGTACGTACGT", "ACGTTACGTAGT"),
            ("TTTTTTTT", "TTTT"),
            ("ACACACAC", "CACACACA"),
            ("AAAACGTTTT", "AAAATTTT"),
            ("ACGT", "TGCA"),
            ("AACCGGTT", "AACCGGTT"),
        ];
        for pens in [
            Penalties::default(),
            Penalties::new(2, 3, 1),
            Penalties::new(5, 1, 3),
        ] {
            let wfa = WfaAligner::new(pens);
            for (x, y) in cases {
                let (a, b) = (seq(x), seq(y));
                let expect = reference_penalty(&a, &b, &pens);
                let aln = wfa.align(&a, &b).unwrap();
                assert_eq!(aln.penalty, expect, "{x} vs {y} {pens:?}");
                aln.cigar.validate(&a, &b).unwrap();
                // The CIGAR's own penalty must equal the reported one.
                let mut p = 0u32;
                for &(count, op) in aln.cigar.runs() {
                    match op {
                        CigarOp::Match => {}
                        CigarOp::Mismatch => p += pens.mismatch * count,
                        CigarOp::Insertion | CigarOp::Deletion => {
                            p += pens.gap_open + pens.gap_extend * count;
                        }
                    }
                }
                assert_eq!(p, aln.penalty, "{x} vs {y}: cigar rescore");
            }
        }
    }

    #[test]
    fn equivalent_to_maximizing_gotoh_through_the_transform() {
        let scheme = ScoringScheme::default();
        let pens = Penalties::from_scheme(&scheme);
        let wfa = WfaAligner::new(pens);
        let full = crate::full::FullAligner::affine(scheme);
        let cases = [
            ("GATTACAGATTACA", "GATTACAGCTTACA"),
            ("ACGTACGTACGTACGT", "ACGTACGGTACGTACT"),
            ("AAAA", "AAAATTTT"),
        ];
        for (x, y) in cases {
            let (a, b) = (seq(x), seq(y));
            let penalty = wfa.penalty(&a, &b).unwrap();
            let score = pens.penalty_to_score(&scheme, a.len(), b.len(), penalty);
            assert_eq!(score, full.score(&a, &b), "{x} vs {y}");
        }
    }

    #[test]
    fn unrelated_sequences_hit_the_cap() {
        let a = seq(&"A".repeat(50));
        let b = seq(&"C".repeat(50));
        let wfa = WfaAligner::new(Penalties::default()).with_max_penalty(10);
        assert!(wfa.penalty(&a, &b).is_err());
        // And with a big enough cap it converges to 50 mismatches.
        let wfa = WfaAligner::new(Penalties::default());
        assert_eq!(wfa.penalty(&a, &b).unwrap(), 50 * 4);
    }

    #[test]
    fn wavefront_cost_tracks_divergence_not_area() {
        // The WFA selling point: cost grows with penalty, not matrix area.
        let base = "ACGTGGTCAT".repeat(40);
        let a = seq(&base);
        let mut close = base.clone();
        close.replace_range(100..101, "T");
        let b = seq(&close);
        let wfa = WfaAligner::new(Penalties::default());
        let p = wfa.penalty(&a, &b).unwrap();
        assert!(p <= 8, "one substitution: tiny penalty, got {p}");
    }
}
