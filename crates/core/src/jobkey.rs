//! Canonical content-addressed alignment-job identity.
//!
//! Two alignment requests are *the same job* exactly when they agree on
//! both packed sequences, the scoring scheme, the band width, and the
//! score-only mode — everything that determines the (score, CIGAR) result
//! under the bit-identity contract shared by every backend (DPU kernels,
//! interpreter tiers, CPU fallback). [`JobKey`] is a 128-bit hash over
//! that tuple: the key of the host-side result cache, stable across
//! processes and backends because it only sees canonical bytes (the 2-bit
//! packing normalizes case/encoding concerns away upstream).
//!
//! The hash is two independent FNV-1a 64-bit lanes (different offset
//! bases, lane 2 additionally folds a splitmix64 finalizer) over a
//! length-prefixed field stream. 128 bits make accidental collisions
//! negligible at any realistic cache size; length prefixes make the
//! encoding injective (no concatenation ambiguity between `a` and `b`).

use crate::scoring::ScoringScheme;
use crate::seq::{DnaSeq, PackedSeq};

/// 128-bit content hash identifying one alignment job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey {
    /// High lane (FNV-1a, offset basis 1).
    pub hi: u64,
    /// Low lane (FNV-1a offset basis 2, splitmix-finalized).
    pub lo: u64,
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const FNV_OFFSET_A: u64 = 0xCBF2_9CE4_8422_2325;
// Second lane: the same prime from a different, fixed starting point so
// the lanes never track each other.
const FNV_OFFSET_B: u64 = 0x6C62_272E_07BB_0142;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

struct Lanes {
    a: u64,
    b: u64,
}

impl Lanes {
    fn new() -> Self {
        Lanes {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    fn bytes(&mut self, data: &[u8]) {
        for &byte in data {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Length-prefixed field: injective over field sequences.
    fn field(&mut self, data: &[u8]) {
        self.bytes(&(data.len() as u64).to_le_bytes());
        self.bytes(data);
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(self) -> JobKey {
        JobKey {
            hi: self.a,
            lo: splitmix(self.b),
        }
    }
}

/// Hash one alignment job down to its canonical [`JobKey`].
///
/// The key covers: packed bytes *and* base length of both sequences (the
/// length disambiguates trailing-pad bytes of the 2-bit packing), the four
/// scoring-scheme magnitudes, the band width, and the score-only flag.
pub fn job_key(
    a: &PackedSeq,
    b: &PackedSeq,
    scheme: &ScoringScheme,
    band: usize,
    score_only: bool,
) -> JobKey {
    let mut h = Lanes::new();
    h.u64(a.len() as u64);
    h.field(a.as_bytes());
    h.u64(b.len() as u64);
    h.field(b.as_bytes());
    h.u64(scheme.match_score as u64);
    h.u64(scheme.mismatch_penalty as u64);
    h.u64(scheme.gap_open as u64);
    h.u64(scheme.gap_extend as u64);
    h.u64(band as u64);
    h.u64(u64::from(score_only));
    h.finish()
}

/// [`job_key`] over unpacked sequences (packs first, so the key is
/// identical to the packed-path key for the same bases).
pub fn job_key_seqs(
    a: &DnaSeq,
    b: &DnaSeq,
    scheme: &ScoringScheme,
    band: usize,
    score_only: bool,
) -> JobKey {
    job_key(&a.pack(), &b.pack(), scheme, band, score_only)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    #[test]
    fn equal_inputs_equal_keys_across_entry_points() {
        let a = seq("ACGTACGTACGT");
        let b = seq("ACGAACGTACGT");
        let s = ScoringScheme::default();
        let k1 = job_key_seqs(&a, &b, &s, 64, false);
        let k2 = job_key(&a.pack(), &b.pack(), &s, 64, false);
        assert_eq!(k1, k2);
        assert_eq!(format!("{k1}").len(), 32);
    }

    #[test]
    fn every_field_is_load_bearing() {
        let a = seq("ACGTACGTACGT");
        let b = seq("ACGAACGTACGT");
        let s = ScoringScheme::default();
        let base = job_key_seqs(&a, &b, &s, 64, false);
        // Sequences.
        assert_ne!(base, job_key_seqs(&b, &a, &s, 64, false), "order matters");
        assert_ne!(base, job_key_seqs(&a, &a, &s, 64, false));
        // Band and mode.
        assert_ne!(base, job_key_seqs(&a, &b, &s, 128, false));
        assert_ne!(base, job_key_seqs(&a, &b, &s, 64, true));
        // Each scoring magnitude.
        for field in 0..4 {
            let mut t = s;
            match field {
                0 => t.match_score += 1,
                1 => t.mismatch_penalty += 1,
                2 => t.gap_open += 1,
                _ => t.gap_extend += 1,
            }
            assert_ne!(base, job_key_seqs(&a, &b, &t, 64, false), "field {field}");
        }
    }

    #[test]
    fn concatenation_is_not_ambiguous() {
        // ("ACGT", "AC") vs ("ACGTAC", "") style splits must not collide:
        // the length prefixes separate the fields.
        let s = ScoringScheme::default();
        let k1 = job_key_seqs(&seq("ACGT"), &seq("ACAA"), &s, 64, false);
        let k2 = job_key_seqs(&seq("ACGTACAA"), &seq(""), &s, 64, false);
        let k3 = job_key_seqs(&seq("AC"), &seq("GTACAA"), &s, 64, false);
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_ne!(k2, k3);
    }

    #[test]
    fn keys_are_stable_across_calls() {
        let a = seq("GATTACA");
        let b = seq("GATTA");
        let s = ScoringScheme::unit();
        assert_eq!(
            job_key_seqs(&a, &b, &s, 32, true),
            job_key_seqs(&a, &b, &s, 32, true)
        );
    }
}
