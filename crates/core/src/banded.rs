//! Static banded DP (§3.3): evaluate only the cells within a fixed band of
//! diagonals around the main diagonal, reducing complexity to O(w·(m+n)).
//!
//! This is the heuristic minimap2's KSW2 kernel implements on CPU and the
//! "Static" column of Table 1. The band is the set of cells whose diagonal
//! offset `d = j - i` lies in `[d_lo, d_hi]` where
//! `d_lo = min(0, n-m) - w/2` and `d_hi = max(0, n-m) + w/2`, which always
//! covers both `(0,0)` and `(m,n)`: a static band *always* produces a score,
//! but it is the optimal score only when the optimal path stays inside
//! (Table 1 measures exactly how often that holds).

use crate::error::AlignError;
use crate::scoring::ScoringScheme;
use crate::seq::DnaSeq;
use crate::traceback::{walk, BtCell, BtRow, Origin};
use crate::{Alignment, Score, NEG_INF};

/// Geometry of a static band for a given pair of lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandGeometry {
    /// Lowest allowed diagonal offset `j - i`.
    pub d_lo: i64,
    /// Highest allowed diagonal offset `j - i`.
    pub d_hi: i64,
}

impl BandGeometry {
    /// Compute the band for band width `w`: diagonals `[-w/2, +w/2]` around
    /// the main diagonal (Figure 3 A). The end cell `(m, n)` is inside only
    /// when `|n - m| <= w/2` — as the paper notes, the static band size must
    /// account for "the difference between the lengths of the 2 sequences",
    /// and a band that is too small for the length difference is a failure.
    pub fn new(m: usize, n: usize, w: usize) -> Self {
        let _ = (m, n); // geometry is independent of the lengths
        let half = (w / 2) as i64;
        Self {
            d_lo: -half,
            d_hi: half,
        }
    }

    /// Does this band contain the end cell for lengths `m`, `n`?
    pub fn reaches_end(&self, m: usize, n: usize) -> bool {
        self.contains(m, n)
    }

    /// Number of diagonals in the band (the storage row width).
    pub fn width(&self) -> usize {
        (self.d_hi - self.d_lo + 1) as usize
    }

    /// Is cell `(i, j)` inside the band?
    #[inline]
    pub fn contains(&self, i: usize, j: usize) -> bool {
        let d = j as i64 - i as i64;
        d >= self.d_lo && d <= self.d_hi
    }

    /// Storage index for `(i, j)`, or `None` when outside.
    #[inline]
    pub fn index(&self, i: usize, j: usize) -> Option<usize> {
        let d = j as i64 - i as i64;
        if d < self.d_lo || d > self.d_hi {
            None
        } else {
            Some((d - self.d_lo) as usize)
        }
    }

    /// The range of valid `j` for row `i` (clamped to `[0, n]`).
    pub fn j_range(&self, i: usize, n: usize) -> std::ops::RangeInclusive<usize> {
        let lo = (i as i64 + self.d_lo).max(0) as usize;
        let hi = ((i as i64 + self.d_hi).min(n as i64)).max(0) as usize;
        lo..=hi
    }

    /// Total number of DP cells the band evaluates (the workload actually
    /// computed; the paper estimates it as `(m + n) * w`, eq. 6).
    pub fn cells(&self, m: usize, n: usize) -> u64 {
        (0..=m)
            .map(|i| {
                let r = self.j_range(i, n);
                if r.is_empty() {
                    0 // row entirely outside the matrix (large |n - m|)
                } else {
                    (r.end() - r.start() + 1) as u64
                }
            })
            .sum()
    }
}

/// Static banded affine-gap global aligner.
#[derive(Debug, Clone)]
pub struct BandedAligner {
    scheme: ScoringScheme,
    band: usize,
}

impl BandedAligner {
    /// Build an aligner with band width `w` (must be >= 2).
    pub fn new(scheme: ScoringScheme, band: usize) -> Self {
        assert!(band >= 2, "band width must be at least 2");
        Self { scheme, band }
    }

    /// The configured band width.
    pub fn band(&self) -> usize {
        self.band
    }

    /// The scoring scheme.
    pub fn scheme(&self) -> &ScoringScheme {
        &self.scheme
    }

    /// Band-constrained score only (no traceback storage).
    pub fn score(&self, a: &DnaSeq, b: &DnaSeq) -> Result<Score, AlignError> {
        self.run(a, b, false).map(|(s, _)| s)
    }

    /// Band-constrained alignment with CIGAR.
    pub fn align(&self, a: &DnaSeq, b: &DnaSeq) -> Result<Alignment, AlignError> {
        let (score, bt) = self.run(a, b, true)?;
        let geom = BandGeometry::new(a.len(), b.len(), self.band);
        let bt = bt.expect("BT requested");
        let cigar = walk(a.len(), b.len(), self.band, |i, j| {
            geom.index(i, j).map(|k| bt[i].get(k))
        })?;
        Ok(Alignment { score, cigar })
    }

    /// Row-wise banded Gotoh. Row `i` stores diagonals `d_lo..=d_hi`; cell
    /// `(i, j)` lives at index `j - i - d_lo`, so:
    /// * left  `(i, j-1)`  -> same row, index-1
    /// * up    `(i-1, j)`  -> previous row, index+1
    /// * diag  `(i-1, j-1)`-> previous row, same index
    fn run(
        &self,
        a: &DnaSeq,
        b: &DnaSeq,
        want_bt: bool,
    ) -> Result<(Score, Option<Vec<BtRow>>), AlignError> {
        let (m, n) = (a.len(), b.len());
        let geom = BandGeometry::new(m, n, self.band);
        if !geom.reaches_end(m, n) {
            // The length difference alone exceeds the band: no global path.
            return Err(AlignError::OutOfBand {
                band: self.band,
                m,
                n,
            });
        }
        let width = geom.width();
        let (go, ge) = (self.scheme.gap_open, self.scheme.gap_extend);

        let mut h_prev = vec![NEG_INF; width];
        let mut i_prev = vec![NEG_INF; width];
        let mut h_cur = vec![NEG_INF; width];
        let mut i_cur = vec![NEG_INF; width];
        let mut bt: Vec<BtRow> = if want_bt {
            (0..=m).map(|_| BtRow::new(width)).collect()
        } else {
            Vec::new()
        };

        // Row 0 boundary: H[0][j] = D[0][j] = -(go + j*ge); I[0][j] = -inf.
        for j in geom.j_range(0, n) {
            let k = geom.index(0, j).expect("row 0 in band");
            h_prev[k] = if j == 0 { 0 } else { -go - (j as Score) * ge };
        }

        // `i` drives the band geometry, both sequences, and `bt` at once; an
        // iterator over any single one of them would obscure that.
        #[allow(clippy::needless_range_loop)]
        for i in 1..=m {
            h_cur.fill(NEG_INF);
            i_cur.fill(NEG_INF);
            let ai = a.get(i - 1);
            let mut d: Score = NEG_INF;
            for j in geom.j_range(i, n) {
                let k = geom.index(i, j).expect("j_range within band");
                if j == 0 {
                    // Column 0 boundary: H[i][0] = I[i][0] = -(go + i*ge).
                    h_cur[k] = -go - (i as Score) * ge;
                    i_cur[k] = h_cur[k];
                    d = NEG_INF;
                    continue;
                }
                // Left neighbour (i, j-1): index k-1 when inside the band.
                let h_left = if k > 0 { h_cur[k - 1] } else { NEG_INF };
                let d_extend = d != NEG_INF && d - ge >= h_left - go - ge;
                d = (if d == NEG_INF { NEG_INF } else { d - ge }).max(h_left - go - ge);
                // Up neighbour (i-1, j): index k+1 in the previous row.
                let (h_up, i_up) = if k + 1 < width {
                    (h_prev[k + 1], i_prev[k + 1])
                } else {
                    (NEG_INF, NEG_INF)
                };
                let i_extend = i_up != NEG_INF && i_up - ge >= h_up - go - ge;
                let ins = (if i_up == NEG_INF { NEG_INF } else { i_up - ge }).max(h_up - go - ge);
                i_cur[k] = ins;
                // Diagonal neighbour (i-1, j-1): same index in previous row.
                let sub = self.scheme.substitution(ai, b.get(j - 1));
                let diag = h_prev[k].saturating_add(sub).max(NEG_INF);
                let best = diag.max(d).max(ins);
                h_cur[k] = best;
                if want_bt {
                    let origin = if best == diag && h_prev[k] > NEG_INF {
                        if sub > 0 {
                            Origin::DiagMatch
                        } else {
                            Origin::DiagMismatch
                        }
                    } else if best == ins {
                        Origin::Ins
                    } else {
                        Origin::Del
                    };
                    bt[i].set(k, BtCell::new(origin, i_extend, d_extend));
                }
            }
            std::mem::swap(&mut h_prev, &mut h_cur);
            std::mem::swap(&mut i_prev, &mut i_cur);
        }

        let k_final = geom.index(m, n).ok_or(AlignError::OutOfBand {
            band: self.band,
            m,
            n,
        })?;
        let score = h_prev[k_final];
        // Reachable scores are bounded by score_bound << |NEG_INF|/2; anything
        // this low is sentinel arithmetic, not a real path.
        if score < NEG_INF / 2 {
            return Err(AlignError::OutOfBand {
                band: self.band,
                m,
                n,
            });
        }
        Ok((score, want_bt.then_some(bt)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::FullAligner;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    #[test]
    fn geometry_covers_endpoints_when_band_spans_length_difference() {
        for (m, n, w) in [
            (10, 10, 4),
            (10, 12, 4),
            (20, 10, 24),
            (0, 1, 2),
            (100, 97, 8),
        ] {
            let g = BandGeometry::new(m, n, w);
            assert!(g.contains(0, 0), "({m},{n},{w}) start");
            assert!(g.reaches_end(m, n), "({m},{n},{w}) end");
        }
    }

    #[test]
    fn geometry_misses_endpoint_when_length_difference_exceeds_half_band() {
        for (m, n, w) in [(10, 20, 4), (0, 5, 2), (100, 90, 16)] {
            let g = BandGeometry::new(m, n, w);
            assert!(g.contains(0, 0));
            assert!(!g.reaches_end(m, n), "({m},{n},{w}) should not reach");
        }
    }

    #[test]
    fn geometry_width_is_fixed() {
        assert_eq!(BandGeometry::new(10, 10, 8).width(), 9); // [-4, 4]
        assert_eq!(BandGeometry::new(10, 15, 8).width(), 9); // independent of lengths
    }

    #[test]
    fn geometry_index_matches_contains() {
        let g = BandGeometry::new(50, 55, 16);
        for i in 0..=50usize {
            for j in 0..=55usize {
                assert_eq!(g.contains(i, j), g.index(i, j).is_some());
            }
        }
    }

    #[test]
    fn geometry_cells_close_to_eq6() {
        // The paper's workload estimate (m+n)*w should be within 2x of the
        // real banded cell count for same-length sequences.
        let (m, n, w) = (1000usize, 1000usize, 128usize);
        let cells = BandGeometry::new(m, n, w).cells(m, n);
        let est = ((m + n) * w) as u64;
        assert!(
            cells < est,
            "band computes fewer cells than the 2w estimate"
        );
        assert!(cells * 2 > est / 2);
    }

    #[test]
    fn wide_band_equals_full_dp() {
        let pairs = [
            ("GATTACAGATTACA", "GATTACAGATTACA"),
            ("ACGTACGTACGT", "ACGTTACGTAGT"),
            ("AAAAAAAAAA", "AAAATTAAAAAA"),
            ("GATTACA", "GCTACAT"),
        ];
        let scheme = ScoringScheme::default();
        let full = FullAligner::affine(scheme);
        for (x, y) in pairs {
            let (a, b) = (seq(x), seq(y));
            let banded = BandedAligner::new(scheme, 2 * (a.len() + b.len()).max(2));
            let aln = banded.align(&a, &b).unwrap();
            assert_eq!(aln.score, full.score(&a, &b), "{x} vs {y}");
            aln.cigar.validate(&a, &b).unwrap();
            assert_eq!(aln.cigar.score(&scheme), aln.score);
        }
    }

    #[test]
    fn narrow_band_may_be_suboptimal_but_valid() {
        // Equal lengths, but the optimal path bulges away from the diagonal:
        // an insertion early in A is compensated by a deletion late in A.
        // Band 4 misses that path but must still return a self-consistent
        // (suboptimal) alignment because the end cell stays in the band.
        let core = "ACGTGGTCATCGAT";
        let a_text = format!("{}TTTTTTTTTT{}", core.repeat(2), core.repeat(2));
        let b_text = format!("{}{}TTTTTTTTTT", core.repeat(2), core.repeat(2));
        let (a, b) = (seq(&a_text), seq(&b_text));
        assert_eq!(a.len(), b.len());
        let scheme = ScoringScheme::default();
        let banded = BandedAligner::new(scheme, 4);
        let full = FullAligner::affine(scheme);
        let aln = banded.align(&a, &b).unwrap();
        aln.cigar.validate(&a, &b).unwrap();
        assert!(
            aln.score < full.score(&a, &b),
            "band 4 must be suboptimal here"
        );
    }

    #[test]
    fn score_equals_align_score() {
        let a = seq("ACGTACGGGGTACGTACGT");
        let b = seq("ACGTACGTACGTAGGT");
        let banded = BandedAligner::new(ScoringScheme::default(), 8);
        assert_eq!(
            banded.score(&a, &b).unwrap(),
            banded.align(&a, &b).unwrap().score
        );
    }

    #[test]
    fn empty_sequences() {
        let banded = BandedAligner::new(ScoringScheme::default(), 8);
        let aln = banded.align(&DnaSeq::new(), &DnaSeq::new()).unwrap();
        assert_eq!(aln.score, 0);
        let aln = banded.align(&seq("ACG"), &DnaSeq::new()).unwrap();
        assert_eq!(aln.cigar.to_string(), "3I");
        let aln = banded.align(&DnaSeq::new(), &seq("ACG")).unwrap();
        assert_eq!(aln.cigar.to_string(), "3D");
    }

    #[test]
    fn length_difference_beyond_half_band_is_out_of_band() {
        let a = seq("ACGT");
        let b = seq("ACGTACGTACGTACGTACGTACGTACGT");
        let banded = BandedAligner::new(ScoringScheme::default(), 4);
        let err = banded.align(&a, &b).unwrap_err();
        assert_eq!(
            err,
            AlignError::OutOfBand {
                band: 4,
                m: 4,
                n: 28
            }
        );
        // A band wide enough for the difference succeeds.
        let banded = BandedAligner::new(ScoringScheme::default(), 64);
        banded
            .align(&a, &b)
            .unwrap()
            .cigar
            .validate(&a, &b)
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "band width must be at least 2")]
    fn tiny_band_rejected() {
        BandedAligner::new(ScoringScheme::default(), 1);
    }
}
