//! A tiny deterministic RNG (SplitMix64) used for the ambiguous-base (`N`)
//! substitution policy.
//!
//! `nw-core` deliberately has no external dependencies; the only randomness it
//! needs is the paper's §4.1.1 policy of replacing `N` by a random nucleotide
//! (as metaFlye does), which must be reproducible from a seed. Dataset
//! generation uses the real `rand` crate in the `datasets` crate.

/// SplitMix64: tiny, fast, passes BigCrush, and perfectly adequate for
/// choosing substitution nucleotides deterministically.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    /// Uses the widening-multiply trick; the modulo bias is negligible for
    /// the tiny bounds (4) used here but we debias anyway for correctness.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Lemire's nearly-divisionless method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 4, 5, 17, 255] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 nucleotides should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn below_zero_bound_panics() {
        SplitMix64::new(0).below(0);
    }
}
