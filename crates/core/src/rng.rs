//! A tiny deterministic RNG (SplitMix64) shared by the whole workspace.
//!
//! `nw-core` deliberately has no external dependencies; this generator covers
//! the paper's §4.1.1 policy of replacing `N` by a random nucleotide (as
//! metaFlye does) *and* the dataset generators in the `datasets` crate, which
//! must all be reproducible from a seed. Keeping randomness in-tree also
//! keeps the workspace building with an empty cargo registry (offline CI).

/// SplitMix64: tiny, fast, passes BigCrush, and perfectly adequate for
/// choosing substitution nucleotides deterministically.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    /// Uses the widening-multiply trick; the modulo bias is negligible for
    /// the tiny bounds (4) used here but we debias anyway for correctness.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Lemire's nearly-divisionless method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` (inclusive on both ends).
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "between: lo {lo} > hi {hi}");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 4, 5, 17, 255] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 nucleotides should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn below_zero_bound_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn between_is_inclusive() {
        let mut rng = SplitMix64::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..500 {
            let v = rng.between(10, 13);
            assert!((10..=13).contains(&v));
            saw_lo |= v == 10;
            saw_hi |= v == 13;
        }
        assert!(saw_lo && saw_hi);
        assert_eq!(rng.between(7, 7), 7);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(11);
        let mut sum = 0.0;
        for _ in 0..2000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 2000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn chance_tracks_probability() {
        let mut rng = SplitMix64::new(17);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..4000).filter(|_| rng.chance(0.25)).count();
        assert!((800..1200).contains(&hits), "hits {hits}");
    }
}
