#![warn(missing_docs)]

//! # nw-core — Needleman–Wunsch alignment algorithms
//!
//! Core dynamic-programming algorithms from the paper *"Parallelization of the
//! Banded Needleman & Wunsch Algorithm on UPMEM PiM Architecture for Long DNA
//! Sequence Alignment"* (Mognol, Lavenier, Legriel — ICPP 2024), §3:
//!
//! * [`full`] — the classic O(m·n) Needleman–Wunsch recursion (eq. 1–2) and
//!   the affine-gap Gotoh variant (eq. 3–5). These are the exact references
//!   used as accuracy ground truth.
//! * [`banded`] — the static banded DP algorithm (§3.3): only a band of width
//!   `w` around the diagonal is evaluated, giving O(w·(m+n)) complexity.
//! * [`adaptive`] — the adaptive banded DP algorithm (§3.4, Suzuki–Kasahara
//!   style): an anti-diagonal window of width `w` that shifts right or down
//!   based on the scores at its extremities.
//! * [`seq`] — DNA alphabet, 2-bit packing (§4.1.1) and the ambiguous-base
//!   (`N`) substitution policy.
//! * [`traceback`] / [`cigar`] — the 4-bit `BT` encoding (§4.2.2) and CIGAR
//!   production/validation.
//! * [`jobkey`] — the canonical content hash of one alignment job
//!   (sequences + scoring + band + mode): the result-cache identity shared
//!   by every backend.
//! * [`accuracy`] — the paper's accuracy metric: fraction of pairs whose
//!   banded score equals the full-DP optimum (§5.1).
//! * [`pretty`] — Figure-1 style rendering of an alignment.
//!
//! All aligners share a single [`scoring::ScoringScheme`] and the maximizing
//! convention of the paper: matches add a positive score, mismatches and gaps
//! subtract.
//!
//! ```
//! use nw_core::{seq::DnaSeq, scoring::ScoringScheme, adaptive::AdaptiveAligner};
//!
//! let a = DnaSeq::from_ascii(b"ACGTACGTTT").unwrap();
//! let b = DnaSeq::from_ascii(b"ACGAACGTTT").unwrap();
//! let aligner = AdaptiveAligner::new(ScoringScheme::default(), 16);
//! let aln = aligner.align(&a, &b).unwrap();
//! assert_eq!(aln.cigar.to_string(), "3=1X6=");
//! ```

pub mod accuracy;
pub mod adaptive;
pub mod banded;
pub mod cigar;
pub mod error;
pub mod full;
pub mod jobkey;
pub mod pretty;
pub mod rng;
pub mod scoring;
pub mod seq;
pub mod traceback;
pub mod wfa;

pub use adaptive::AdaptiveAligner;
pub use banded::BandedAligner;
pub use cigar::{Cigar, CigarOp};
pub use error::AlignError;
pub use full::{FullAligner, GapModel};
pub use jobkey::{job_key, job_key_seqs, JobKey};
pub use scoring::ScoringScheme;
pub use seq::{Base, DnaSeq, PackedSeq};

/// Score type used throughout. The paper stores band values compactly on the
/// DPU; on the host side `i32` is roomy enough for reads of millions of bp.
pub type Score = i32;

/// Sentinel for "outside the band / invalid" cells. Kept far from `i32::MIN`
/// so that subtracting gap penalties cannot underflow.
pub const NEG_INF: Score = i32::MIN / 4;

/// The result of a global alignment: optimal (or band-constrained) score plus
/// the CIGAR describing the path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Alignment score under the scoring scheme used by the aligner.
    pub score: Score,
    /// Edit transcript from sequence `A` (query) to sequence `B` (reference).
    pub cigar: Cigar,
}

impl Alignment {
    /// Number of matched bases in the alignment.
    pub fn matches(&self) -> usize {
        self.cigar.count_op(CigarOp::Match)
    }

    /// Fraction of alignment columns that are matches (BLAST-style identity).
    pub fn identity(&self) -> f64 {
        let cols = self.cigar.alignment_columns();
        if cols == 0 {
            return 1.0;
        }
        self.matches() as f64 / cols as f64
    }
}
