//! Adaptive banded DP (§3.4) — the algorithm the paper runs on the DPUs.
//!
//! Instead of a fixed band of diagonals, a window of `w` cells slides along
//! anti-diagonals (Suzuki–Kasahara [24]). After each anti-diagonal the window
//! moves **right** (same rows, next column) or **down** (next row) depending
//! on the scores inside it, following the most promising path. The band can
//! therefore track large gaps that a static band of the same width would
//! miss — Table 1 shows adaptive@128 matching static@512.
//!
//! The memory layout mirrors §4.2.1: only four `w`-sized arrays are live at
//! any time (two previous anti-diagonals of `H`, one of `I`, one of `D`),
//! which is what lets the real kernel keep them in the DPU's 64 KB WRAM.
//! Traceback information is a 4-bit cell per window position per
//! anti-diagonal — the `(m+n) × w` `BT` structure of §4.2.2.
//!
//! The low-level [`Engine`] advances one anti-diagonal per [`Engine::step`];
//! the host-side [`AdaptiveAligner`] and the simulated DPU kernel
//! (`dpu-kernel` crate) both drive the same engine, so their scores and
//! CIGARs agree bit-for-bit — the kernel merely adds cycle accounting and
//! real WRAM/MRAM movement around it.

use crate::error::AlignError;
use crate::scoring::ScoringScheme;
use crate::seq::{DnaSeq, SeqView};
use crate::traceback::{walk, BtCell, BtRow, Origin};
use crate::{Alignment, Score, NEG_INF};

/// Which way the window moved between two consecutive anti-diagonals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shift {
    /// Window keeps its row origin; columns advance.
    Right,
    /// Window's row origin advances by one.
    Down,
}

/// The trajectory of the adaptive window — used by the Figure-3 visualizer
/// and by tests asserting the band never strands the end cell.
#[derive(Debug, Clone, Default)]
pub struct BandTrace {
    /// `origins[t]` is the `i` coordinate of window cell 0 at anti-diagonal
    /// `t` (may be negative near the start).
    pub origins: Vec<i64>,
    /// Shift decisions; `shifts[t]` moved the window from `t` to `t+1`.
    pub shifts: Vec<Shift>,
}

impl BandTrace {
    /// Number of Down shifts (equals `origins.last() - origins[0]`).
    pub fn downs(&self) -> usize {
        self.shifts.iter().filter(|s| **s == Shift::Down).count()
    }
}

/// Outcome of an adaptive alignment when the caller also wants the trace and
/// cell-count statistics (used by the benchmark harness).
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// The alignment (score + CIGAR).
    pub alignment: Alignment,
    /// Window trajectory.
    pub trace: BandTrace,
    /// DP cells evaluated (valid in-matrix window cells).
    pub cells: u64,
}

/// What one engine step produced — everything a caller needs for cost
/// accounting and `BT` persistence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// The anti-diagonal that was just computed (1-based; step `t` computes
    /// cells with `i + j == t`).
    pub t: usize,
    /// The shift that produced this window from the previous one.
    pub shift: Shift,
    /// Window origin: matrix row of window cell 0.
    pub origin: i64,
    /// Number of in-matrix cells evaluated on this anti-diagonal.
    pub valid_cells: u32,
}

/// The adaptive banded DP engine: one alignment, advanced one anti-diagonal
/// at a time.
#[derive(Debug, Clone)]
pub struct Engine {
    scheme: ScoringScheme,
    w: usize,
    m: usize,
    n: usize,
    want_bt: bool,
    t: usize,
    origins: Vec<i64>,
    shifts: Vec<Shift>,
    cells: u64,
    bt_row: BtRow,
    // Rolling anti-diagonal state (§4.2.1): H two deep, I and D one deep.
    h_prev: Vec<Score>,
    h_prev2: Vec<Score>,
    i_prev: Vec<Score>,
    d_prev: Vec<Score>,
    h_cur: Vec<Score>,
    i_cur: Vec<Score>,
    d_cur: Vec<Score>,
    o_prev: i64,
    o_prev2: i64,
}

impl Engine {
    /// Start an alignment of sequences of length `m` and `n` with window
    /// width `w`. When `want_bt` is false no `BT` rows are produced (the
    /// score-only 16S mode, §5.3).
    pub fn new(scheme: ScoringScheme, w: usize, m: usize, n: usize, want_bt: bool) -> Self {
        assert!(w >= 2, "adaptive window must be at least 2 wide");
        // Anti-diagonal 0: window centred on (0, 0) — Figure 3 (B).
        //
        // Arrays carry one sentinel cell on the left and two on the right
        // (always NEG_INF): window cell k lives at index k + 1, and the
        // shifted neighbour reads of `step` can then index unconditionally.
        let o0 = -((w / 2) as i64);
        let mut h_prev = vec![NEG_INF; w + 3];
        h_prev[(0 - o0) as usize + 1] = 0;
        let mut origins = Vec::with_capacity(m + n + 1);
        origins.push(o0);
        Self {
            scheme,
            w,
            m,
            n,
            want_bt,
            t: 0,
            origins,
            shifts: Vec::with_capacity(m + n),
            cells: 1,
            bt_row: BtRow::new(w),
            h_prev,
            h_prev2: vec![NEG_INF; w + 3],
            i_prev: vec![NEG_INF; w + 3],
            d_prev: vec![NEG_INF; w + 3],
            h_cur: vec![NEG_INF; w + 3],
            i_cur: vec![NEG_INF; w + 3],
            d_cur: vec![NEG_INF; w + 3],
            o_prev: o0,
            o_prev2: o0,
        }
    }

    /// True once all `m + n` anti-diagonals have been computed.
    pub fn is_done(&self) -> bool {
        self.t == self.m + self.n
    }

    /// Window width.
    pub fn band(&self) -> usize {
        self.w
    }

    /// Anti-diagonal index of the *next* step (0 after construction).
    pub fn t(&self) -> usize {
        self.t
    }

    /// Window origins seen so far (`origins[t]`).
    pub fn origins(&self) -> &[i64] {
        &self.origins
    }

    /// In-matrix cells evaluated so far.
    pub fn cells(&self) -> u64 {
        self.cells
    }

    /// The `BT` row of the most recent step (all-zero when `want_bt` is
    /// false). Valid until the next call to [`Engine::step`].
    pub fn bt_row(&self) -> &BtRow {
        &self.bt_row
    }

    /// Consume the trace (after the run, for [`AdaptiveOutcome`]).
    pub fn into_trace(self) -> BandTrace {
        BandTrace {
            origins: self.origins,
            shifts: self.shifts,
        }
    }

    /// Advance one anti-diagonal. `a` and `b` are the sequences (any
    /// [`SeqView`]); panics if called when [`Engine::is_done`].
    pub fn step<A: SeqView + ?Sized, B: SeqView + ?Sized>(&mut self, a: &A, b: &B) -> StepOutcome {
        assert!(!self.is_done(), "engine already finished");
        debug_assert_eq!(a.len(), self.m);
        debug_assert_eq!(b.len(), self.n);
        let t = self.t + 1;
        let (m, n, w) = (self.m, self.n, self.w);
        let o_old = self.o_prev;
        let shift = self.decide_shift(o_old, t);
        let o_new = match shift {
            Shift::Right => o_old,
            Shift::Down => o_old + 1,
        };
        self.shifts.push(shift);
        self.origins.push(o_new);

        self.h_cur.fill(NEG_INF);
        self.i_cur.fill(NEG_INF);
        self.d_cur.fill(NEG_INF);
        if self.want_bt {
            self.bt_row.clear();
        }

        // Valid window cells: i in [0, m], j = t - i in [0, n].
        let k_lo = 0i64.max(-o_new).max(t as i64 - n as i64 - o_new);
        let k_hi = (w as i64 - 1).min(m as i64 - o_new).min(t as i64 - o_new);
        let valid = (k_hi - k_lo + 1).max(0) as u32;
        let (go, ge) = (self.scheme.gap_open, self.scheme.gap_extend);

        // Boundary cells (at most one of each per anti-diagonal).
        let mut int_lo = k_lo;
        let mut int_hi = k_hi;
        if k_lo <= k_hi && o_new + k_lo == 0 {
            // i == 0: H[0][j] = D[0][j] = -(go + j*ge); I = -inf (t >= 1).
            let v = -go - (t as Score) * ge;
            let pk = (k_lo + 1) as usize;
            self.h_cur[pk] = v;
            self.d_cur[pk] = v;
            int_lo += 1;
        }
        if k_lo <= k_hi && t as i64 - (o_new + k_hi) == 0 {
            // j == 0: H[i][0] = I[i][0] = -(go + i*ge).
            let v = -go - (t as Score) * ge;
            let pk = (k_hi + 1) as usize;
            self.h_cur[pk] = v;
            self.i_cur[pk] = v;
            int_hi -= 1;
        }

        // Interior sweep: neighbour indices are constant shifts thanks to
        // the sentinel padding (window cell k is at padded index k + 1).
        let s1 = (o_new - self.o_prev) as usize; // 0 = Right, 1 = Down
        let s2 = (o_new - self.o_prev2) as usize; // 0..=2
        let goge = go + ge;
        for k in int_lo..=int_hi {
            let pk = (k + 1) as usize;
            let i = (o_new + k) as usize;
            let j = t - i;
            // left (i, j-1) at t-1; up (i-1, j) at t-1; diag (i-1, j-1) at t-2.
            let left_h = self.h_prev[pk + s1];
            let left_d = self.d_prev[pk + s1];
            let up_h = self.h_prev[pk + s1 - 1];
            let up_i = self.i_prev[pk + s1 - 1];
            let diag_h = self.h_prev2[pk + s2 - 1];

            let d_extend = left_d - ge >= left_h - goge;
            let d_val = (left_d - ge).max(left_h - goge);
            let i_extend = up_i - ge >= up_h - goge;
            let i_val = (up_i - ge).max(up_h - goge);
            let sub = self.scheme.substitution(a.base(i - 1), b.base(j - 1));
            let diag = diag_h + sub;
            let best = diag.max(d_val).max(i_val);
            self.h_cur[pk] = best;
            self.d_cur[pk] = d_val;
            self.i_cur[pk] = i_val;
            if self.want_bt {
                let origin = if best == diag && diag_h > NEG_INF / 2 {
                    if sub > 0 {
                        Origin::DiagMatch
                    } else {
                        Origin::DiagMismatch
                    }
                } else if best == i_val {
                    Origin::Ins
                } else {
                    Origin::Del
                };
                self.bt_row
                    .set(k as usize, BtCell::new(origin, i_extend, d_extend));
            }
        }
        self.cells += u64::from(valid);

        std::mem::swap(&mut self.h_prev2, &mut self.h_prev);
        std::mem::swap(&mut self.h_prev, &mut self.h_cur);
        std::mem::swap(&mut self.i_prev, &mut self.i_cur);
        std::mem::swap(&mut self.d_prev, &mut self.d_cur);
        self.o_prev2 = self.o_prev;
        self.o_prev = o_new;
        self.t = t;

        StepOutcome {
            t,
            shift,
            origin: o_new,
            valid_cells: valid,
        }
    }

    /// The band-constrained score, available once [`Engine::is_done`].
    pub fn final_score(&self) -> Result<Score, AlignError> {
        assert!(self.is_done(), "engine still running");
        let (m, n, w) = (self.m, self.n, self.w);
        let o_final = self.o_prev;
        let k_final = m as i64 - o_final;
        if k_final < 0 || k_final >= w as i64 {
            return Err(AlignError::OutOfBand { band: w, m, n });
        }
        let score = self.h_prev[k_final as usize + 1];
        if score < NEG_INF / 2 {
            return Err(AlignError::OutOfBand { band: w, m, n });
        }
        Ok(score)
    }

    /// Choose the shift that produces anti-diagonal `t` from `t-1`.
    ///
    /// Hard guards come first so the window can always still reach `(m, n)`;
    /// otherwise the window steers so the best cell of the previous
    /// anti-diagonal stays centred. The two-extremity comparison of [24] is
    /// a special case of this ("which side of the window looks better");
    /// tracking the argmax is equally cheap per anti-diagonal and markedly
    /// more robust on the long (>100 bp) gaps the PacBio dataset contains.
    fn decide_shift(&self, o_old: i64, t: usize) -> Shift {
        let (m, n) = (self.m, self.n);
        let w = self.w as i64;
        // Guard 1: never push the origin past row m — (m, n) must keep index
        // >= 0 in the final window.
        if o_old + 1 > m as i64 {
            return Shift::Right;
        }
        // Guard 2: enough Down shifts must remain to lift the origin to
        // m - w + 1 by anti-diagonal m+n.
        let remaining_after = (m + n) as i64 - t as i64; // shifts left after this one
        if o_old + remaining_after < m as i64 - w + 1 {
            return Shift::Down;
        }
        // Guard 3: if the window's top would sit above the matrix (j > n),
        // shifting right is wasted; move down.
        if t as i64 - o_old > n as i64 {
            return Shift::Down;
        }
        // Guard 4: if the window's bottom already hangs below the matrix
        // (i > m), moving down adds more dead cells; move right.
        if o_old + w > m as i64 {
            return Shift::Right;
        }
        // Heuristic: keep the argmax of H centred within the valid span.
        let t_prev = t - 1;
        let mut best: Option<(Score, usize)> = None;
        let mut k_lo: Option<usize> = None;
        let mut k_hi: Option<usize> = None;
        for k in 0..self.w {
            let i = self.o_prev + k as i64;
            let j = t_prev as i64 - i;
            if i < 0 || j < 0 || i > m as i64 || j > n as i64 {
                continue;
            }
            let v = self.h_prev[k + 1];
            if v < NEG_INF / 2 {
                continue;
            }
            if k_lo.is_none() {
                k_lo = Some(k);
            }
            k_hi = Some(k);
            // Strict '>' keeps the earliest (topmost) argmax: ties favour
            // Right, mirroring the extremity rule's tie behaviour.
            if best.is_none_or(|(bv, _)| v > bv) {
                best = Some((v, k));
            }
        }
        match (best, k_lo, k_hi) {
            (Some((_, k_best)), Some(lo), Some(hi)) => {
                if (k_best - lo) * 2 > (hi - lo) {
                    Shift::Down
                } else {
                    Shift::Right
                }
            }
            // No valid cells yet (start-up corner): drift toward the matrix.
            _ => {
                if self.o_prev < 0 {
                    Shift::Down
                } else {
                    Shift::Right
                }
            }
        }
    }
}

/// Adaptive banded affine-gap global aligner (host-side convenience wrapper
/// around [`Engine`]).
#[derive(Debug, Clone)]
pub struct AdaptiveAligner {
    scheme: ScoringScheme,
    band: usize,
}

impl AdaptiveAligner {
    /// Build an adaptive aligner with window width `band` (>= 2).
    pub fn new(scheme: ScoringScheme, band: usize) -> Self {
        assert!(band >= 2, "adaptive window must be at least 2 wide");
        Self { scheme, band }
    }

    /// The configured window width.
    pub fn band(&self) -> usize {
        self.band
    }

    /// The scoring scheme.
    pub fn scheme(&self) -> &ScoringScheme {
        &self.scheme
    }

    /// Score only — no `BT` storage at all. This is the 16S mode of §5.3.
    pub fn score(&self, a: &DnaSeq, b: &DnaSeq) -> Result<Score, AlignError> {
        let mut engine = Engine::new(self.scheme, self.band, a.len(), b.len(), false);
        while !engine.is_done() {
            engine.step(a, b);
        }
        engine.final_score()
    }

    /// Full alignment with CIGAR.
    pub fn align(&self, a: &DnaSeq, b: &DnaSeq) -> Result<Alignment, AlignError> {
        let outcome = self.align_traced(a, b)?;
        Ok(outcome.alignment)
    }

    /// Alignment plus the window trajectory and cell counts.
    pub fn align_traced(&self, a: &DnaSeq, b: &DnaSeq) -> Result<AdaptiveOutcome, AlignError> {
        let (m, n) = (a.len(), b.len());
        let w = self.band;
        let mut engine = Engine::new(self.scheme, w, m, n, true);
        let mut bt: Vec<BtRow> = Vec::with_capacity(m + n + 1);
        bt.push(BtRow::new(w)); // row 0, never read
        while !engine.is_done() {
            engine.step(a, b);
            bt.push(engine.bt_row().clone());
        }
        let score = engine.final_score()?;
        let cells = engine.cells();
        let trace = engine.into_trace();
        let origins = trace.origins.clone();
        let cigar = walk(m, n, w, |i, j| {
            let t = i + j;
            let k = i as i64 - origins[t];
            if k < 0 || k >= w as i64 {
                None
            } else {
                Some(bt[t].get(k as usize))
            }
        })?;
        Ok(AdaptiveOutcome {
            alignment: Alignment { score, cigar },
            trace,
            cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::FullAligner;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    fn adaptive(w: usize) -> AdaptiveAligner {
        AdaptiveAligner::new(ScoringScheme::default(), w)
    }

    #[test]
    fn identical_sequences() {
        let s = seq("ACGTACGTACGTACGTACGT");
        let aln = adaptive(8).align(&s, &s).unwrap();
        assert_eq!(aln.cigar.to_string(), "20=");
        assert_eq!(aln.score, ScoringScheme::default().perfect(20));
    }

    #[test]
    fn single_mismatch_and_quickstart_doc() {
        let a = seq("ACGTACGTTT");
        let b = seq("ACGAACGTTT");
        let aln = adaptive(16).align(&a, &b).unwrap();
        assert_eq!(aln.cigar.to_string(), "3=1X6=");
    }

    #[test]
    fn matches_full_dp_on_small_inputs() {
        let pairs = [
            ("GATTACA", "GCTACAT"),
            ("ACGTACGTACGT", "ACGTTACGTAGT"),
            ("TTTTTTTT", "TTTT"),
            ("ACACACACAC", "CACACACACA"),
            ("AAAACGTTTT", "AAAATTTT"),
        ];
        let scheme = ScoringScheme::default();
        let full = FullAligner::affine(scheme);
        for (x, y) in pairs {
            let (a, b) = (seq(x), seq(y));
            let w = 2 * (a.len() + b.len()) + 2;
            let aln = AdaptiveAligner::new(scheme, w).align(&a, &b).unwrap();
            assert_eq!(aln.score, full.score(&a, &b), "{x} vs {y}");
            aln.cigar.validate(&a, &b).unwrap();
            assert_eq!(aln.cigar.score(&scheme), aln.score, "{x} vs {y}");
        }
    }

    #[test]
    fn tracks_a_large_gap_where_static_fails() {
        // 40-base gap, window 48: the adaptive window follows the gap while a
        // static band of 16 diagonals cannot even reach the end corner.
        let mut a_text = String::new();
        let mut b_text = String::new();
        let unit = "ACGTGGTCAT";
        for _ in 0..6 {
            a_text.push_str(unit);
            b_text.push_str(unit);
        }
        b_text.insert_str(30, &"T".repeat(40));
        let (a, b) = (seq(&a_text), seq(&b_text));
        let scheme = ScoringScheme::default();
        let optimal = FullAligner::affine(scheme).score(&a, &b);

        let adaptive_score = AdaptiveAligner::new(scheme, 48)
            .align(&a, &b)
            .unwrap()
            .score;
        assert_eq!(adaptive_score, optimal, "adaptive w=48 finds the gap");

        // Static w=16 cannot even reach (m, n): |n - m| = 40 > 8.
        let static_err = crate::banded::BandedAligner::new(scheme, 16)
            .align(&a, &b)
            .unwrap_err();
        assert!(matches!(static_err, crate::AlignError::OutOfBand { .. }));
    }

    #[test]
    fn empty_inputs() {
        let aln = adaptive(4).align(&DnaSeq::new(), &DnaSeq::new()).unwrap();
        assert_eq!(aln.score, 0);
        assert_eq!(aln.cigar.to_string(), "");
        let aln = adaptive(4).align(&seq("ACGT"), &DnaSeq::new()).unwrap();
        assert_eq!(aln.cigar.to_string(), "4I");
        let aln = adaptive(4).align(&DnaSeq::new(), &seq("ACGT")).unwrap();
        assert_eq!(aln.cigar.to_string(), "4D");
    }

    #[test]
    fn window_reaches_the_corner() {
        // Strongly unequal lengths force many Down/Right guards.
        let a = seq(&"ACGT".repeat(20)); // 80
        let b = seq(&"ACGT".repeat(5)); // 20
        let out = adaptive(16).align_traced(&a, &b).unwrap();
        let last = *out.trace.origins.last().unwrap();
        let k = a.len() as i64 - last;
        assert!((0..16).contains(&k), "final window must contain (m, n)");
        out.alignment.cigar.validate(&a, &b).unwrap();
    }

    #[test]
    fn trace_shift_counts_are_consistent() {
        let a = seq(&"GATTACA".repeat(10));
        let b = seq(&"GATTACA".repeat(10));
        let out = adaptive(8).align_traced(&a, &b).unwrap();
        assert_eq!(out.trace.origins.len(), a.len() + b.len() + 1);
        assert_eq!(out.trace.shifts.len(), a.len() + b.len());
        let downs = out.trace.downs() as i64;
        assert_eq!(
            out.trace.origins.last().unwrap() - out.trace.origins[0],
            downs
        );
    }

    #[test]
    fn cells_scale_linearly_not_quadratically() {
        let scheme = ScoringScheme::default();
        let a1 = seq(&"ACGTACGT".repeat(16)); // 128
        let a2 = seq(&"ACGTACGT".repeat(32)); // 256
        let w = 16;
        let c1 = AdaptiveAligner::new(scheme, w)
            .align_traced(&a1, &a1)
            .unwrap()
            .cells;
        let c2 = AdaptiveAligner::new(scheme, w)
            .align_traced(&a2, &a2)
            .unwrap()
            .cells;
        // Doubling length should roughly double (not quadruple) the cells.
        assert!(c2 < c1 * 3, "c1={c1} c2={c2}");
        assert!(c2 > c1 * 3 / 2, "c1={c1} c2={c2}");
    }

    #[test]
    fn score_only_agrees_with_align() {
        let a = seq(&"ACGTTGCA".repeat(12));
        let b = seq(&"ACGTTGCA".repeat(11));
        let al = adaptive(32);
        assert_eq!(al.score(&a, &b).unwrap(), al.align(&a, &b).unwrap().score);
    }

    #[test]
    fn adaptive_beats_static_at_equal_width_with_gaps() {
        // Sanity behind Table 1: with a mid-sequence 24-gap and w=32 the
        // adaptive band finds the optimum while the static band cannot reach
        // the corner (|n-m| = 24 > 16).
        let core = "ACGTGGTCATCGATTACAGGCT";
        let a = seq(&core.repeat(8));
        let mut b_text = core.repeat(8);
        b_text.insert_str(88, &"G".repeat(24));
        let b = seq(&b_text);
        let scheme = ScoringScheme::default();
        let optimal = FullAligner::affine(scheme).score(&a, &b);
        let ad = AdaptiveAligner::new(scheme, 32)
            .align(&a, &b)
            .unwrap()
            .score;
        assert_eq!(ad, optimal, "adaptive w=32 tracks the 24-gap");
        assert!(crate::banded::BandedAligner::new(scheme, 32)
            .align(&a, &b)
            .is_err());
    }

    #[test]
    fn engine_steps_match_wrapper() {
        // Driving the engine manually (as the DPU kernel does) must agree
        // with the one-shot wrapper.
        let a = seq(&"ACGGTTAC".repeat(8));
        let b = seq(&"ACGTTTAC".repeat(8));
        let scheme = ScoringScheme::default();
        let mut engine = Engine::new(scheme, 16, a.len(), b.len(), false);
        let mut steps = 0;
        while !engine.is_done() {
            let out = engine.step(&a, &b);
            assert!(out.valid_cells > 0);
            assert_eq!(out.t, steps + 1);
            steps += 1;
        }
        assert_eq!(steps, a.len() + b.len());
        let wrapper = AdaptiveAligner::new(scheme, 16).score(&a, &b).unwrap();
        assert_eq!(engine.final_score().unwrap(), wrapper);
    }

    #[test]
    fn engine_works_on_packed_views() {
        // The DPU kernel aligns packed/unpacked mixes; results must agree.
        let a = seq(&"GATTACAT".repeat(6));
        let b = seq(&"GATTCCAT".repeat(6));
        let (pa, pb) = (a.pack(), b.pack());
        let scheme = ScoringScheme::default();
        let mut e1 = Engine::new(scheme, 16, a.len(), b.len(), false);
        let mut e2 = Engine::new(scheme, 16, a.len(), b.len(), false);
        while !e1.is_done() {
            e1.step(&a, &b);
            e2.step(&pa, &pb);
        }
        assert_eq!(e1.final_score().unwrap(), e2.final_score().unwrap());
    }

    #[test]
    #[should_panic(expected = "engine already finished")]
    fn stepping_past_the_end_panics() {
        let mut e = Engine::new(ScoringScheme::default(), 4, 0, 0, false);
        assert!(e.is_done());
        let a = DnaSeq::new();
        e.step(&a, &a);
    }

    #[test]
    #[should_panic(expected = "at least 2 wide")]
    fn tiny_window_rejected() {
        AdaptiveAligner::new(ScoringScheme::default(), 1);
    }
}
