//! The 4-bit traceback (`BT`) encoding of §4.2.2 and the walker that turns a
//! `BT` structure into a CIGAR.
//!
//! Each cell stores which neighbour contributed the maximum to `H[i][j]`:
//! 2 bits of *origin* (`H` with match, `H` with mismatch, `I`, or `D`) plus
//! 2 bits recording, for each gap matrix, whether its value at this cell was
//! obtained by *extending* an existing gap or *opening* a new one. Exactly
//! the encoding the paper uses on the DPU, where `BT` rows are streamed to
//! MRAM during the score phase and re-read during traceback.

use crate::cigar::{Cigar, CigarOp};
use crate::error::AlignError;

/// The 2-bit origin field of a `BT` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Origin {
    /// `H[i-1][j-1] + match` won.
    DiagMatch = 0,
    /// `H[i-1][j-1] - mismatch` won.
    DiagMismatch = 1,
    /// `I[i][j]` (vertical gap, consumes `A`) won.
    Ins = 2,
    /// `D[i][j]` (horizontal gap, consumes `B`) won.
    Del = 3,
}

impl Origin {
    /// Decode from the low 2 bits.
    #[inline]
    pub fn from_bits(bits: u8) -> Origin {
        match bits & 0b11 {
            0 => Origin::DiagMatch,
            1 => Origin::DiagMismatch,
            2 => Origin::Ins,
            _ => Origin::Del,
        }
    }
}

/// A packed 4-bit traceback cell.
///
/// Layout: `bits 0-1` origin, `bit 2` "I extended an existing gap",
/// `bit 3` "D extended an existing gap".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BtCell(pub u8);

impl BtCell {
    /// Bit set when `I[i][j]` came from `I[i-1][j]` (gap extension).
    pub const I_EXTEND: u8 = 0b0100;
    /// Bit set when `D[i][j]` came from `D[i][j-1]` (gap extension).
    pub const D_EXTEND: u8 = 0b1000;

    /// Assemble a cell.
    #[inline]
    pub fn new(origin: Origin, i_extend: bool, d_extend: bool) -> BtCell {
        let mut bits = origin as u8;
        if i_extend {
            bits |= Self::I_EXTEND;
        }
        if d_extend {
            bits |= Self::D_EXTEND;
        }
        BtCell(bits)
    }

    /// The origin field.
    #[inline]
    pub fn origin(self) -> Origin {
        Origin::from_bits(self.0)
    }

    /// Was the `I` value at this cell a gap extension?
    #[inline]
    pub fn i_extend(self) -> bool {
        self.0 & Self::I_EXTEND != 0
    }

    /// Was the `D` value at this cell a gap extension?
    #[inline]
    pub fn d_extend(self) -> bool {
        self.0 & Self::D_EXTEND != 0
    }

    /// The raw nibble.
    #[inline]
    pub fn bits(self) -> u8 {
        self.0 & 0x0F
    }
}

/// A row of `BT` cells packed two per byte — the layout written to DPU MRAM.
#[derive(Debug, Clone, Default)]
pub struct BtRow {
    data: Vec<u8>,
    len: usize,
}

impl BtRow {
    /// A row of `len` zeroed cells.
    pub fn new(len: usize) -> Self {
        Self {
            data: vec![0; len.div_ceil(2)],
            len,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the row has no cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zero every cell (buffer reuse between anti-diagonals).
    pub fn clear(&mut self) {
        self.data.fill(0);
    }

    /// Write the cell at `idx`.
    #[inline]
    pub fn set(&mut self, idx: usize, cell: BtCell) {
        assert!(idx < self.len, "BT index {idx} out of range {}", self.len);
        let byte = &mut self.data[idx / 2];
        let shift = (idx % 2) * 4;
        *byte = (*byte & !(0x0F << shift)) | (cell.bits() << shift);
    }

    /// Read the cell at `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> BtCell {
        assert!(idx < self.len, "BT index {idx} out of range {}", self.len);
        BtCell((self.data[idx / 2] >> ((idx % 2) * 4)) & 0x0F)
    }

    /// Packed bytes (two cells per byte).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Rebuild from packed bytes.
    pub fn from_bytes(data: Vec<u8>, len: usize) -> Option<Self> {
        if data.len() < len.div_ceil(2) {
            return None;
        }
        Some(Self { data, len })
    }
}

/// Walk a `BT` structure from `(m, n)` back to `(0, 0)`, producing a CIGAR.
///
/// `lookup(i, j)` must return the `BT` cell for interior cells
/// (`1 <= i <= m`, `1 <= j <= n`) or `None` when `(i, j)` was outside the
/// band, which makes the walk fail with [`AlignError::OutOfBand`].
///
/// Border cells (`i == 0` or `j == 0`) are never looked up: the paper's
/// boundary conditions force pure gap runs there.
pub fn walk<F>(m: usize, n: usize, band: usize, lookup: F) -> Result<Cigar, AlignError>
where
    F: Fn(usize, usize) -> Option<BtCell>,
{
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Main,
        InIns,
        InDel,
    }

    let mut cigar = Cigar::new();
    let (mut i, mut j) = (m, n);
    let mut state = State::Main;
    // Upper bound on walk iterations: every iteration either moves one step
    // (at most m+n steps) or switches Main -> gap state (at most once per
    // step). Exceeding it means a cycle from a corrupt BT.
    let mut fuel = 2 * (m + n) + 4;

    while i > 0 || j > 0 {
        fuel = fuel
            .checked_sub(1)
            .ok_or(AlignError::OutOfBand { band, m, n })?;
        match state {
            State::Main => {
                if i == 0 {
                    cigar.push(CigarOp::Deletion);
                    j -= 1;
                } else if j == 0 {
                    cigar.push(CigarOp::Insertion);
                    i -= 1;
                } else {
                    let cell = lookup(i, j).ok_or(AlignError::OutOfBand { band, m, n })?;
                    match cell.origin() {
                        Origin::DiagMatch => {
                            cigar.push(CigarOp::Match);
                            i -= 1;
                            j -= 1;
                        }
                        Origin::DiagMismatch => {
                            cigar.push(CigarOp::Mismatch);
                            i -= 1;
                            j -= 1;
                        }
                        Origin::Ins => state = State::InIns,
                        Origin::Del => state = State::InDel,
                    }
                }
            }
            State::InIns => {
                // I[i][j]: vertical gap, consumes A[i].
                cigar.push(CigarOp::Insertion);
                let extend = if j == 0 {
                    true // border column is one long insertion run
                } else {
                    let cell = lookup(i, j).ok_or(AlignError::OutOfBand { band, m, n })?;
                    cell.i_extend()
                };
                i -= 1;
                if !extend {
                    state = State::Main;
                }
                if i == 0 {
                    state = State::Main;
                }
            }
            State::InDel => {
                cigar.push(CigarOp::Deletion);
                let extend = if i == 0 {
                    true
                } else {
                    let cell = lookup(i, j).ok_or(AlignError::OutOfBand { band, m, n })?;
                    cell.d_extend()
                };
                j -= 1;
                if !extend {
                    state = State::Main;
                }
                if j == 0 {
                    state = State::Main;
                }
            }
        }
    }
    cigar.reverse();
    Ok(cigar)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bt_cell_round_trips() {
        for origin in [
            Origin::DiagMatch,
            Origin::DiagMismatch,
            Origin::Ins,
            Origin::Del,
        ] {
            for i_ext in [false, true] {
                for d_ext in [false, true] {
                    let c = BtCell::new(origin, i_ext, d_ext);
                    assert_eq!(c.origin(), origin);
                    assert_eq!(c.i_extend(), i_ext);
                    assert_eq!(c.d_extend(), d_ext);
                    assert!(c.bits() <= 0x0F);
                }
            }
        }
    }

    #[test]
    fn bt_row_packs_two_cells_per_byte() {
        let mut row = BtRow::new(5);
        assert_eq!(row.as_bytes().len(), 3);
        for idx in 0..5 {
            row.set(
                idx,
                BtCell::new(Origin::from_bits(idx as u8), idx % 2 == 0, idx % 3 == 0),
            );
        }
        for idx in 0..5 {
            let c = row.get(idx);
            assert_eq!(c.origin(), Origin::from_bits(idx as u8));
            assert_eq!(c.i_extend(), idx % 2 == 0);
            assert_eq!(c.d_extend(), idx % 3 == 0);
        }
    }

    #[test]
    fn bt_row_set_overwrites_cleanly() {
        let mut row = BtRow::new(2);
        row.set(0, BtCell(0x0F));
        row.set(1, BtCell(0x0F));
        row.set(0, BtCell(0x00));
        assert_eq!(row.get(0).bits(), 0);
        assert_eq!(row.get(1).bits(), 0x0F);
    }

    #[test]
    fn bt_row_from_bytes_checks_len() {
        assert!(BtRow::from_bytes(vec![0u8; 1], 3).is_none());
        assert!(BtRow::from_bytes(vec![0u8; 2], 3).is_some());
    }

    #[test]
    fn walk_pure_diagonal() {
        // 3x3 all matches.
        let cigar = walk(3, 3, 8, |_, _| {
            Some(BtCell::new(Origin::DiagMatch, false, false))
        })
        .unwrap();
        assert_eq!(cigar.to_string(), "3=");
    }

    #[test]
    fn walk_borders_only() {
        // m=2, n=0: pure insertion; m=0, n=2: pure deletion.
        assert_eq!(walk(2, 0, 8, |_, _| None).unwrap().to_string(), "2I");
        assert_eq!(walk(0, 2, 8, |_, _| None).unwrap().to_string(), "2D");
    }

    #[test]
    fn walk_gap_open_and_extend() {
        // m=3, n=1. Path: I-extend, I-open, then diag match.
        // Cells: (3,1) origin Ins; (3,1).i_extend irrelevant for origin read;
        // walking Ins state reads i_extend at the *current* cell.
        let lookup = |i: usize, j: usize| -> Option<BtCell> {
            match (i, j) {
                (3, 1) => Some(BtCell::new(Origin::Ins, true, false)), // extend
                (2, 1) => Some(BtCell::new(Origin::Ins, false, false)), // open
                (1, 1) => Some(BtCell::new(Origin::DiagMatch, false, false)),
                _ => None,
            }
        };
        let cigar = walk(3, 1, 8, lookup).unwrap();
        assert_eq!(cigar.to_string(), "1=2I");
    }

    #[test]
    fn walk_out_of_band_is_error() {
        let err = walk(2, 2, 4, |_, _| None).unwrap_err();
        assert_eq!(
            err,
            AlignError::OutOfBand {
                band: 4,
                m: 2,
                n: 2
            }
        );
    }

    #[test]
    fn walk_detects_cycles() {
        // A BT that always says "Del" but d_extend forever would loop without
        // the fuel check once j hits 0... the border rule terminates that.
        // Instead craft a cell whose origin is Ins but i never decreases —
        // impossible by construction (Ins always decrements i), so instead
        // verify fuel trips on an overlong path: claim Ins-open chains that
        // bounce between states cannot exceed m+n+2 pushes.
        let cigar = walk(5, 0, 4, |_, _| None).unwrap();
        assert_eq!(cigar.to_string(), "5I");
    }

    #[test]
    fn walk_empty_is_empty() {
        assert_eq!(walk(0, 0, 4, |_, _| None).unwrap().to_string(), "");
    }
}
