//! A small self-contained timing harness for the `benches/` targets.
//!
//! The workspace builds offline, so the benches cannot pull in Criterion;
//! this module provides the subset they need: named groups, per-benchmark
//! warmup + repeated samples, median-of-samples reporting, and element /
//! byte throughput lines. Invoke with `cargo bench`; set `BENCH_MS` to
//! change the per-benchmark time budget (milliseconds, default 100).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput units attached to a group.
#[derive(Debug, Clone, Copy)]
enum Throughput {
    None,
    Elements(u64),
    Bytes(u64),
}

/// Top-level harness: owns the time budget and prints a report.
#[derive(Debug)]
pub struct Harness {
    budget: Duration,
}

impl Default for Harness {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Harness {
    /// Build a harness from the environment (`BENCH_MS` per-bench budget).
    pub fn from_env() -> Self {
        let ms = std::env::var("BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100u64);
        Self {
            budget: Duration::from_millis(ms.max(1)),
        }
    }

    /// Start a named group of related benchmarks.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        println!("\n## {name}");
        Group {
            harness: self,
            throughput: Throughput::None,
        }
    }
}

/// A named group; benchmarks registered on it share a throughput setting.
#[derive(Debug)]
pub struct Group<'a> {
    harness: &'a mut Harness,
    throughput: Throughput,
}

impl Group<'_> {
    /// Report elements/second for subsequent benchmarks in this group.
    pub fn throughput_elements(&mut self, n: u64) -> &mut Self {
        self.throughput = Throughput::Elements(n);
        self
    }

    /// Report bytes/second for subsequent benchmarks in this group.
    pub fn throughput_bytes(&mut self, n: u64) -> &mut Self {
        self.throughput = Throughput::Bytes(n);
        self
    }

    /// Time `work` repeatedly and print the median per-iteration cost.
    pub fn bench<R>(&mut self, name: &str, mut work: impl FnMut() -> R) {
        self.bench_batched(name, || (), |()| work());
    }

    /// Like [`Group::bench`], but re-creates untimed per-iteration state
    /// with `setup` (the Criterion `iter_batched` pattern).
    pub fn bench_batched<S, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut work: impl FnMut(S) -> R,
    ) {
        // Warmup + calibration: find how many iterations fit one sample.
        let sample_budget = self.harness.budget / 8;
        let mut iters = 1u64;
        loop {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let state = setup();
                let start = Instant::now();
                black_box(work(state));
                elapsed += start.elapsed();
            }
            if elapsed >= sample_budget || iters >= 1 << 20 {
                break;
            }
            // Grow toward the sample budget, at least doubling.
            iters *= 2;
        }

        // Timed samples: median over a handful of equal-sized runs.
        const SAMPLES: usize = 5;
        let mut per_iter: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let mut elapsed = Duration::ZERO;
                for _ in 0..iters {
                    let state = setup();
                    let start = Instant::now();
                    black_box(work(state));
                    elapsed += start.elapsed();
                }
                elapsed.as_secs_f64() / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[SAMPLES / 2];

        let rate = |n: u64| {
            if median <= 0.0 {
                return String::from("inf");
            }
            si(n as f64 / median)
        };
        let extra = match self.throughput {
            Throughput::None => String::new(),
            Throughput::Elements(n) => format!("  {} elem/s", rate(n)),
            Throughput::Bytes(n) => format!("  {}B/s", rate(n)),
        };
        println!("  {name:<32} {:>12}/iter{extra}", fmt_time(median));
    }
}

/// Format seconds as a human-readable time.
fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Format a rate with an SI prefix.
fn si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_are_stable() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2e-3), "2.000 ms");
        assert_eq!(fmt_time(2e-6), "2.000 us");
        assert_eq!(fmt_time(2e-9), "2.0 ns");
        assert_eq!(si(3.2e9), "3.20 G");
        assert_eq!(si(3.2e6), "3.20 M");
        assert_eq!(si(3.2e3), "3.20 k");
        assert_eq!(si(12.0), "12.0 ");
    }

    #[test]
    fn bench_runs_and_reports() {
        // Smoke: a bench on a trivial closure completes within the budget
        // machinery and does not panic.
        let mut h = Harness {
            budget: Duration::from_millis(2),
        };
        let mut g = h.group("smoke");
        g.throughput_elements(10).bench("noop_add", || 1u64 + 1);
        g.throughput_bytes(10)
            .bench_batched("batched", || 7u64, |x| x * 2);
    }
}
