//! The paper's published numbers, for side-by-side printing and for shape
//! assertions (EXPERIMENTS.md records paper vs measured for every table).

/// One Table 1 row: dataset, static accuracy at band 128/256/512, adaptive
/// accuracy at 128. `None` = cell not reported (the paper stops doubling at
/// 100 %).
pub type Table1Row = (&'static str, Option<f64>, Option<f64>, Option<f64>, f64);

/// Table 1 — accuracy (%) per dataset.
pub const TABLE1: [Table1Row; 5] = [
    ("S1000", Some(100.0), None, None, 100.0),
    ("S10000", Some(99.0), Some(100.0), None, 100.0),
    ("S30000", Some(89.0), Some(99.0), Some(100.0), 100.0),
    ("16S", Some(70.0), Some(81.0), Some(85.0), 86.0),
    ("Pacbio", Some(29.0), Some(62.0), Some(87.0), 85.0),
];

/// One runtime-table row: label, seconds, speedup vs the 4215.
pub type RuntimeRow = (&'static str, f64, f64);

/// Table 2 — S1000 at 100 % accuracy.
pub const TABLE2: [RuntimeRow; 5] = [
    ("Minimap2 Intel 4215 (32c)", 294.0, 1.0),
    ("Minimap2 Intel 4216 (64c)", 242.0, 1.2),
    ("DPU 10 ranks", 560.0, 0.6),
    ("DPU 20 ranks", 283.0, 1.0),
    ("DPU 40 ranks", 146.0, 2.0),
];

/// Table 3 — S10000.
pub const TABLE3: [RuntimeRow; 5] = [
    ("Minimap2 Intel 4215 (32c)", 744.0, 1.0),
    ("Minimap2 Intel 4216 (64c)", 369.0, 2.0),
    ("DPU 10 ranks", 502.0, 1.5),
    ("DPU 20 ranks", 255.0, 2.9),
    ("DPU 40 ranks", 132.0, 5.6),
];

/// Table 4 — S30000.
pub const TABLE4: [RuntimeRow; 5] = [
    ("Minimap2 Intel 4215 (32c)", 1650.0, 1.0),
    ("Minimap2 Intel 4216 (64c)", 1265.0, 1.3),
    ("DPU 10 ranks", 755.0, 2.1),
    ("DPU 20 ranks", 391.0, 4.2),
    ("DPU 40 ranks", 200.0, 8.0),
];

/// Table 5 — 16S all-vs-all (>= 85 % accuracy: minimap2 band 512, DPU 128).
pub const TABLE5: [RuntimeRow; 5] = [
    ("Minimap2 Intel 4215 (32c)", 5882.0, 1.0),
    ("Minimap2 Intel 4216 (64c)", 3538.0, 1.7),
    ("DPU 10 ranks", 2544.0, 2.3),
    ("DPU 20 ranks", 1257.0, 4.6),
    ("DPU 40 ranks", 632.0, 9.3),
];

/// Table 6 — PacBio sets (>= 85 % accuracy).
pub const TABLE6: [RuntimeRow; 5] = [
    ("Minimap2 Intel 4215 (32c)", 4044.0, 1.0),
    ("Minimap2 Intel 4216 (64c)", 2788.0, 1.4),
    ("DPU 10 ranks", 1882.0, 2.1),
    ("DPU 20 ranks", 956.0, 4.2),
    ("DPU 40 ranks", 505.0, 8.0),
];

/// Table 7 — pure-C vs asm kernel seconds and speedups per dataset.
pub const TABLE7: [(&str, f64, f64, f64); 5] = [
    ("S1000", 247.0, 146.0, 1.69),
    ("S10000", 207.0, 132.0, 1.57),
    ("S30000", 316.0, 200.0, 1.58),
    ("16S", 864.0, 632.0, 1.36),
    ("Pacbio", 806.0, 505.0, 1.59),
];

/// Table 8 — energy in kJ on the two real datasets.
pub const TABLE8: [(&str, f64, f64); 3] = [
    ("Intel 4215 (kJ)", 1805.0, 1241.0),
    ("Intel 4216 (kJ)", 1192.0, 939.0),
    ("UPMEM PiM (kJ)", 484.0, 387.0),
];

/// §5 text: pipeline utilization at P=6, T=4.
pub const UTILIZATION_RANGE: (f64, f64) = (0.95, 0.99);
/// §5 text: MRAM transfer impact.
pub const MRAM_IMPACT_RANGE: (f64, f64) = (0.01, 0.05);
/// §5 text: host overhead, S1000 vs S30000.
pub const HOST_OVERHEAD_S1000: f64 = 0.15;
pub const HOST_OVERHEAD_S30000: f64 = 0.001;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_speedups_are_self_consistent() {
        // Each runtime table's speedup column should equal t_4215 / t_row
        // within the paper's 1-decimal rounding.
        for table in [&TABLE2, &TABLE3, &TABLE4, &TABLE5, &TABLE6] {
            let base = table[0].1;
            for (label, secs, speedup) in table.iter() {
                let computed = base / secs;
                assert!(
                    (computed - speedup).abs() < 0.06 + 0.05 * speedup,
                    "{label}: paper {speedup} vs computed {computed}"
                );
            }
        }
    }

    #[test]
    fn table7_speedups_match_times() {
        for (label, c, asm, speedup) in TABLE7 {
            let computed = c / asm;
            assert!((computed - speedup).abs() < 0.02, "{label}");
        }
    }

    #[test]
    fn table8_matches_power_times_time() {
        // 16S runtimes from Table 5 x the §5.6 wattages (kJ, rounded).
        let t = TABLE5;
        assert!((307.0 * t[0].1 / 1000.0 - TABLE8[0].1).abs() < 2.0);
        assert!((337.0 * t[1].1 / 1000.0 - TABLE8[1].1).abs() < 2.0);
        assert!((767.0 * t[4].1 / 1000.0 - TABLE8[2].1).abs() < 2.0);
    }
}
