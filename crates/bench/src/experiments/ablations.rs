//! Ablations for the design decisions DESIGN.md calls out (§4).
//!
//! * **P×T tasklet organization** — the paper picks P=6 pools × 4 tasklets
//!   after noting pure alignment-parallelism caps at 8 tasklets (WRAM) and
//!   fewer than 11 tasklets cannot saturate the pipeline (§4.2.3).
//! * **LPT vs round-robin balancing** — the rank barrier amplifies the
//!   slowest DPU (§4.1.2).
//! * **2-bit vs ASCII transfer encoding** — 4x volume reduction (§4.1.1).

use super::{server_sized, DPU_BAND};
use crate::tablefmt::{pct, secs, Table};
use crate::ReproConfig;
use datasets::pacbio::PacbioParams;
use datasets::synthetic::{SyntheticParams, SyntheticPreset};
use datasets::ErrorModel;
use dpu_kernel::{KernelParams, KernelVariant, NwKernel, PoolConfig};
use nw_core::seq::DnaSeq;
use pim_host::balance::{bin_loads, imbalance, lpt_assign, round_robin_assign, workload};
use pim_host::dispatch::DispatchConfig;
use pim_host::hetero::{align_pairs_hetero, HeteroConfig};
use pim_host::modes::align_pairs;

/// One P×T configuration's outcome.
#[derive(Debug, Clone)]
pub struct PtRow {
    /// Pools.
    pub pools: usize,
    /// Tasklets per pool.
    pub tasklets: usize,
    /// Simulated DPU seconds for the fixed workload (`None` when the
    /// configuration does not fit WRAM — itself a finding).
    pub dpu_seconds: Option<f64>,
    /// Pipeline utilization.
    pub utilization: f64,
}

/// The P×T sweep.
pub fn pt_sweep(cfg: &ReproConfig) -> Vec<PtRow> {
    let count = if cfg.quick { 24 } else { 128 };
    let mut params = SyntheticParams::preset(SyntheticPreset::S1000, cfg.seed + 80);
    if cfg.quick {
        params.read_len = 400;
    }
    let pairs = params.generate(count);
    // Always the paper's band: at small bands the fixed per-anti-diagonal
    // overheads dominate and the P x T comparison loses its meaning.
    let band = DPU_BAND;
    let configs = [
        (1usize, 16usize),
        (2, 8),
        (3, 8),
        (4, 4),
        (6, 4),
        (8, 2),
        (8, 1),
        (6, 2),
    ];
    let mut rows = Vec::new();
    for (pools, tasklets) in configs {
        let kernel = NwKernel::new(PoolConfig { pools, tasklets }, KernelVariant::Asm);
        let kp = KernelParams {
            band,
            ..KernelParams::paper_default()
        };
        let dcfg = DispatchConfig::new(kernel, kp);
        // A deliberately small server so every DPU runs several jobs
        // concurrently across its pools — the regime the P x T choice
        // matters in.
        let mut srv = server_sized(1, 4);
        match align_pairs(&mut srv, &dcfg, &pairs) {
            Ok((report, _)) => rows.push(PtRow {
                pools,
                tasklets,
                dpu_seconds: Some(report.dpu_seconds),
                utilization: report.pipeline_utilization(),
            }),
            Err(_) => rows.push(PtRow {
                pools,
                tasklets,
                dpu_seconds: None,
                utilization: 0.0,
            }),
        }
    }
    rows
}

/// Render the P×T sweep.
pub fn pt_markdown(rows: &[PtRow]) -> String {
    let best = rows
        .iter()
        .filter_map(|r| r.dpu_seconds)
        .fold(f64::INFINITY, f64::min);
    let mut t = Table::new(
        "Ablation — tasklet organization P pools x T tasklets (paper picks 6x4)",
        &[
            "P",
            "T",
            "total tasklets",
            "DPU time (s)",
            "vs best",
            "utilization",
        ],
    );
    for r in rows {
        let (time, rel) = match r.dpu_seconds {
            Some(s) => (secs(s), format!("{:.2}x", s / best)),
            None => ("does not fit WRAM".into(), "-".into()),
        };
        t.row(&[
            r.pools.to_string(),
            r.tasklets.to_string(),
            (r.pools * r.tasklets).to_string(),
            time,
            rel,
            pct(100.0 * r.utilization),
        ]);
    }
    t.note("Configurations under 11 total tasklets cannot saturate the pipeline (paper sec 2.1); 6x4=24 keeps utilization at 95-99%.");
    t.to_markdown()
}

/// LPT vs round-robin on a PacBio-like skewed workload: per-DPU load gap
/// and the resulting rank-barrier makespan estimate.
#[derive(Debug, Clone)]
pub struct BalanceAblation {
    /// LPT imbalance (max-min)/max.
    pub lpt_imbalance: f64,
    /// Round-robin imbalance.
    pub rr_imbalance: f64,
    /// LPT makespan (max bin load, workload units).
    pub lpt_makespan: u64,
    /// Round-robin makespan.
    pub rr_makespan: u64,
}

/// Run the balancing ablation.
pub fn balance(cfg: &ReproConfig) -> BalanceAblation {
    let p = PacbioParams {
        sets: if cfg.quick { 6 } else { 40 },
        region_len: if cfg.quick {
            (200, 2_000)
        } else {
            (2_000, 12_000)
        },
        reads_per_set: (4, 10),
        error: ErrorModel::pacbio_raw(),
        seed: cfg.seed + 81,
    };
    let sets = p.generate();
    // Workload per alignment pair (the unit the host balances).
    let mut wl: Vec<u64> = Vec::new();
    for s in &sets {
        for i in 0..s.reads.len() {
            for j in (i + 1)..s.reads.len() {
                wl.push(workload(s.reads[i].len(), s.reads[j].len(), DPU_BAND));
            }
        }
    }
    let bins = 64;
    let lpt = bin_loads(&lpt_assign(&wl, bins), &wl);
    let rr = bin_loads(&round_robin_assign(wl.len(), bins), &wl);
    BalanceAblation {
        lpt_imbalance: imbalance(&lpt),
        rr_imbalance: imbalance(&rr),
        lpt_makespan: lpt.iter().copied().max().unwrap_or(0),
        rr_makespan: rr.iter().copied().max().unwrap_or(0),
    }
}

/// Render the balancing ablation.
pub fn balance_markdown(b: &BalanceAblation) -> String {
    let mut t = Table::new(
        "Ablation — LPT vs round-robin intra-rank load balancing",
        &[
            "Strategy",
            "imbalance (max-min)/max",
            "makespan (workload units)",
        ],
    );
    t.row(&[
        "LPT (paper)".into(),
        pct(100.0 * b.lpt_imbalance),
        b.lpt_makespan.to_string(),
    ]);
    t.row(&[
        "Round-robin".into(),
        pct(100.0 * b.rr_imbalance),
        b.rr_makespan.to_string(),
    ]);
    t.note("The rank barrier waits for the slowest DPU, so makespan is what the host pays (paper sec 4.1.2).");
    t.to_markdown()
}

/// 2-bit encoding ablation: transfer bytes and modeled time, ASCII vs
/// packed, on a scaled S1000 batch.
#[derive(Debug, Clone)]
pub struct EncodeAblation {
    /// Packed transfer volume (what the pipeline ships).
    pub packed_bytes: u64,
    /// ASCII volume (what it would ship without §4.1.1).
    pub ascii_bytes: u64,
    /// Packed transfer seconds at the 60 GB/s aggregate link.
    pub packed_seconds: f64,
    /// ASCII transfer seconds.
    pub ascii_seconds: f64,
    /// Fraction of end-to-end time the packed transfer represents.
    pub packed_fraction_of_total: f64,
}

/// Run the encoding ablation.
pub fn encode(cfg: &ReproConfig) -> EncodeAblation {
    let count = if cfg.quick { 24 } else { 256 };
    let mut params = SyntheticParams::preset(SyntheticPreset::S1000, cfg.seed + 82);
    if cfg.quick {
        params.read_len = 800;
    }
    let pairs: Vec<(DnaSeq, DnaSeq)> = params.generate(count);
    let dcfg = DispatchConfig::new(
        NwKernel::paper_default(),
        KernelParams {
            band: if cfg.quick { 32 } else { DPU_BAND },
            ..KernelParams::paper_default()
        },
    );
    let mut srv = server_sized(2, if cfg.quick { 8 } else { 64 });
    let (report, _) = align_pairs(&mut srv, &dcfg, &pairs).expect("encode ablation run");
    let ascii_bytes: u64 = pairs.iter().map(|(a, b)| (a.len() + b.len()) as u64).sum();
    let bw = srv.cfg().host_bandwidth;
    // The packed volume includes headers/job tables; ASCII shipping would
    // carry the same metadata plus 4x the sequence payload.
    let seq_packed: u64 = pairs
        .iter()
        .map(|(a, b)| (a.len().div_ceil(4) + b.len().div_ceil(4)) as u64)
        .sum();
    let overhead = report.transfer_in_bytes.saturating_sub(seq_packed);
    let ascii_total = ascii_bytes + overhead;
    EncodeAblation {
        packed_bytes: report.transfer_in_bytes,
        ascii_bytes: ascii_total,
        packed_seconds: report.transfer_in_bytes as f64 / bw,
        ascii_seconds: ascii_total as f64 / bw,
        packed_fraction_of_total: (report.transfer_in_bytes as f64 / bw)
            / report.total_seconds().max(f64::MIN_POSITIVE),
    }
}

/// Render the encoding ablation.
pub fn encode_markdown(e: &EncodeAblation) -> String {
    let mut t = Table::new(
        "Ablation — on-the-fly 2-bit encoding vs ASCII transfers",
        &["Encoding", "bytes to DPUs", "transfer time (s)"],
    );
    t.row(&[
        "2-bit (paper)".into(),
        e.packed_bytes.to_string(),
        format!("{:.6}", e.packed_seconds),
    ]);
    t.row(&[
        "ASCII".into(),
        e.ascii_bytes.to_string(),
        format!("{:.6}", e.ascii_seconds),
    ]);
    t.note(format!(
        "packed transfers are {:.2}% of end-to-end time (paper: <=15% on S1000, negligible on long reads); ASCII would be ~{:.1}x larger",
        100.0 * e.packed_fraction_of_total,
        e.ascii_bytes as f64 / e.packed_bytes.max(1) as f64
    ));
    t.to_markdown()
}

/// Heterogeneous CPU + PiM ablation — the paper's future-work direction
/// (§5.6): run the same batch PiM-only and split CPU+PiM, compare wall
/// times. The CPU share runs for real on this machine.
#[derive(Debug, Clone)]
pub struct HeteroAblation {
    /// PiM-only wall time (simulated).
    pub pim_only_seconds: f64,
    /// Heterogeneous wall time (max of the two concurrent sides).
    pub hetero_seconds: f64,
    /// Pairs routed to the CPU in the heterogeneous run.
    pub cpu_pairs: usize,
    /// Pairs routed to the PiM server.
    pub pim_pairs: usize,
}

/// Run the heterogeneous ablation.
pub fn hetero(cfg: &ReproConfig) -> HeteroAblation {
    let count = if cfg.quick { 48 } else { 256 };
    let mut params = SyntheticParams::preset(SyntheticPreset::S1000, cfg.seed + 83);
    if cfg.quick {
        params.read_len = 500;
    }
    let pairs: Vec<DnaSeq2> = params.generate(count);
    let kp = KernelParams {
        band: if cfg.quick { 32 } else { DPU_BAND },
        ..KernelParams::paper_default()
    };
    let dispatch = DispatchConfig::new(NwKernel::paper_default(), kp);

    // PiM-only reference.
    let mut srv = server_sized(1, 2);
    let (pim_only, _) = align_pairs(&mut srv, &dispatch, &pairs).expect("pim-only run");

    // Heterogeneous: CPU takes the share its throughput warrants.
    let hcfg = HeteroConfig {
        dispatch,
        cpu_threads: 1,
        cpu_band: kp.band,
        // Estimated from the same simulated server vs one CPU core.
        pim_workload_per_second: 4.0,
        cpu_workload_per_second: 1.0,
    };
    let mut srv = server_sized(1, 2);
    let out = align_pairs_hetero(&mut srv, &hcfg, &pairs).expect("hetero run");
    HeteroAblation {
        pim_only_seconds: pim_only.total_seconds(),
        hetero_seconds: out.pim_seconds, // simulated PiM share; CPU overlaps
        cpu_pairs: out.cpu_pairs,
        pim_pairs: out.pim_pairs,
    }
}

/// Render the heterogeneous ablation.
pub fn hetero_markdown(h: &HeteroAblation) -> String {
    let mut t = Table::new(
        "Ablation — heterogeneous CPU + PiM execution (paper's future work, sec 5.6)",
        &[
            "Configuration",
            "PiM-side time (s)",
            "pairs on PiM",
            "pairs on CPU",
        ],
    );
    t.row(&[
        "PiM only".into(),
        secs(h.pim_only_seconds),
        (h.pim_pairs + h.cpu_pairs).to_string(),
        "0".into(),
    ]);
    t.row(&[
        "CPU + PiM".into(),
        secs(h.hetero_seconds),
        h.pim_pairs.to_string(),
        h.cpu_pairs.to_string(),
    ]);
    t.note(format!(
        "offloading {} of {} pairs to otherwise-idle CPU cores shrinks the PiM-side critical path by {:.0}%",
        h.cpu_pairs,
        h.cpu_pairs + h.pim_pairs,
        100.0 * (1.0 - h.hetero_seconds / h.pim_only_seconds.max(f64::MIN_POSITIVE))
    ));
    t.to_markdown()
}

/// Type alias to keep the generator signature readable.
type DnaSeq2 = (DnaSeq, DnaSeq);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pt_sweep_prefers_saturating_configs() {
        let rows = pt_sweep(&ReproConfig::quick());
        let get = |p: usize, t: usize| -> &PtRow {
            rows.iter()
                .find(|r| r.pools == p && r.tasklets == t)
                .expect("config present")
        };
        let best = get(6, 4).dpu_seconds.expect("6x4 fits");
        // 8x1 = 8 tasklets < 11: cannot saturate the pipeline.
        let weak = get(8, 1).dpu_seconds.expect("8x1 fits");
        assert!(weak > best * 1.5, "8x1 {weak} vs 6x4 {best}");
        // Utilization ordering mirrors it.
        assert!(get(6, 4).utilization > get(8, 1).utilization);
    }

    #[test]
    fn lpt_beats_round_robin() {
        let b = balance(&ReproConfig::quick());
        assert!(b.lpt_imbalance <= b.rr_imbalance);
        assert!(b.lpt_makespan <= b.rr_makespan);
        assert!(!balance_markdown(&b).is_empty());
    }

    #[test]
    fn hetero_offload_shrinks_pim_critical_path() {
        let h = hetero(&ReproConfig::quick());
        assert!(h.cpu_pairs > 0, "CPU must get a share");
        assert!(h.pim_pairs > 0, "PiM must keep a share");
        assert!(
            h.hetero_seconds < h.pim_only_seconds,
            "hetero {} !< pim-only {}",
            h.hetero_seconds,
            h.pim_only_seconds
        );
        assert!(!hetero_markdown(&h).is_empty());
    }

    #[test]
    fn packing_divides_transfer_near_four() {
        let e = encode(&ReproConfig::quick());
        let ratio = e.ascii_bytes as f64 / e.packed_bytes as f64;
        assert!(ratio > 2.0, "ratio {ratio}");
        assert!(e.packed_seconds < e.ascii_seconds);
        assert!(encode_markdown(&e).contains("2-bit"));
    }
}
