//! Table 6 — PacBio repeat-read sets for consensus (§5.4).
//!
//! Sets of 10–30 noisy reads of one region, all-against-all inside each
//! set, CIGARs required. Whole sets are LPT-assigned to DPUs; the paper
//! reports robust scaling with a minor dip at 40 ranks (load balancing gets
//! harder with more bins).

use super::{dispatch_config, finish_rows, server_sized, xeons, Row};
use crate::tablefmt::{secs, speedup, Table};
use crate::{calibration, ReproConfig, RANK_COUNTS};
use cpu_baseline::Ksw2Aligner;
use datasets::pacbio::{PacbioParams, ReadSet};
use datasets::{ErrorModel, Scale};
use nw_core::ScoringScheme;
use pim_host::modes::align_sets;
use pim_host::ExecutionReport;

/// The CPU static band for >= 85 % accuracy on PacBio (Table 1: 512).
pub const CPU_BAND_PACBIO: usize = 512;

/// Table 6 result.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// Sets simulated.
    pub sim_sets: usize,
    /// Alignments simulated.
    pub sim_pairs: u64,
    /// Extrapolation factor to the paper's 38 512 sets.
    pub factor: f64,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Mean intra-rank imbalance (LPT over sets).
    pub imbalance: f64,
    /// Reports per rank count.
    pub reports: Vec<(usize, ExecutionReport)>,
}

/// Generation parameters at a scale.
pub fn params(cfg: &ReproConfig) -> PacbioParams {
    if cfg.quick {
        PacbioParams {
            sets: 12,
            region_len: (300, 600),
            reads_per_set: (3, 5),
            error: ErrorModel::pacbio_raw(),
            seed: cfg.seed + 60,
        }
    } else {
        let mut p = PacbioParams::scaled(Scale(cfg.scale), cfg.seed + 60);
        // Keep regions in the low-kb range and sets numerous enough that
        // every DPU of the largest (thin-rank) server holds several sets —
        // sets are the balancing unit. EXPERIMENTS.md documents this as a
        // workload reduction corrected by extrapolation.
        p.region_len = (2_000, 5_000);
        p.reads_per_set = (6, 10);
        p.sets = p.sets.clamp(120, 400);
        p
    }
}

/// DPUs per simulated rank (thin ranks; sets are the balancing unit, so
/// density is counted in sets per DPU).
pub fn sim_dpus_per_rank(cfg: &ReproConfig) -> usize {
    if cfg.quick {
        4
    } else {
        1
    }
}

/// Run Table 6.
pub fn run(cfg: &ReproConfig) -> Table6 {
    let p = params(cfg);
    let sets: Vec<ReadSet> = p.generate();
    let sim_sets = sets.len();
    let sim_pairs = PacbioParams::total_pairs(&sets);
    let dpus = sim_dpus_per_rank(cfg);
    let sets_factor = PacbioParams::FULL_SETS as f64 / sim_sets as f64;
    let factor = sets_factor * (dpus as f64 / 64.0);

    // CPU projection from static-band cells (with traceback).
    let cal = calibration();
    let band = if cfg.quick { 64 } else { CPU_BAND_PACBIO };
    let ksw = Ksw2Aligner::new(ScoringScheme::default(), band);
    let mut sim_cells = 0u64;
    for set in &sets {
        for i in 0..set.reads.len() {
            for j in (i + 1)..set.reads.len() {
                sim_cells += ksw.cells(set.reads[i].len(), set.reads[j].len());
            }
        }
    }
    let full_cells = (sim_cells as f64 * sets_factor) as u64;
    let (x4215, x4216) = xeons();
    let mut rows = vec![
        Row {
            label: x4215.label.into(),
            seconds: x4215.seconds(full_cells, cal, true),
            speedup: 1.0,
        },
        Row {
            label: x4216.label.into(),
            seconds: x4216.seconds(full_cells, cal, true),
            speedup: 1.0,
        },
    ];

    let dcfg = dispatch_config(false);
    let read_sets: Vec<Vec<nw_core::seq::DnaSeq>> = sets.iter().map(|s| s.reads.clone()).collect();
    let mut reports = Vec::new();
    let mut imbalance = 0.0;
    // Sets are the balancing unit: the quick server stays small enough
    // that 12 sets still load every DPU.
    let rank_counts: Vec<usize> = if cfg.quick {
        vec![1, 2]
    } else {
        RANK_COUNTS.to_vec()
    };
    for &ranks in &rank_counts {
        let mut srv = server_sized(ranks, dpus);
        let (report, _) = align_sets(&mut srv, &dcfg, &read_sets).expect("pacbio run");
        rows.push(Row {
            label: format!("DPU {ranks} ranks"),
            seconds: report.total_seconds() * factor,
            speedup: 1.0,
        });
        imbalance = report.mean_rank_imbalance;
        reports.push((ranks, report));
    }

    Table6 {
        sim_sets,
        sim_pairs,
        factor,
        rows: finish_rows(rows),
        imbalance,
        reports,
    }
}

impl Table6 {
    /// Render with paper values.
    pub fn to_markdown(&self) -> String {
        let title = format!(
            "Table 6 — PacBio consensus sets ({} sets = {} alignments simulated, x{:.0} extrapolation)",
            self.sim_sets, self.sim_pairs, self.factor
        );
        let mut t = Table::new(
            title,
            &[
                "System",
                "Time (s)",
                "Speedup",
                "Paper time (s)",
                "Paper speedup",
            ],
        );
        for (i, row) in self.rows.iter().enumerate() {
            let (_, p_secs, p_speed) = crate::paper::TABLE6
                .get(i)
                .copied()
                .unwrap_or(("-", 0.0, 0.0));
            t.row(&[
                row.label.clone(),
                secs(row.seconds),
                speedup(row.speedup),
                secs(p_secs),
                speedup(p_speed),
            ]);
        }
        t.note(format!(
            "LPT-over-sets imbalance {:.1}%; CIGARs computed and collected",
            100.0 * self.imbalance
        ));
        t.to_markdown()
    }

    /// Shape checks: scaling with ranks, allowing the paper's 40-rank dip.
    pub fn shape_holds(&self) -> Result<(), String> {
        let dpu: Vec<&Row> = self
            .rows
            .iter()
            .filter(|r| r.label.starts_with("DPU"))
            .collect();
        for pair in dpu.windows(2) {
            let ratio = pair[0].seconds / pair[1].seconds;
            if !(1.2..=2.4).contains(&ratio) {
                return Err(format!("PacBio rank doubling gave x{ratio:.2}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table6_shape() {
        let t = run(&ReproConfig::quick());
        assert_eq!(t.sim_sets, 12);
        assert!(t.sim_pairs >= 3);
        t.shape_holds().unwrap();
        assert!(t.to_markdown().contains("Table 6"));
    }

    #[test]
    fn params_scale() {
        let p = params(&ReproConfig {
            scale: 200,
            quick: false,
            seed: 0,
        });
        assert_eq!(p.sets, 192);
        let p = params(&ReproConfig {
            scale: 1_000_000,
            quick: false,
            seed: 0,
        });
        assert_eq!(p.sets, 120, "clamped at the minimum for set density");
    }
}
