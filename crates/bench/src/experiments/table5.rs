//! Table 5 — 16S rRNA all-vs-all comparison for phylogeny (§5.3).
//!
//! Score-only (the phylogeny distance matrix needs no CIGARs), broadcast
//! dataset, static equal split of the pair space. The paper's full dataset
//! is 9 557 sequences (45.7 M pairwise alignments); we simulate a subset of
//! sequences and extrapolate by the pair-count ratio (all-vs-all work grows
//! quadratically in sequences, linearly in pairs).

use super::{dispatch_config, finish_rows, server_sized, xeons, Row};
use crate::tablefmt::{secs, speedup, Table};
use crate::{calibration, ReproConfig, RANK_COUNTS};
use cpu_baseline::Ksw2Aligner;
use datasets::sixteen_s::SixteenSParams;
use nw_core::ScoringScheme;
use pim_host::modes::all_vs_all;
use pim_host::ExecutionReport;

/// The CPU static band for >= 85 % accuracy on 16S (Table 1: 512).
pub const CPU_BAND_16S: usize = 512;

/// Table 5 result.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// Sequences simulated.
    pub sim_seqs: usize,
    /// Pairs simulated.
    pub sim_pairs: u64,
    /// Extrapolation factor to the paper's 45.7 M pairs.
    pub factor: f64,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Intra-rank imbalance of the static split (paper: ~5 %).
    pub imbalance: f64,
    /// Reports per rank count.
    pub reports: Vec<(usize, ExecutionReport)>,
}

/// How many sequences to simulate at a given scale: all-vs-all work shrinks
/// with the square root of the scale divisor.
pub fn sim_seq_count(cfg: &ReproConfig) -> usize {
    if cfg.quick {
        return 24;
    }
    let full = SixteenSParams::FULL_COUNT as f64;
    ((full / (cfg.scale as f64).sqrt()) as usize).clamp(64, 512)
}

/// DPUs per simulated rank (thin ranks; see `runtime::sim_dpus_per_rank`).
pub fn sim_dpus_per_rank(cfg: &ReproConfig) -> usize {
    if cfg.quick {
        2
    } else {
        8
    }
}

/// Run Table 5.
pub fn run(cfg: &ReproConfig) -> Table5 {
    let n = sim_seq_count(cfg);
    let params = SixteenSParams {
        count: n,
        root_len: if cfg.quick { 300 } else { 1542 },
        branch_divergence: 0.02,
        seed: cfg.seed + 16,
    };
    let seqs = params.generate();
    let sim_pairs = params.all_vs_all_pairs();
    let full = SixteenSParams::FULL_COUNT as u64;
    let full_pairs = full * (full - 1) / 2;
    let dpus = sim_dpus_per_rank(cfg);
    let pairs_factor = full_pairs as f64 / sim_pairs as f64;
    let factor = pairs_factor * (dpus as f64 / 64.0);

    // CPU projection from static-band cells, score-only rate.
    let cal = calibration();
    let band = if cfg.quick { 64 } else { CPU_BAND_16S };
    let ksw = Ksw2Aligner::new(ScoringScheme::default(), band);
    let mut sim_cells = 0u64;
    for i in 0..seqs.len() {
        for j in (i + 1)..seqs.len() {
            sim_cells += ksw.cells(seqs[i].len(), seqs[j].len());
        }
    }
    let full_cells = (sim_cells as f64 * pairs_factor) as u64;
    let (x4215, x4216) = xeons();
    let mut rows = vec![
        Row {
            label: x4215.label.into(),
            seconds: x4215.seconds(full_cells, cal, false),
            speedup: 1.0,
        },
        Row {
            label: x4216.label.into(),
            seconds: x4216.seconds(full_cells, cal, false),
            speedup: 1.0,
        },
    ];

    let dcfg = dispatch_config(true);
    let mut reports = Vec::new();
    let mut imbalance = 0.0;
    let rank_counts: Vec<usize> = if cfg.quick {
        vec![2, 4]
    } else {
        RANK_COUNTS.to_vec()
    };
    for &ranks in &rank_counts {
        let mut srv = server_sized(ranks, dpus);
        let (report, _) = all_vs_all(&mut srv, &dcfg, &seqs).expect("16S run");
        rows.push(Row {
            label: format!("DPU {ranks} ranks"),
            seconds: report.total_seconds() * factor,
            speedup: 1.0,
        });
        imbalance = report.mean_rank_imbalance;
        reports.push((ranks, report));
    }

    Table5 {
        sim_seqs: n,
        sim_pairs,
        factor,
        rows: finish_rows(rows),
        imbalance,
        reports,
    }
}

impl Table5 {
    /// Render with paper values.
    pub fn to_markdown(&self) -> String {
        let title = format!(
            "Table 5 — 16S all-vs-all ({} seqs = {} pairs simulated, x{:.0} extrapolation)",
            self.sim_seqs, self.sim_pairs, self.factor
        );
        let mut t = Table::new(
            title,
            &[
                "System",
                "Time (s)",
                "Speedup",
                "Paper time (s)",
                "Paper speedup",
            ],
        );
        for (i, row) in self.rows.iter().enumerate() {
            let (_, p_secs, p_speed) = crate::paper::TABLE5
                .get(i)
                .copied()
                .unwrap_or(("-", 0.0, 0.0));
            t.row(&[
                row.label.clone(),
                secs(row.seconds),
                speedup(row.speedup),
                secs(p_secs),
                speedup(p_speed),
            ]);
        }
        t.note(format!(
            "static split imbalance {:.1}% (paper: ~5%); score-only mode, dataset broadcast once",
            100.0 * self.imbalance
        ));
        t.to_markdown()
    }

    /// Shape checks: near-linear rank scaling (the paper calls 16S scaling
    /// "linear" thanks to the single broadcast).
    pub fn shape_holds(&self) -> Result<(), String> {
        let dpu: Vec<&Row> = self
            .rows
            .iter()
            .filter(|r| r.label.starts_with("DPU"))
            .collect();
        for pair in dpu.windows(2) {
            let ratio = pair[0].seconds / pair[1].seconds;
            if !(1.4..=2.4).contains(&ratio) {
                return Err(format!("16S rank doubling gave x{ratio:.2}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table5_shape() {
        let t = run(&ReproConfig::quick());
        assert_eq!(t.sim_pairs, 24 * 23 / 2);
        assert!(t.factor > 1.0);
        t.shape_holds().unwrap();
        assert!(t.to_markdown().contains("Table 5"));
        // All DPU configs beat nothing in particular at quick scale, but
        // times must be positive and finite.
        for r in &t.rows {
            assert!(r.seconds.is_finite() && r.seconds > 0.0, "{r:?}");
        }
    }

    #[test]
    fn seq_count_scales_with_sqrt() {
        let a = sim_seq_count(&ReproConfig {
            scale: 100,
            quick: false,
            seed: 0,
        });
        let b = sim_seq_count(&ReproConfig {
            scale: 400,
            quick: false,
            seed: 0,
        });
        assert!(a > b);
        assert!(a <= 512 && b >= 64);
    }
}
