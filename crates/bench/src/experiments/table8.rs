//! Table 8 — energy per full-dataset run (§5.6).
//!
//! Energy = component-level power (Falevoz–Legriel methodology: CPU, DIMMs,
//! chassis, fans, PSU from specifications) × execution time. Runtimes come
//! from the Table 5/6 reproductions; power figures are the paper's.

use super::table5::Table5;
use super::table6::Table6;
use crate::tablefmt::Table;
use crate::ReproConfig;
use pim_sim::power::PowerModel;

/// Table 8 result: energy in kJ for the two real-world datasets.
#[derive(Debug, Clone)]
pub struct Table8 {
    /// `(system label, 16S kJ, PacBio kJ)` rows.
    pub rows: Vec<(String, f64, f64)>,
}

/// Compute from previously run Tables 5 and 6. The PiM row uses the
/// 40-rank runtime, like the paper.
pub fn from_tables(t5: &Table5, t6: &Table6) -> Table8 {
    let find = |rows: &[super::Row], label_part: &str| -> f64 {
        rows.iter()
            .find(|r| r.label.contains(label_part))
            .map(|r| r.seconds)
            .unwrap_or(f64::NAN)
    };
    // Quick mode runs fewer rank configurations; fall back to the last DPU
    // row (the largest simulated server).
    let dpu_secs = |rows: &[super::Row]| -> f64 {
        let exact = find(rows, "40 ranks");
        if exact.is_finite() {
            exact
        } else {
            rows.iter()
                .filter(|r| r.label.starts_with("DPU"))
                .map(|r| r.seconds)
                .next_back()
                .unwrap_or(f64::NAN)
        }
    };
    let systems = [
        (
            PowerModel::intel_4215(),
            find(&t5.rows, "4215"),
            find(&t6.rows, "4215"),
        ),
        (
            PowerModel::intel_4216(),
            find(&t5.rows, "4216"),
            find(&t6.rows, "4216"),
        ),
        (
            PowerModel::upmem_pim(),
            dpu_secs(&t5.rows),
            dpu_secs(&t6.rows),
        ),
    ];
    Table8 {
        rows: systems
            .into_iter()
            .map(|(p, s16, spb)| {
                (
                    format!("{} (kJ)", p.label),
                    p.energy_kj(s16),
                    p.energy_kj(spb),
                )
            })
            .collect(),
    }
}

/// Run Tables 5 and 6, then derive Table 8.
pub fn run(cfg: &ReproConfig) -> (Table8, Table5, Table6) {
    let t5 = super::table5::run(cfg);
    let t6 = super::table6::run(cfg);
    (from_tables(&t5, &t6), t5, t6)
}

impl Table8 {
    /// Render with paper values.
    pub fn to_markdown(&self) -> String {
        let mut t = Table::new(
            "Table 8 — energy per full-dataset run (kJ)",
            &["System", "16S", "Pacbio", "Paper 16S", "Paper Pacbio"],
        );
        for (i, (label, e16, epb)) in self.rows.iter().enumerate() {
            let (_, p16, ppb) = crate::paper::TABLE8
                .get(i)
                .copied()
                .unwrap_or(("-", 0.0, 0.0));
            t.row(&[
                label.clone(),
                format!("{e16:.0}"),
                format!("{epb:.0}"),
                format!("{p16:.0}"),
                format!("{ppb:.0}"),
            ]);
        }
        t.note("Power: 4215 307 W, 4216 337 W, PiM server 767 W (4215 host + 20 PiM DIMMs at 460 W). The paper reports the PiM server using 2.4-3.7x less energy.");
        t.to_markdown()
    }

    /// Shape check: the PiM server must be the most energy-efficient system
    /// on both datasets despite its higher wattage.
    pub fn shape_holds(&self) -> Result<(), String> {
        let pim = &self.rows[2];
        for other in &self.rows[..2] {
            if pim.1 >= other.1 || pim.2 >= other.2 {
                return Err(format!(
                    "PiM energy ({:.0}, {:.0}) not below {} ({:.0}, {:.0})",
                    pim.1, pim.2, other.0, other.1, other.2
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Row;

    fn fake5() -> Table5 {
        Table5 {
            sim_seqs: 10,
            sim_pairs: 45,
            factor: 1.0,
            rows: vec![
                Row {
                    label: "Minimap2 Intel 4215 (32c)".into(),
                    seconds: 5882.0,
                    speedup: 1.0,
                },
                Row {
                    label: "Minimap2 Intel 4216 (64c)".into(),
                    seconds: 3538.0,
                    speedup: 1.7,
                },
                Row {
                    label: "DPU 40 ranks".into(),
                    seconds: 632.0,
                    speedup: 9.3,
                },
            ],
            imbalance: 0.05,
            reports: Vec::new(),
        }
    }

    fn fake6() -> Table6 {
        Table6 {
            sim_sets: 3,
            sim_pairs: 10,
            factor: 1.0,
            rows: vec![
                Row {
                    label: "Minimap2 Intel 4215 (32c)".into(),
                    seconds: 4044.0,
                    speedup: 1.0,
                },
                Row {
                    label: "Minimap2 Intel 4216 (64c)".into(),
                    seconds: 2788.0,
                    speedup: 1.4,
                },
                Row {
                    label: "DPU 40 ranks".into(),
                    seconds: 505.0,
                    speedup: 8.0,
                },
            ],
            imbalance: 0.08,
            reports: Vec::new(),
        }
    }

    #[test]
    fn reproduces_paper_energy_from_paper_times() {
        // Feeding the paper's own runtimes must reproduce Table 8 exactly.
        let t8 = from_tables(&fake5(), &fake6());
        let expect = crate::paper::TABLE8;
        for (row, (_, p16, ppb)) in t8.rows.iter().zip(expect) {
            assert!((row.1 - p16).abs() < 2.0, "{}: {} vs {p16}", row.0, row.1);
            assert!((row.2 - ppb).abs() < 2.0, "{}: {} vs {ppb}", row.0, row.2);
        }
        t8.shape_holds().unwrap();
        assert!(t8.to_markdown().contains("Table 8"));
    }
}
