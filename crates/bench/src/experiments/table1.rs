//! Table 1 — accuracy of static vs adaptive band heuristics (§5.1).
//!
//! For each dataset, the fraction of pairs whose banded score equals the
//! full-DP optimum (computed with the exact Gotoh aligner, the stand-in for
//! "minimap2 with the band heuristic disabled"). Sample sizes are small
//! because the ground truth is quadratic; EXPERIMENTS.md records them.

use crate::tablefmt::Table;
use crate::ReproConfig;
use datasets::pacbio::PacbioParams;
use datasets::sixteen_s::SixteenSParams;
use datasets::synthetic::{SyntheticParams, SyntheticPreset};
use datasets::ErrorModel;
use nw_core::accuracy::{measure_against, Heuristic};
use nw_core::full::FullAligner;
use nw_core::seq::DnaSeq;
use nw_core::{Score, ScoringScheme};

/// Accuracy of one dataset under all measured configurations.
#[derive(Debug, Clone)]
pub struct DatasetAccuracy {
    /// Dataset label.
    pub name: &'static str,
    /// Pairs evaluated.
    pub pairs: usize,
    /// Static accuracy per band width, in the order of `bands()`.
    pub static_acc: Vec<f64>,
    /// Adaptive accuracy at the smallest band.
    pub adaptive_acc: f64,
}

/// The full Table 1 result.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Band widths measured for the static heuristic.
    pub bands: Vec<usize>,
    /// Adaptive band width.
    pub adaptive_band: usize,
    /// Per-dataset rows.
    pub datasets: Vec<DatasetAccuracy>,
}

/// Sample pairs from each of the paper's five datasets.
pub fn sample_pairs(cfg: &ReproConfig) -> Vec<(&'static str, Vec<(DnaSeq, DnaSeq)>)> {
    let (s1000, s10000, s30000, n16s, npac) = if cfg.quick {
        (6, 2, 1, 4, 2)
    } else {
        (24, 8, 4, 40, 10)
    };
    let mut out = Vec::new();
    out.push((
        "S1000",
        SyntheticParams::preset(SyntheticPreset::S1000, cfg.seed).generate(s1000),
    ));
    out.push((
        "S10000",
        SyntheticParams::preset(SyntheticPreset::S10000, cfg.seed + 1).generate(s10000),
    ));
    out.push((
        "S30000",
        SyntheticParams::preset(SyntheticPreset::S30000, cfg.seed + 2).generate(s30000),
    ));
    // 16S: sample pairs from a generated population (full scale would be
    // 45M pairs; accuracy only needs a sample).
    let seqs = SixteenSParams {
        count: n16s.max(4) * 2,
        root_len: if cfg.quick { 300 } else { 1542 },
        branch_divergence: 0.02,
        seed: cfg.seed + 3,
    }
    .generate();
    let mut pairs_16s = Vec::new();
    for k in 0..n16s {
        let i = (k * 7) % seqs.len();
        let j = (k * 13 + 1) % seqs.len();
        if i != j {
            pairs_16s.push((seqs[i].clone(), seqs[j].clone()));
        }
    }
    out.push(("16S", pairs_16s));
    // PacBio: pairs from repeat-read sets. Region lengths are capped so the
    // exact ground-truth DP stays tractable; the error/gap *structure* is
    // what drives Table 1's shape.
    let sets = PacbioParams {
        sets: npac.max(1),
        region_len: if cfg.quick {
            (400, 800)
        } else {
            (2_000, 5_000)
        },
        reads_per_set: (3, 5),
        error: ErrorModel::pacbio_raw(),
        seed: cfg.seed + 4,
    }
    .generate();
    let mut pairs_pb = Vec::new();
    for set in &sets {
        let mut ps = set.pairs();
        ps.truncate(3);
        pairs_pb.extend(ps);
    }
    out.push(("Pacbio", pairs_pb));
    out
}

/// Run Table 1.
pub fn run(cfg: &ReproConfig) -> Table1 {
    let scheme = ScoringScheme::default();
    let bands = if cfg.quick {
        vec![32, 64, 128]
    } else {
        vec![128, 256, 512]
    };
    let adaptive_band = bands[0];
    let full = FullAligner::affine(scheme);
    let mut datasets = Vec::new();
    for (name, pairs) in sample_pairs(cfg) {
        let optimal: Vec<Score> = pairs.iter().map(|(a, b)| full.score(a, b)).collect();
        let static_acc: Vec<f64> = bands
            .iter()
            .map(|&w| measure_against(scheme, Heuristic::Static(w), &pairs, &optimal).percent())
            .collect();
        let adaptive_acc =
            measure_against(scheme, Heuristic::Adaptive(adaptive_band), &pairs, &optimal).percent();
        datasets.push(DatasetAccuracy {
            name,
            pairs: pairs.len(),
            static_acc,
            adaptive_acc,
        });
    }
    Table1 {
        bands,
        adaptive_band,
        datasets,
    }
}

impl Table1 {
    /// Render with the paper's values side by side.
    pub fn to_markdown(&self) -> String {
        let mut header: Vec<String> = vec!["Dataset".into(), "pairs".into()];
        for b in &self.bands {
            header.push(format!("static@{b}"));
        }
        header.push(format!("adaptive@{}", self.adaptive_band));
        header.push("paper static@128/256/512".into());
        header.push("paper adaptive@128".into());
        let headers: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new("Table 1 — banded accuracy (%)", &headers);
        for row in &self.datasets {
            let paper = crate::paper::TABLE1
                .iter()
                .find(|p| p.0 == row.name)
                .expect("paper row");
            let fmt_opt =
                |o: Option<f64>| o.map(|v| format!("{v:.0}")).unwrap_or_else(|| "-".into());
            let mut cells = vec![row.name.to_string(), row.pairs.to_string()];
            for acc in &row.static_acc {
                cells.push(format!("{acc:.0}"));
            }
            cells.push(format!("{:.0}", row.adaptive_acc));
            cells.push(format!(
                "{}/{}/{}",
                fmt_opt(paper.1),
                fmt_opt(paper.2),
                fmt_opt(paper.3)
            ));
            cells.push(format!("{:.0}", paper.4));
            t.row(&cells);
        }
        t.note("Shape check: adaptive at the smallest band should match or beat static at the same band everywhere, and approach static at 4x the band on gap-rich datasets (16S, Pacbio).");
        t.to_markdown()
    }

    /// Shape assertions shared by tests and EXPERIMENTS.md.
    pub fn shape_holds(&self) -> Result<(), String> {
        for d in &self.datasets {
            // Static accuracy must be monotone in band width.
            for w in d.static_acc.windows(2) {
                if w[1] + 1e-9 < w[0] {
                    return Err(format!(
                        "{}: static accuracy not monotone {:?}",
                        d.name, d.static_acc
                    ));
                }
            }
            // Adaptive at the smallest band >= static at the same band.
            if d.adaptive_acc + 1e-9 < d.static_acc[0] {
                return Err(format!(
                    "{}: adaptive {} < static {}",
                    d.name, d.adaptive_acc, d.static_acc[0]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table1_shape() {
        let t = run(&ReproConfig::quick());
        assert_eq!(t.datasets.len(), 5);
        t.shape_holds().unwrap();
        for d in &t.datasets {
            assert!(d.pairs > 0, "{} empty", d.name);
            for &a in &d.static_acc {
                assert!((0.0..=100.0).contains(&a));
            }
        }
        let md = t.to_markdown();
        assert!(md.contains("S30000"));
        assert!(md.contains("Pacbio"));
    }
}
