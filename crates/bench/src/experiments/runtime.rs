//! Tables 2–4 — runtime on the synthetic pair datasets (§5.2).
//!
//! For each dataset the paper reports: the two Xeon baselines at the CPU
//! band that reaches 100 % accuracy (128/256/512 for S1000/S10000/S30000 —
//! the static band needs doubling as reads grow), and the DPU server at
//! 10/20/40 ranks with the adaptive band fixed at 128.
//!
//! We run the scaled dataset through the full simulated pipeline and
//! extrapolate linearly to the paper's pair counts; the Xeon rows are
//! projected from the DP cells the static band evaluates at measured
//! cells/second (see `cpu-baseline::calibrate`).

use super::{dispatch_config, finish_rows, scaled_pairs, server_sized, xeons, Row};
use crate::tablefmt::{secs, speedup, Table};
use crate::{calibration, ReproConfig, RANK_COUNTS};
use cpu_baseline::Ksw2Aligner;
use datasets::synthetic::{SyntheticParams, SyntheticPreset};
use nw_core::seq::DnaSeq;
use nw_core::ScoringScheme;
use pim_host::modes::align_pairs;
use pim_host::ExecutionReport;

/// The CPU static band minimap2 needs for 100 % accuracy per dataset
/// (Table 1: 128 / 256 / 512).
pub fn cpu_band(preset: SyntheticPreset) -> usize {
    match preset {
        SyntheticPreset::S1000 => 128,
        SyntheticPreset::S10000 => 256,
        SyntheticPreset::S30000 => 512,
    }
}

/// One runtime table (2, 3 or 4).
#[derive(Debug, Clone)]
pub struct RuntimeTable {
    /// Dataset preset.
    pub preset: SyntheticPreset,
    /// Pairs simulated.
    pub sim_pairs: usize,
    /// Linear extrapolation factor to the paper's full pair count.
    pub factor: f64,
    /// Result rows (Xeons first, then DPU rank counts).
    pub rows: Vec<Row>,
    /// The S1000 / S30000 host-overhead observation (§5 text).
    pub host_overhead: f64,
    /// Pipeline utilization of the DPU runs.
    pub utilization: f64,
    /// Reports per rank count (for further inspection).
    pub reports: Vec<(usize, ExecutionReport)>,
}

/// DPUs per simulated rank. The paper's ranks have 64 DPUs; simulating
/// them fully for long reads would need tens of thousands of pairs to keep
/// every DPU loaded (the regime the paper's scaling lives in), so long-read
/// presets use *thin ranks* — fewer DPUs per rank, same 10/20/40 rank
/// counts — and the extrapolation multiplies by the thinning ratio. Rank
/// scaling itself stays a measured quantity.
pub fn sim_dpus_per_rank(cfg: &ReproConfig, preset: SyntheticPreset) -> usize {
    if cfg.quick {
        return 2;
    }
    match preset {
        SyntheticPreset::S1000 => 8,
        SyntheticPreset::S10000 => 2,
        SyntheticPreset::S30000 => 1,
    }
}

/// Run one synthetic dataset's runtime comparison.
pub fn run(cfg: &ReproConfig, preset: SyntheticPreset) -> RuntimeTable {
    let dpus = sim_dpus_per_rank(cfg, preset);
    let max_ranks: usize = if cfg.quick {
        4
    } else {
        *RANK_COUNTS.last().unwrap()
    };
    // >= 2 pool-loads per DPU of the largest simulated server so the
    // rank-scaling shape is measurable (P = 6 pools per DPU).
    let min_pairs = (12 * max_ranks * dpus) as u64;
    let sim_pairs = scaled_pairs(cfg, preset.full_pairs(), min_pairs);
    // CPU rows extrapolate by pair count alone; DPU rows additionally by
    // the rank-thinning ratio (their simulated ranks have `dpus` DPUs).
    let pairs_factor = preset.full_pairs() as f64 / sim_pairs as f64;
    let factor = pairs_factor * (dpus as f64 / 64.0);
    let mut params = SyntheticParams::preset(preset, cfg.seed);
    if cfg.quick {
        params.read_len = preset.read_len().min(600);
    }
    let pairs: Vec<(DnaSeq, DnaSeq)> = params.generate(sim_pairs);

    // --- CPU rows: cells at the CPU band, projected to the Xeons. ---
    let cal = calibration();
    let band = if cfg.quick { 64 } else { cpu_band(preset) };
    let ksw = Ksw2Aligner::new(ScoringScheme::default(), band);
    let sim_cells: u64 = pairs.iter().map(|(a, b)| ksw.cells(a.len(), b.len())).sum();
    let full_cells = (sim_cells as f64 * pairs_factor) as u64;
    let (x4215, x4216) = xeons();
    let mut rows = vec![
        Row {
            label: x4215.label.into(),
            seconds: x4215.seconds(full_cells, cal, true),
            speedup: 1.0,
        },
        Row {
            label: x4216.label.into(),
            seconds: x4216.seconds(full_cells, cal, true),
            speedup: 1.0,
        },
    ];

    // --- DPU rows: full simulated pipeline at 10/20/40 ranks. ---
    let dcfg = dispatch_config(false);
    let mut reports = Vec::new();
    let mut host_overhead = 0.0;
    let mut utilization = 0.0;
    let rank_counts: Vec<usize> = if cfg.quick {
        vec![2, 4]
    } else {
        RANK_COUNTS.to_vec()
    };
    for &ranks in &rank_counts {
        let mut srv = server_sized(ranks, dpus);
        let (report, _results) = align_pairs(&mut srv, &dcfg, &pairs).expect("pipeline run");
        rows.push(Row {
            label: format!("DPU {ranks} ranks"),
            seconds: report.total_seconds() * factor,
            speedup: 1.0,
        });
        host_overhead = report.host_overhead_fraction();
        utilization = report.pipeline_utilization();
        reports.push((ranks, report));
    }

    RuntimeTable {
        preset,
        sim_pairs,
        factor,
        rows: finish_rows(rows),
        host_overhead,
        utilization,
        reports,
    }
}

impl RuntimeTable {
    /// The paper's table for this preset.
    pub fn paper_rows(&self) -> &'static [crate::paper::RuntimeRow; 5] {
        match self.preset {
            SyntheticPreset::S1000 => &crate::paper::TABLE2,
            SyntheticPreset::S10000 => &crate::paper::TABLE3,
            SyntheticPreset::S30000 => &crate::paper::TABLE4,
        }
    }

    /// Table number in the paper.
    pub fn table_no(&self) -> usize {
        match self.preset {
            SyntheticPreset::S1000 => 2,
            SyntheticPreset::S10000 => 3,
            SyntheticPreset::S30000 => 4,
        }
    }

    /// Render with paper values side by side.
    pub fn to_markdown(&self) -> String {
        let title = format!(
            "Table {} — runtime on {} ({} pairs simulated, x{:.0} extrapolation)",
            self.table_no(),
            self.preset.label(),
            self.sim_pairs,
            self.factor
        );
        let mut t = Table::new(
            title,
            &[
                "System",
                "Time (s)",
                "Speedup",
                "Paper time (s)",
                "Paper speedup",
            ],
        );
        let paper = self.paper_rows();
        for (i, row) in self.rows.iter().enumerate() {
            let (p_label, p_secs, p_speed) = paper.get(i).copied().unwrap_or(("-", 0.0, 0.0));
            let _ = p_label;
            t.row(&[
                row.label.clone(),
                secs(row.seconds),
                speedup(row.speedup),
                secs(p_secs),
                speedup(p_speed),
            ]);
        }
        t.note(format!(
            "host overhead {:.1}% (paper: 15% on S1000 shrinking to <0.1% on S30000); pipeline utilization {:.0}%",
            100.0 * self.host_overhead,
            100.0 * self.utilization
        ));
        t.to_markdown()
    }

    /// Shape checks: DPU scales ~linearly with ranks; more ranks never
    /// slower; the largest server beats the 4215 baseline on long reads.
    pub fn shape_holds(&self) -> Result<(), String> {
        let dpu_rows: Vec<&Row> = self
            .rows
            .iter()
            .filter(|r| r.label.starts_with("DPU"))
            .collect();
        for pair in dpu_rows.windows(2) {
            if pair[1].seconds > pair[0].seconds * 1.05 {
                return Err(format!(
                    "more ranks got slower: {} {}s -> {} {}s",
                    pair[0].label, pair[0].seconds, pair[1].label, pair[1].seconds
                ));
            }
            let ratio = pair[0].seconds / pair[1].seconds;
            if !(1.2..=2.6).contains(&ratio) {
                return Err(format!(
                    "rank doubling gave x{ratio:.2} ({} -> {})",
                    pair[0].label, pair[1].label
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_runtime_shape() {
        let cfg = ReproConfig::quick();
        let t = run(&cfg, SyntheticPreset::S1000);
        assert!(t.rows.len() >= 4);
        assert!((t.rows[0].speedup - 1.0).abs() < 1e-9);
        t.shape_holds().unwrap();
        // The 4216 projection must beat the 4215 sublinearly.
        let r4215 = t.rows[0].seconds;
        let r4216 = t.rows[1].seconds;
        assert!(r4216 < r4215);
        assert!(r4215 / r4216 < 2.0);
        assert!(t.to_markdown().contains("Table 2"));
    }

    #[test]
    fn cpu_bands_match_table1() {
        assert_eq!(cpu_band(SyntheticPreset::S1000), 128);
        assert_eq!(cpu_band(SyntheticPreset::S10000), 256);
        assert_eq!(cpu_band(SyntheticPreset::S30000), 512);
    }
}
