//! Figures 1–3 as regenerable artifacts.
//!
//! * Figure 1 — an alignment rendering with one mismatch, one insertion and
//!   one deletion.
//! * Figure 2 — the PiM server topology (the diagram as a table).
//! * Figure 3 — fixed vs adaptive band trajectories over a gapped pair,
//!   as an ASCII heat-map of the DP matrix plus the raw origin series.

use crate::tablefmt::Table;
use nw_core::adaptive::AdaptiveAligner;
use nw_core::banded::BandGeometry;
use nw_core::full::FullAligner;
use nw_core::pretty::Rendering;
use nw_core::seq::DnaSeq;
use nw_core::ScoringScheme;
use pim_sim::server::Topology;
use pim_sim::PimServer;

/// Figure 1: align two short sequences engineered to show a mismatch, an
/// insertion and a deletion, and render them.
pub fn figure1() -> String {
    let a = DnaSeq::from_ascii(b"GATTACAGATTACA").unwrap();
    let b = DnaSeq::from_ascii(b"GCTTACAAGATTAC").unwrap();
    let aln = FullAligner::affine(ScoringScheme::default())
        .align(&a, &b)
        .unwrap();
    let r = Rendering::new(&a, &b, &aln.cigar);
    format!(
        "Figure 1 — two sequences aligned (|: match, *: mismatch, -: gap)\n\n{r}\n\nCIGAR: {}   score: {}\n",
        aln.cigar, aln.score
    )
}

/// Figure 2: the server topology as data.
pub fn figure2() -> String {
    let topo: Topology = PimServer::paper_server().topology();
    let mut t = Table::new(
        "Figure 2 — UPMEM PiM server topology",
        &["Property", "Value", "Paper"],
    );
    t.row(&[
        "PiM DIMMs".into(),
        format!("{}", topo.ranks / 2),
        "20".into(),
    ]);
    t.row(&["Ranks".into(), topo.ranks.to_string(), "40 (2/DIMM)".into()]);
    t.row(&[
        "DPUs per rank".into(),
        topo.dpus_per_rank.to_string(),
        "64".into(),
    ]);
    t.row(&[
        "Total DPUs".into(),
        topo.total_dpus.to_string(),
        "2560".into(),
    ]);
    t.row(&[
        "DPU frequency".into(),
        format!("{} MHz", topo.freq_hz / 1e6),
        "350 MHz".into(),
    ]);
    t.row(&[
        "MRAM per DPU".into(),
        format!("{} MB", topo.mram_per_dpu >> 20),
        "64 MB".into(),
    ]);
    t.row(&[
        "WRAM per DPU".into(),
        format!("{} KB", topo.wram_per_dpu >> 10),
        "64 KB".into(),
    ]);
    t.row(&[
        "Aggregate MRAM bandwidth".into(),
        format!("{:.1} TB/s", topo.aggregate_mram_bandwidth / 1e12),
        "~2 TB/s".into(),
    ]);
    t.to_markdown()
}

/// Figure-3 data: for each anti-diagonal, the adaptive window's row span
/// and, for reference, the static band's span.
#[derive(Debug, Clone)]
pub struct Fig3Data {
    /// Sequence lengths.
    pub m: usize,
    /// Sequence lengths.
    pub n: usize,
    /// Band width used for both heuristics.
    pub band: usize,
    /// Adaptive origins per anti-diagonal.
    pub adaptive_origins: Vec<i64>,
    /// Static band `[d_lo, d_hi]` diagonal bounds.
    pub static_bounds: (i64, i64),
    /// Whether the adaptive run recovered the optimal score.
    pub adaptive_optimal: bool,
}

/// Generate Figure 3's trajectories on a pair with a mid-sequence gap.
pub fn figure3(band: usize) -> Fig3Data {
    let unit = "ACGTGGTCATCGATTACAGGCT";
    let a = DnaSeq::from_ascii(unit.repeat(8).as_bytes()).unwrap();
    let mut btext = unit.repeat(8);
    btext.insert_str(88, &"G".repeat(band / 2 + 8));
    let b = DnaSeq::from_ascii(btext.as_bytes()).unwrap();
    let scheme = ScoringScheme::default();
    let outcome = AdaptiveAligner::new(scheme, band)
        .align_traced(&a, &b)
        .expect("traced run");
    let optimal = FullAligner::affine(scheme).score(&a, &b);
    let geom = BandGeometry::new(a.len(), b.len(), band);
    Fig3Data {
        m: a.len(),
        n: b.len(),
        band,
        adaptive_origins: outcome.trace.origins.clone(),
        static_bounds: (geom.d_lo, geom.d_hi),
        adaptive_optimal: outcome.alignment.score == optimal,
    }
}

impl Fig3Data {
    /// ASCII picture: rows = i (downsampled), cols = j; `#` adaptive band,
    /// `:` static band, `%` both, `.` outside.
    pub fn ascii_art(&self, width: usize) -> String {
        let height = width * self.m / self.n.max(1);
        let mut grid = vec![vec![b'.'; width]; height.max(1)];
        let scale_i = self.m as f64 / height.max(1) as f64;
        let scale_j = self.n as f64 / width as f64;
        for (gy, row) in grid.iter_mut().enumerate() {
            for (gx, cell) in row.iter_mut().enumerate() {
                let i = (gy as f64 * scale_i) as i64;
                let j = (gx as f64 * scale_j) as i64;
                let d = j - i;
                let in_static = d >= self.static_bounds.0 && d <= self.static_bounds.1;
                let t = (i + j) as usize;
                let in_adaptive = self
                    .adaptive_origins
                    .get(t.min(self.adaptive_origins.len() - 1))
                    .map(|&o| i >= o && i < o + self.band as i64)
                    .unwrap_or(false);
                *cell = match (in_adaptive, in_static) {
                    (true, true) => b'%',
                    (true, false) => b'#',
                    (false, true) => b':',
                    (false, false) => b'.',
                };
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "Figure 3 — band trajectories, {}x{} matrix, band {} (#/% adaptive, :/% static)\n",
            self.m, self.n, self.band
        ));
        for row in grid {
            out.push_str(std::str::from_utf8(&row).expect("ascii"));
            out.push('\n');
        }
        out.push_str(&format!(
            "adaptive recovered the optimal score: {} (static cannot reach the corner: |n-m| = {} > {})\n",
            self.adaptive_optimal,
            self.n as i64 - self.m as i64,
            self.band / 2
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shows_all_three_ops() {
        let f = figure1();
        assert!(f.contains('*'), "mismatch marker");
        assert!(f.contains('-'), "gap marker");
        assert!(f.contains("CIGAR"));
    }

    #[test]
    fn figure2_matches_paper_topology() {
        let f = figure2();
        assert!(f.contains("2560"));
        assert!(f.contains("350 MHz"));
    }

    #[test]
    fn figure3_adaptive_tracks_the_gap() {
        let d = figure3(32);
        assert!(d.adaptive_optimal, "adaptive must recover the optimum");
        // The trajectory must end able to cover (m, n).
        let last = *d.adaptive_origins.last().unwrap();
        assert!((0..32).contains(&(d.m as i64 - last)));
        let art = d.ascii_art(60);
        assert!(art.contains('#') || art.contains('%'));
        assert!(art.lines().count() > 10);
    }
}
