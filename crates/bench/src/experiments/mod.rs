//! Experiment implementations, one module per paper artifact.

pub mod ablations;
pub mod figs;
pub mod runtime;
pub mod table1;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;

use crate::ReproConfig;
use cpu_baseline::XeonModel;
use dpu_kernel::{KernelParams, NwKernel};
use pim_host::dispatch::DispatchConfig;
use pim_sim::{PimServer, ServerConfig};

/// The paper's DPU band (adaptive window) — 128 on every dataset.
pub const DPU_BAND: usize = 128;

/// A PiM server with the given rank count and otherwise paper topology.
pub fn server(ranks: usize) -> PimServer {
    PimServer::new(ServerConfig::with_ranks(ranks))
}

/// A PiM server with explicit DPUs per rank — quick (test) runs shrink the
/// ranks so the scaled datasets still load every DPU with several jobs.
pub fn server_sized(ranks: usize, dpus_per_rank: usize) -> PimServer {
    let mut cfg = ServerConfig::with_ranks(ranks);
    cfg.dpus_per_rank = dpus_per_rank;
    PimServer::new(cfg)
}

/// DPUs per rank for a configuration: the paper's 64, or 8 in quick mode.
pub fn dpus_per_rank(cfg: &crate::ReproConfig) -> usize {
    if cfg.quick {
        8
    } else {
        64
    }
}

/// The paper's production host configuration (asm kernel, P=6 T=4).
pub fn dispatch_config(score_only: bool) -> DispatchConfig {
    let params = KernelParams {
        band: DPU_BAND,
        score_only,
        ..KernelParams::paper_default()
    };
    let mut cfg = DispatchConfig::new(NwKernel::paper_default(), params);
    // One FIFO round per rank: at simulation scale, extra rounds only add
    // pool-wave quantization noise to the scaling measurement.
    cfg.rounds = 1;
    cfg
}

/// The two Xeon baselines.
pub fn xeons() -> (XeonModel, XeonModel) {
    (XeonModel::xeon_4215(), XeonModel::xeon_4216())
}

/// A generic result row: label, extrapolated full-scale seconds, speedup
/// vs the first row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// System label.
    pub label: String,
    /// Projected seconds at the paper's full dataset size.
    pub seconds: f64,
    /// Speedup vs the table's baseline (first row).
    pub speedup: f64,
}

/// Compute speedups relative to the first row.
pub fn finish_rows(mut rows: Vec<Row>) -> Vec<Row> {
    if let Some(base) = rows.first().map(|r| r.seconds) {
        for r in &mut rows {
            r.speedup = base / r.seconds;
        }
    }
    rows
}

/// Effective pair count for a scaled synthetic dataset: full count divided
/// by scale, floored to something that still spreads over the DPUs.
pub fn scaled_pairs(cfg: &ReproConfig, full: u64, min_pairs: u64) -> usize {
    (full / cfg.scale).max(min_pairs) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_rows_normalizes_to_first() {
        let rows = finish_rows(vec![
            Row {
                label: "a".into(),
                seconds: 10.0,
                speedup: 0.0,
            },
            Row {
                label: "b".into(),
                seconds: 5.0,
                speedup: 0.0,
            },
        ]);
        assert_eq!(rows[0].speedup, 1.0);
        assert_eq!(rows[1].speedup, 2.0);
    }

    #[test]
    fn scaled_pairs_floors() {
        let cfg = ReproConfig {
            scale: 1000,
            ..ReproConfig::default()
        };
        assert_eq!(scaled_pairs(&cfg, 10_000_000, 64), 10_000);
        assert_eq!(scaled_pairs(&cfg, 100, 64), 64);
    }

    #[test]
    fn server_topology() {
        assert_eq!(server(10).rank_count(), 10);
        assert_eq!(server(10).cfg().dpus_per_rank, 64);
    }
}
