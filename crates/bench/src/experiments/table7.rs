//! Table 7 — hand-optimized assembly vs pure C DPU kernels (§5.5).
//!
//! The same five workloads run twice, once per kernel build; the speedup is
//! the ratio of simulated DPU times. The per-cell instruction counts behind
//! the timing are *measured* by interpreting the two inner loops in the
//! mini DPU ISA (`dpu-kernel::isa_loops`), so the table emerges from the
//! instruction streams.

use super::{dpus_per_rank, server_sized, DPU_BAND};
use crate::tablefmt::{secs, Table};
use crate::ReproConfig;
use datasets::pacbio::PacbioParams;
use datasets::sixteen_s::SixteenSParams;
use datasets::synthetic::{SyntheticParams, SyntheticPreset};
use datasets::ErrorModel;
use dpu_kernel::{CellCosts, KernelParams, KernelVariant, NwKernel, PoolConfig};
use pim_host::dispatch::DispatchConfig;
use pim_host::modes::{align_pairs, align_sets, all_vs_all};

/// One dataset's asm-vs-C comparison.
#[derive(Debug, Clone)]
pub struct VariantRow {
    /// Dataset label.
    pub name: &'static str,
    /// Simulated seconds with the pure C kernel (extrapolated).
    pub pure_c: f64,
    /// Simulated seconds with the asm kernel (extrapolated).
    pub asm: f64,
}

impl VariantRow {
    /// The speedup (Table 7's bottom row).
    pub fn speedup(&self) -> f64 {
        self.pure_c / self.asm
    }
}

/// Table 7 result.
#[derive(Debug, Clone)]
pub struct Table7 {
    /// Per-dataset rows.
    pub rows: Vec<VariantRow>,
    /// Measured instructions/cell: (C with BT, asm with BT, C score-only,
    /// asm score-only).
    pub instr_per_cell: (f64, f64, f64, f64),
}

fn kernel(variant: KernelVariant) -> NwKernel {
    NwKernel::new(PoolConfig::default(), variant)
}

fn config(variant: KernelVariant, score_only: bool, quick: bool) -> DispatchConfig {
    let band = if quick { 32 } else { DPU_BAND };
    let params = KernelParams {
        band,
        score_only,
        ..KernelParams::paper_default()
    };
    DispatchConfig::new(kernel(variant), params)
}

/// Run Table 7.
pub fn run(cfg: &ReproConfig) -> Table7 {
    let ranks = if cfg.quick { 2 } else { 4 };
    let dpus = dpus_per_rank(cfg);
    let (n1, n2, n3, n16, npb) = if cfg.quick {
        (12, 2, 1, 12, 2)
    } else {
        (192, 24, 8, 72, 4)
    };
    let len_cap = if cfg.quick { 400 } else { usize::MAX };

    let mut rows = Vec::new();
    // The three synthetic pair datasets.
    for (preset, count) in [
        (SyntheticPreset::S1000, n1),
        (SyntheticPreset::S10000, n2),
        (SyntheticPreset::S30000, n3),
    ] {
        let mut p = SyntheticParams::preset(preset, cfg.seed + 70);
        p.read_len = p.read_len.min(len_cap);
        let pairs = p.generate(count);
        let time = |variant: KernelVariant| -> f64 {
            let c = config(variant, false, cfg.quick);
            let mut srv = server_sized(ranks, dpus);
            let (report, _) = align_pairs(&mut srv, &c, &pairs).expect("run");
            report.dpu_seconds
        };
        rows.push(VariantRow {
            name: preset.label(),
            pure_c: time(KernelVariant::PureC),
            asm: time(KernelVariant::Asm),
        });
    }
    // 16S (score-only).
    {
        let seqs = SixteenSParams {
            count: n16,
            root_len: if cfg.quick { 300 } else { 1542 },
            branch_divergence: 0.02,
            seed: cfg.seed + 71,
        }
        .generate();
        let time = |variant: KernelVariant| -> f64 {
            let c = config(variant, true, cfg.quick);
            let mut srv = server_sized(ranks, dpus);
            let (report, _) = all_vs_all(&mut srv, &c, &seqs).expect("run");
            report.dpu_seconds
        };
        rows.push(VariantRow {
            name: "16S",
            pure_c: time(KernelVariant::PureC),
            asm: time(KernelVariant::Asm),
        });
    }
    // PacBio (sets, with CIGAR).
    {
        let sets = PacbioParams {
            sets: npb,
            region_len: if cfg.quick {
                (300, 500)
            } else {
                (2_000, 6_000)
            },
            reads_per_set: (4, 8),
            error: ErrorModel::pacbio_raw(),
            seed: cfg.seed + 72,
        }
        .generate();
        let read_sets: Vec<Vec<nw_core::seq::DnaSeq>> =
            sets.iter().map(|s| s.reads.clone()).collect();
        let time = |variant: KernelVariant| -> f64 {
            let c = config(variant, false, cfg.quick);
            let mut srv = server_sized(ranks, dpus);
            let (report, _) = align_sets(&mut srv, &c, &read_sets).expect("run");
            report.dpu_seconds
        };
        rows.push(VariantRow {
            name: "Pacbio",
            pure_c: time(KernelVariant::PureC),
            asm: time(KernelVariant::Asm),
        });
    }

    let c_costs = CellCosts::for_variant(KernelVariant::PureC);
    let a_costs = CellCosts::for_variant(KernelVariant::Asm);
    Table7 {
        rows,
        instr_per_cell: (
            c_costs.cell_with_bt,
            a_costs.cell_with_bt,
            c_costs.cell_score_only,
            a_costs.cell_score_only,
        ),
    }
}

impl Table7 {
    /// Render with paper values.
    pub fn to_markdown(&self) -> String {
        let mut t = Table::new(
            "Table 7 — pure C vs hand-optimized asm kernel",
            &[
                "Dataset",
                "Pure C (s)",
                "Asm (s)",
                "Speedup",
                "Paper speedup",
            ],
        );
        for row in &self.rows {
            let paper = crate::paper::TABLE7
                .iter()
                .find(|p| p.0 == row.name)
                .map(|p| p.3)
                .unwrap_or(0.0);
            t.row(&[
                row.name.into(),
                secs(row.pure_c),
                secs(row.asm),
                format!("{:.2}", row.speedup()),
                format!("{paper:.2}"),
            ]);
        }
        let (cb, ab, cs, aso) = self.instr_per_cell;
        t.note(format!(
            "measured instructions/cell — with BT: C {cb:.1} vs asm {ab:.1} (x{:.2}); score-only: C {cs:.1} vs asm {aso:.1} (x{:.2})",
            cb / ab,
            cs / aso
        ));
        t.to_markdown()
    }

    /// Shape checks: asm always wins, within the paper's 1.3–1.9 envelope,
    /// and the score-only dataset (16S) gains least among CIGAR-producing
    /// rows' neighbourhood.
    pub fn shape_holds(&self) -> Result<(), String> {
        for row in &self.rows {
            let s = row.speedup();
            if !(1.1..=2.1).contains(&s) {
                return Err(format!(
                    "{}: speedup {s:.2} outside plausible band",
                    row.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table7_shape() {
        let t = run(&ReproConfig::quick());
        assert_eq!(t.rows.len(), 5);
        t.shape_holds().unwrap();
        for row in &t.rows {
            assert!(
                row.pure_c > row.asm,
                "{}: C {} !> asm {}",
                row.name,
                row.pure_c,
                row.asm
            );
        }
        assert!(t.to_markdown().contains("Table 7"));
    }
}
