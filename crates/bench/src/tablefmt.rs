//! Markdown table rendering for the harness output.

/// A simple markdown table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a footnote line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.header));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out
    }
}

/// Format seconds compactly.
pub fn secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.3}")
    }
}

/// Format a speedup factor.
pub fn speedup(x: f64) -> String {
    format!("{x:.1}x")
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{x:.0}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["bb".into(), "22".into()]);
        t.note("a note");
        let md = t.to_markdown();
        assert!(md.starts_with("### Demo"));
        assert!(md.contains("| name  | value |"));
        assert!(md.contains("| alpha | 1     |"));
        assert!(md.contains("> a note"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new("x", &["a", "b"]).row(&["only one".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(secs(1234.5), "1234");
        assert_eq!(secs(12.34), "12.3");
        assert_eq!(secs(0.1234), "0.123");
        assert_eq!(speedup(9.33), "9.3x");
        assert_eq!(pct(85.4), "85%");
    }
}
