//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale N] [--seed S] [--quick] <command>
//!
//! commands:
//!   table1 .. table8    one table
//!   fig1 fig2 fig3      one figure
//!   ablation-pt         P x T tasklet sweep
//!   ablation-balance    LPT vs round-robin
//!   ablation-encode     2-bit vs ASCII transfers
//!   all                 everything, in paper order
//! ```

use bench::experiments::{ablations, figs, runtime, table1, table5, table6, table7, table8};
use bench::ReproConfig;
use datasets::synthetic::SyntheticPreset;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale N] [--seed S] [--quick] \
         <table1..table8|fig1|fig2|fig3|ablation-pt|ablation-balance|ablation-encode|ablation-hetero|all>"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut cfg = ReproConfig::default();
    let mut command: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                cfg.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                if cfg.scale == 0 {
                    eprintln!("--scale must be >= 1");
                    return ExitCode::from(2);
                }
            }
            "--seed" => {
                cfg.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--quick" => cfg.quick = true,
            "--help" | "-h" => usage(),
            cmd if command.is_none() && !cmd.starts_with('-') => command = Some(cmd.to_string()),
            _ => usage(),
        }
    }
    let command = command.unwrap_or_else(|| usage());

    eprintln!(
        "# repro {command} (scale 1/{}, seed {:#x}{})",
        cfg.scale,
        cfg.seed,
        if cfg.quick { ", quick" } else { "" }
    );
    let cal = bench::calibration();
    eprintln!(
        "# Xeon projection rates: {:.0}M cells/s/core (traceback), {:.0}M (score-only){}",
        cal.cells_per_second_bt / 1e6,
        cal.cells_per_second_score / 1e6,
        if std::env::var_os("REPRO_LOCAL_CALIBRATION").is_some() {
            " [locally measured]"
        } else {
            " [paper-anchored reference; REPRO_LOCAL_CALIBRATION=1 to measure]"
        }
    );
    let start = std::time::Instant::now();
    match command.as_str() {
        "table1" => run_table1(&cfg),
        "table2" => run_runtime(&cfg, SyntheticPreset::S1000),
        "table3" => run_runtime(&cfg, SyntheticPreset::S10000),
        "table4" => run_runtime(&cfg, SyntheticPreset::S30000),
        "table5" => run_table5(&cfg),
        "table6" => run_table6(&cfg),
        "table7" => run_table7(&cfg),
        "table8" => run_table8(&cfg),
        "fig1" => println!("{}", figs::figure1()),
        "fig2" => println!("{}", figs::figure2()),
        "fig3" => run_fig3(&cfg),
        "ablation-pt" => println!("{}", ablations::pt_markdown(&ablations::pt_sweep(&cfg))),
        "ablation-balance" => {
            println!("{}", ablations::balance_markdown(&ablations::balance(&cfg)))
        }
        "ablation-encode" => println!("{}", ablations::encode_markdown(&ablations::encode(&cfg))),
        "ablation-hetero" => {
            println!("{}", ablations::hetero_markdown(&ablations::hetero(&cfg)))
        }
        "all" => {
            println!("{}", figs::figure1());
            println!("{}", figs::figure2());
            run_fig3(&cfg);
            run_table1(&cfg);
            run_runtime(&cfg, SyntheticPreset::S1000);
            run_runtime(&cfg, SyntheticPreset::S10000);
            run_runtime(&cfg, SyntheticPreset::S30000);
            run_table8(&cfg); // runs tables 5 and 6 internally, prints all three
            run_table7(&cfg);
            println!("{}", ablations::pt_markdown(&ablations::pt_sweep(&cfg)));
            println!("{}", ablations::balance_markdown(&ablations::balance(&cfg)));
            println!("{}", ablations::encode_markdown(&ablations::encode(&cfg)));
            println!("{}", ablations::hetero_markdown(&ablations::hetero(&cfg)));
        }
        _ => usage(),
    }
    eprintln!("# done in {:.1}s", start.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}

fn run_table1(cfg: &ReproConfig) {
    let t = table1::run(cfg);
    println!("{}", t.to_markdown());
    if let Err(e) = t.shape_holds() {
        eprintln!("!! Table 1 shape check failed: {e}");
    }
}

fn run_runtime(cfg: &ReproConfig, preset: SyntheticPreset) {
    let t = runtime::run(cfg, preset);
    println!("{}", t.to_markdown());
    if let Err(e) = t.shape_holds() {
        eprintln!("!! Table {} shape check failed: {e}", t.table_no());
    }
}

fn run_table5(cfg: &ReproConfig) {
    let t = table5::run(cfg);
    println!("{}", t.to_markdown());
    if let Err(e) = t.shape_holds() {
        eprintln!("!! Table 5 shape check failed: {e}");
    }
}

fn run_table6(cfg: &ReproConfig) {
    let t = table6::run(cfg);
    println!("{}", t.to_markdown());
    if let Err(e) = t.shape_holds() {
        eprintln!("!! Table 6 shape check failed: {e}");
    }
}

fn run_table7(cfg: &ReproConfig) {
    let t = table7::run(cfg);
    println!("{}", t.to_markdown());
    if let Err(e) = t.shape_holds() {
        eprintln!("!! Table 7 shape check failed: {e}");
    }
}

fn run_table8(cfg: &ReproConfig) {
    let (t8, t5, t6) = table8::run(cfg);
    println!("{}", t5.to_markdown());
    if let Err(e) = t5.shape_holds() {
        eprintln!("!! Table 5 shape check failed: {e}");
    }
    println!("{}", t6.to_markdown());
    if let Err(e) = t6.shape_holds() {
        eprintln!("!! Table 6 shape check failed: {e}");
    }
    println!("{}", t8.to_markdown());
    if let Err(e) = t8.shape_holds() {
        eprintln!("!! Table 8 shape check failed: {e}");
    }
}

fn run_fig3(cfg: &ReproConfig) {
    let band = if cfg.quick { 16 } else { 64 };
    let d = figs::figure3(band);
    println!("{}", d.ascii_art(72));
    println!(
        "adaptive origins (every 32nd anti-diagonal): {:?}",
        d.adaptive_origins.iter().step_by(32).collect::<Vec<_>>()
    );
}
