//! # bench — the reproduction harness
//!
//! One generator per table and figure of the paper's evaluation (§5). The
//! `repro` binary drives these and prints paper-vs-measured markdown; the
//! integration tests call them at `quick` sizes and assert the *shapes*
//! (who wins, scaling direction, crossover ordering) rather than absolute
//! numbers.
//!
//! | Artifact | Module | Paper section |
//! |---|---|---|
//! | Table 1 (accuracy static vs adaptive) | [`experiments::table1`] | §5.1 |
//! | Tables 2–4 (S1000/S10000/S30000 runtime) | [`experiments::runtime`] | §5.2 |
//! | Table 5 (16S all-vs-all) | [`experiments::table5`] | §5.3 |
//! | Table 6 (PacBio sets) | [`experiments::table6`] | §5.4 |
//! | Table 7 (asm vs pure C kernels) | [`experiments::table7`] | §5.5 |
//! | Table 8 (energy) | [`experiments::table8`] | §5.6 |
//! | Figure 2 (server topology) | [`experiments::figs`] | §2.1 |
//! | Figure 3 (band trajectories) | [`experiments::figs`] | §3.4 |
//! | P×T, balancing, encoding ablations | [`experiments::ablations`] | §4 |

pub mod experiments;
pub mod harness;
pub mod paper;
pub mod tablefmt;

use cpu_baseline::Calibration;
use std::sync::OnceLock;

/// Shared configuration for every experiment.
#[derive(Debug, Clone, Copy)]
pub struct ReproConfig {
    /// Dataset divisor relative to the paper's full sizes (see
    /// EXPERIMENTS.md; totals are extrapolated back linearly).
    pub scale: u64,
    /// Master seed for all generators.
    pub seed: u64,
    /// Use tiny sizes — for integration tests, not for reproduction runs.
    pub quick: bool,
}

impl Default for ReproConfig {
    fn default() -> Self {
        Self {
            scale: 2000,
            seed: 0xBA5E,
            quick: false,
        }
    }
}

impl ReproConfig {
    /// The quick (test) configuration.
    pub fn quick() -> Self {
        Self {
            scale: 200_000,
            seed: 0xBA5E,
            quick: true,
        }
    }
}

/// The Xeon-projection calibration.
///
/// By default this is [`Calibration::reference`] — per-core rates anchored
/// to the paper's own tables (its 4215 rows imply ~4.4 G cells/s with
/// traceback and ~6 G score-only across datasets) — so the CPU/DPU ratios
/// under test do not depend on how fast *this* machine happens to be. Set
/// `REPRO_LOCAL_CALIBRATION=1` to project from this machine's measured
/// throughput instead (reported for transparency either way).
pub fn calibration() -> &'static Calibration {
    static CAL: OnceLock<Calibration> = OnceLock::new();
    CAL.get_or_init(|| {
        if std::env::var_os("REPRO_LOCAL_CALIBRATION").is_some() {
            Calibration::measure(30_000_000)
        } else {
            Calibration::reference()
        }
    })
}

/// This machine's measured throughput (diagnostic; printed by `repro`).
pub fn local_calibration() -> Calibration {
    Calibration::measure(10_000_000)
}

/// Rank counts evaluated by the paper.
pub const RANK_COUNTS: [usize; 3] = [10, 20, 40];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_docs() {
        let c = ReproConfig::default();
        assert_eq!(c.scale, 2000);
        assert!(!c.quick);
        assert!(ReproConfig::quick().quick);
    }

    #[test]
    fn calibration_is_cached() {
        let a = calibration();
        let b = calibration();
        assert!(std::ptr::eq(a, b));
        assert!(a.cells_per_second_bt > 0.0);
    }
}
