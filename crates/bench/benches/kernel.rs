//! Criterion benchmarks of the simulated DPU kernel: simulation throughput
//! for the two kernel variants and the two output modes — the machinery
//! behind Tables 2–7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datasets::mutate::{mutate, ErrorModel};
use datasets::{random_seq, rng};
use dpu_kernel::{JobBatchBuilder, KernelParams, KernelVariant, NwKernel, PoolConfig};
use nw_core::seq::DnaSeq;
use pim_sim::dpu::Kernel;
use pim_sim::{Dpu, DpuConfig};
use std::hint::black_box;

fn loaded_dpu(pairs: &[(DnaSeq, DnaSeq)], params: KernelParams, pools: usize) -> (Dpu, dpu_kernel::JobBatch) {
    let mut builder = JobBatchBuilder::new(params, pools);
    for (a, b) in pairs {
        builder.add_pair(a.pack(), b.pack());
    }
    let mut dpu = Dpu::new(DpuConfig::default());
    let batch = builder.build(dpu.cfg.mram_size).unwrap();
    dpu.mram.host_write(0, &batch.image).unwrap();
    (dpu, batch)
}

fn bench_kernel(c: &mut Criterion) {
    let mut r = rng(3);
    let model = ErrorModel::uniform(0.02);
    let pairs: Vec<(DnaSeq, DnaSeq)> = (0..6)
        .map(|_| {
            let a = random_seq(&mut r, 1000);
            let (b, _) = mutate(&a, &model, &mut r);
            (a, b)
        })
        .collect();
    let workload: u64 = pairs.iter().map(|(a, b)| ((a.len() + b.len()) * 128) as u64).sum();

    let mut group = c.benchmark_group("dpu_kernel");
    group.sample_size(10);
    group.throughput(Throughput::Elements(workload));
    for variant in [KernelVariant::Asm, KernelVariant::PureC] {
        for score_only in [false, true] {
            let label = format!(
                "{}_{}",
                if variant == KernelVariant::Asm { "asm" } else { "c" },
                if score_only { "score" } else { "cigar" }
            );
            let params = KernelParams { band: 128, score_only, ..KernelParams::paper_default() };
            group.bench_with_input(BenchmarkId::new("variant", label), &variant, |bench, &v| {
                let kernel = NwKernel::new(PoolConfig::default(), v);
                bench.iter_batched(
                    || loaded_dpu(&pairs, params, kernel.pool_cfg.pools),
                    |(mut dpu, _batch)| {
                        kernel.run(&mut dpu).unwrap();
                        black_box(dpu.stats.cycles)
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();

    // Pool-configuration sensitivity (the P x T ablation's kernel-side cost).
    let mut group = c.benchmark_group("pool_config");
    group.sample_size(10);
    let params = KernelParams { band: 128, ..KernelParams::paper_default() };
    for (pools, tasklets) in [(6usize, 4usize), (1, 16), (8, 1)] {
        let kernel = NwKernel::new(PoolConfig { pools, tasklets }, KernelVariant::Asm);
        group.bench_with_input(
            BenchmarkId::new("pt", format!("{pools}x{tasklets}")),
            &kernel,
            |bench, kernel| {
                bench.iter_batched(
                    || loaded_dpu(&pairs, params, kernel.pool_cfg.pools),
                    |(mut dpu, _)| {
                        kernel.run(&mut dpu).unwrap();
                        black_box(dpu.stats.cycles)
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
