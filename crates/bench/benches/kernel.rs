//! Benchmarks of the simulated DPU kernel: simulation throughput for the
//! two kernel variants and the two output modes — the machinery behind
//! Tables 2–7.

use bench::harness::Harness;
use datasets::mutate::{mutate, ErrorModel};
use datasets::{random_seq, rng};
use dpu_kernel::{JobBatchBuilder, KernelParams, KernelVariant, NwKernel, PoolConfig};
use nw_core::seq::DnaSeq;
use pim_sim::dpu::Kernel;
use pim_sim::{Dpu, DpuConfig};

fn loaded_dpu(
    pairs: &[(DnaSeq, DnaSeq)],
    params: KernelParams,
    pools: usize,
) -> (Dpu, dpu_kernel::JobBatch) {
    let mut builder = JobBatchBuilder::new(params, pools);
    for (a, b) in pairs {
        builder.add_pair(a.pack(), b.pack());
    }
    let mut dpu = Dpu::new(DpuConfig::default());
    let batch = builder.build(dpu.cfg.mram_size).unwrap();
    dpu.mram.host_write(0, &batch.image).unwrap();
    (dpu, batch)
}

fn main() {
    let mut h = Harness::from_env();
    let mut r = rng(3);
    let model = ErrorModel::uniform(0.02);
    let pairs: Vec<(DnaSeq, DnaSeq)> = (0..6)
        .map(|_| {
            let a = random_seq(&mut r, 1000);
            let (b, _) = mutate(&a, &model, &mut r);
            (a, b)
        })
        .collect();
    let workload: u64 = pairs
        .iter()
        .map(|(a, b)| ((a.len() + b.len()) * 128) as u64)
        .sum();

    let mut group = h.group("dpu_kernel");
    group.throughput_elements(workload);
    for variant in [KernelVariant::Asm, KernelVariant::PureC] {
        for score_only in [false, true] {
            let label = format!(
                "{}_{}",
                if variant == KernelVariant::Asm {
                    "asm"
                } else {
                    "c"
                },
                if score_only { "score" } else { "cigar" }
            );
            let params = KernelParams {
                band: 128,
                score_only,
                ..KernelParams::paper_default()
            };
            let kernel = NwKernel::new(PoolConfig::default(), variant);
            group.bench_batched(
                &format!("variant/{label}"),
                || loaded_dpu(&pairs, params, kernel.pool_cfg.pools),
                |(mut dpu, _batch)| {
                    kernel.run(&mut dpu).unwrap();
                    dpu.stats.cycles
                },
            );
        }
    }

    // Pool-configuration sensitivity (the P x T ablation's kernel-side cost).
    let mut group = h.group("pool_config");
    let params = KernelParams {
        band: 128,
        ..KernelParams::paper_default()
    };
    for (pools, tasklets) in [(6usize, 4usize), (1, 16), (8, 1)] {
        let kernel = NwKernel::new(PoolConfig { pools, tasklets }, KernelVariant::Asm);
        group.bench_batched(
            &format!("pt/{pools}x{tasklets}"),
            || loaded_dpu(&pairs, params, kernel.pool_cfg.pools),
            |(mut dpu, _)| {
                kernel.run(&mut dpu).unwrap();
                dpu.stats.cycles
            },
        );
    }
}
