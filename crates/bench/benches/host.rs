//! Benchmarks of the host-side machinery: 2-bit encoding throughput
//! (§4.1.1), LPT balancing (§4.1.2), and batch-image construction — the
//! "host overhead" components of §5.

use bench::harness::Harness;
use datasets::{random_seq, rng};
use dpu_kernel::{JobBatchBuilder, KernelParams};
use nw_core::seq::DnaSeq;
use pim_host::balance::{lpt_assign, round_robin_assign};
use pim_host::encode::Encoder;

fn main() {
    let mut h = Harness::from_env();

    // --- Encoding ---
    let mut r = rng(1);
    let seq = random_seq(&mut r, 100_000);
    let ascii = seq.to_ascii();
    let mut group = h.group("encode");
    group.throughput_bytes(ascii.len() as u64);
    group.bench("ascii_to_2bit", || {
        let mut enc = Encoder::new(0);
        enc.encode_ascii(&ascii).unwrap().byte_len()
    });
    group.bench("parse_then_pack", || {
        DnaSeq::from_ascii(&ascii).unwrap().pack().byte_len()
    });

    // --- Load balancing ---
    let workloads: Vec<u64> = (0..10_000u64).map(|i| (i * 7919) % 4000 + 100).collect();
    let mut group = h.group("balance");
    group.throughput_elements(workloads.len() as u64);
    for bins in [64usize, 2560] {
        group.bench(&format!("lpt/{bins}"), || {
            lpt_assign(&workloads, bins).len()
        });
        group.bench(&format!("round_robin/{bins}"), || {
            round_robin_assign(workloads.len(), bins).len()
        });
    }

    // --- Batch image construction ---
    let mut r = rng(2);
    let pairs: Vec<(DnaSeq, DnaSeq)> = (0..32)
        .map(|_| (random_seq(&mut r, 1000), random_seq(&mut r, 1000)))
        .collect();
    let mut group = h.group("batch_build");
    group.bench("32x1kb_pairs", || {
        let mut b = JobBatchBuilder::new(KernelParams::paper_default(), 6);
        for (x, y) in &pairs {
            b.add_pair(x.pack(), y.pack());
        }
        b.build(64 << 20).unwrap().image.len()
    });
}
