//! Criterion benchmarks of the host-side machinery: 2-bit encoding
//! throughput (§4.1.1), LPT balancing (§4.1.2), and batch-image
//! construction — the "host overhead" components of §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datasets::{random_seq, rng};
use dpu_kernel::{JobBatchBuilder, KernelParams};
use nw_core::seq::DnaSeq;
use pim_host::balance::{lpt_assign, round_robin_assign};
use pim_host::encode::Encoder;
use std::hint::black_box;

fn bench_host(c: &mut Criterion) {
    // --- Encoding ---
    let mut r = rng(1);
    let seq = random_seq(&mut r, 100_000);
    let ascii = seq.to_ascii();
    let mut group = c.benchmark_group("encode");
    group.throughput(Throughput::Bytes(ascii.len() as u64));
    group.bench_function("ascii_to_2bit", |bench| {
        bench.iter(|| {
            let mut enc = Encoder::new(0);
            black_box(enc.encode_ascii(&ascii).unwrap().byte_len())
        });
    });
    group.bench_function("parse_then_pack", |bench| {
        bench.iter(|| black_box(DnaSeq::from_ascii(&ascii).unwrap().pack().byte_len()));
    });
    group.finish();

    // --- Load balancing ---
    let workloads: Vec<u64> = (0..10_000u64).map(|i| (i * 7919) % 4000 + 100).collect();
    let mut group = c.benchmark_group("balance");
    group.throughput(Throughput::Elements(workloads.len() as u64));
    for bins in [64usize, 2560] {
        group.bench_with_input(BenchmarkId::new("lpt", bins), &bins, |bench, &bins| {
            bench.iter(|| black_box(lpt_assign(&workloads, bins).len()));
        });
        group.bench_with_input(BenchmarkId::new("round_robin", bins), &bins, |bench, &bins| {
            bench.iter(|| black_box(round_robin_assign(workloads.len(), bins).len()));
        });
    }
    group.finish();

    // --- Batch image construction ---
    let mut r = rng(2);
    let pairs: Vec<(DnaSeq, DnaSeq)> = (0..32)
        .map(|_| (random_seq(&mut r, 1000), random_seq(&mut r, 1000)))
        .collect();
    let mut group = c.benchmark_group("batch_build");
    group.sample_size(20);
    group.bench_function("32x1kb_pairs", |bench| {
        bench.iter(|| {
            let mut b = JobBatchBuilder::new(KernelParams::paper_default(), 6);
            for (x, y) in &pairs {
                b.add_pair(x.pack(), y.pack());
            }
            black_box(b.build(64 << 20).unwrap().image.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_host);
criterion_main!(benches);
