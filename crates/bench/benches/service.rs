//! Benchmarks of the serving path: the wire-protocol parse, admission
//! queue operations, and the persistent engine's submit→pump round trip
//! that the daemon drives for every request.

use bench::harness::Harness;
use datasets::synthetic::{SyntheticParams, SyntheticPreset};
use dpu_kernel::{KernelParams, NwKernel};
use nw_core::ScoringScheme;
use pim_sim::{PimServer, ServerConfig};
use std::time::{Duration, Instant};
use upmem_nw_service::json::Json;
use upmem_nw_service::{proto, Admission, AdmissionQueue, Priority, Queued};

fn main() {
    let mut h = Harness::from_env();

    let pairs = SyntheticParams::preset(SyntheticPreset::S1000, 42).generate(4);
    let ascii: Vec<(String, String)> = pairs
        .iter()
        .map(|(a, b)| {
            (
                String::from_utf8(a.to_ascii()).unwrap(),
                String::from_utf8(b.to_ascii()).unwrap(),
            )
        })
        .collect();

    // --- Wire protocol: one 4-pair request line, parse and re-emit ---
    let line = proto::align_line("bench-0", Priority::Normal, Some(500), &ascii);
    let mut group = h.group("serve_proto");
    group.throughput_bytes(line.len() as u64);
    group.bench("parse_align_line", || {
        proto::parse_line(&line).expect("parses")
    });
    group.bench("json_parse_only", || Json::parse(&line).expect("parses"));

    // --- Admission queue: admit + pop at the daemon's default bounds ---
    let req = match proto::parse_line(&line).unwrap() {
        proto::ClientLine::Align(r) => r,
        _ => unreachable!(),
    };
    let mut group = h.group("serve_admission");
    group.throughput_elements(64);
    group.bench("admit_pop_64", || {
        let mut q = AdmissionQueue::new(64, 4096);
        let now = Instant::now();
        for _ in 0..64 {
            let queued = Queued {
                req: req.clone(),
                conn: 0,
                arrival: now,
                deadline: None,
                seq: None,
            };
            match q.admit(queued) {
                Admission::Admitted => {}
                other => panic!("unexpected admission outcome: {other:?}"),
            }
        }
        let mut popped = 0usize;
        while q.pop_next().is_some() {
            popped += 1;
        }
        popped
    });

    // --- Persistent engine: the submit→pump round trip per request ---
    let mut cfg = ServerConfig::with_ranks(2);
    cfg.dpus_per_rank = 4;
    let mut server = PimServer::new(cfg);
    let params = KernelParams {
        band: 64,
        scheme: ScoringScheme::default(),
        score_only: false,
    };
    let kernel = NwKernel::paper_default();
    let rcfg = pim_host::RecoveryConfig::default();
    let packed: Vec<_> = pairs.iter().map(|(a, b)| (a.pack(), b.pack())).collect();
    pim_host::with_persistent_engine(&mut server, &kernel, params, &rcfg, 2, 0, |ctl| {
        let mut group = h.group("serve_engine");
        group.throughput_elements(packed.len() as u64);
        group.bench("submit_pump_4x1kb", || {
            let ticket = ctl.submit(packed.clone());
            loop {
                for done in ctl.pump(Duration::from_millis(25)) {
                    if done.ticket == ticket {
                        assert!(!done.cancelled);
                        return done.results.len();
                    }
                }
            }
        });
    });
}
