//! Criterion microbenchmarks of the alignment kernels themselves: cells per
//! second of the exact, static banded (KSW2-style) and adaptive banded
//! aligners — the per-cell costs behind Tables 2–6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cpu_baseline::Ksw2Aligner;
use datasets::mutate::{mutate, ErrorModel};
use datasets::{random_seq, rng};
use nw_core::adaptive::AdaptiveAligner;
use nw_core::banded::BandedAligner;
use nw_core::full::FullAligner;
use nw_core::wfa::{Penalties, WfaAligner};
use nw_core::seq::DnaSeq;
use nw_core::ScoringScheme;
use std::hint::black_box;

fn pair(len: usize, seed: u64) -> (DnaSeq, DnaSeq) {
    let mut r = rng(seed);
    let a = random_seq(&mut r, len);
    let (b, _) = mutate(&a, &ErrorModel::uniform(0.02), &mut r);
    (a, b)
}

fn bench_aligners(c: &mut Criterion) {
    let scheme = ScoringScheme::default();
    let band = 128usize;
    let mut group = c.benchmark_group("score_per_cell");
    group.sample_size(10);
    for len in [1_000usize, 4_000] {
        let (a, b) = pair(len, 42);
        let banded_cells = BandedAligner::new(scheme, band)
            .score(&a, &b)
            .map(|_| ((a.len() + b.len()) / 2) as u64 * (band as u64 + 1))
            .unwrap_or(0);
        group.throughput(Throughput::Elements(banded_cells));
        group.bench_with_input(BenchmarkId::new("static_banded", len), &len, |bench, _| {
            let al = BandedAligner::new(scheme, band);
            bench.iter(|| black_box(al.score(&a, &b).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("ksw2_profile", len), &len, |bench, _| {
            let al = Ksw2Aligner::new(scheme, band);
            bench.iter(|| black_box(al.score(&a, &b).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("adaptive", len), &len, |bench, _| {
            let al = AdaptiveAligner::new(scheme, band);
            bench.iter(|| black_box(al.score(&a, &b).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("wfa", len), &len, |bench, _| {
            let al = WfaAligner::new(Penalties::from_scheme(&scheme));
            bench.iter(|| black_box(al.penalty(&a, &b).unwrap()));
        });
    }
    group.finish();

    // The exact DP only at a modest size (quadratic).
    let mut group = c.benchmark_group("exact_dp");
    group.sample_size(10);
    let (a, b) = pair(1_000, 7);
    group.throughput(Throughput::Elements((a.len() * b.len()) as u64));
    group.bench_function("full_gotoh_score", |bench| {
        let al = FullAligner::affine(scheme);
        bench.iter(|| black_box(al.score(&a, &b)));
    });
    group.finish();

    // Traceback cost on top of scoring.
    let mut group = c.benchmark_group("traceback");
    group.sample_size(10);
    let (a, b) = pair(2_000, 9);
    group.bench_function("adaptive_score_only", |bench| {
        let al = AdaptiveAligner::new(scheme, band);
        bench.iter(|| black_box(al.score(&a, &b).unwrap()));
    });
    group.bench_function("adaptive_with_cigar", |bench| {
        let al = AdaptiveAligner::new(scheme, band);
        bench.iter(|| black_box(al.align(&a, &b).unwrap().score));
    });
    group.finish();
}

criterion_group!(benches, bench_aligners);
criterion_main!(benches);
