//! Microbenchmarks of the alignment kernels themselves: cells per second of
//! the exact, static banded (KSW2-style) and adaptive banded aligners — the
//! per-cell costs behind Tables 2–6.

use bench::harness::Harness;
use cpu_baseline::Ksw2Aligner;
use datasets::mutate::{mutate, ErrorModel};
use datasets::{random_seq, rng};
use nw_core::adaptive::AdaptiveAligner;
use nw_core::banded::BandedAligner;
use nw_core::full::FullAligner;
use nw_core::seq::DnaSeq;
use nw_core::wfa::{Penalties, WfaAligner};
use nw_core::ScoringScheme;

fn pair(len: usize, seed: u64) -> (DnaSeq, DnaSeq) {
    let mut r = rng(seed);
    let a = random_seq(&mut r, len);
    let (b, _) = mutate(&a, &ErrorModel::uniform(0.02), &mut r);
    (a, b)
}

fn main() {
    let mut h = Harness::from_env();
    let scheme = ScoringScheme::default();
    let band = 128usize;

    let mut group = h.group("score_per_cell");
    for len in [1_000usize, 4_000] {
        let (a, b) = pair(len, 42);
        let banded_cells = BandedAligner::new(scheme, band)
            .score(&a, &b)
            .map(|_| ((a.len() + b.len()) / 2) as u64 * (band as u64 + 1))
            .unwrap_or(0);
        group.throughput_elements(banded_cells);
        let al = BandedAligner::new(scheme, band);
        group.bench(&format!("static_banded/{len}"), || {
            al.score(&a, &b).unwrap()
        });
        let al = Ksw2Aligner::new(scheme, band);
        group.bench(&format!("ksw2_profile/{len}"), || al.score(&a, &b).unwrap());
        let al = AdaptiveAligner::new(scheme, band);
        group.bench(&format!("adaptive/{len}"), || al.score(&a, &b).unwrap());
        let al = WfaAligner::new(Penalties::from_scheme(&scheme));
        group.bench(&format!("wfa/{len}"), || al.penalty(&a, &b).unwrap());
    }

    // The exact DP only at a modest size (quadratic).
    let mut group = h.group("exact_dp");
    let (a, b) = pair(1_000, 7);
    group.throughput_elements((a.len() * b.len()) as u64);
    let al = FullAligner::affine(scheme);
    group.bench("full_gotoh_score", || al.score(&a, &b));

    // Traceback cost on top of scoring.
    let mut group = h.group("traceback");
    let (a, b) = pair(2_000, 9);
    let al = AdaptiveAligner::new(scheme, band);
    group.bench("adaptive_score_only", || al.score(&a, &b).unwrap());
    group.bench("adaptive_with_cigar", || al.align(&a, &b).unwrap().score);
}
