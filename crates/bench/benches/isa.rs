//! Benchmarks of the mini DPU ISA interpreter: how fast the Table 7
//! instruction-count measurements run, and the relative cost of the two
//! inner-loop variants in interpreted instructions.

use bench::harness::Harness;
use dpu_kernel::isa_loops::{measure, program};
use dpu_kernel::KernelVariant;
use pim_sim::isa::{assemble, Machine};

fn main() {
    let mut h = Harness::from_env();

    // Raw interpreter throughput on a tight counted loop.
    let countdown = assemble(
        "
        move r1, 100000
        loop:
          sub r1, r1, 1, jnz loop
        halt
        ",
    )
    .unwrap();
    let mut group = h.group("interpreter");
    group.throughput_elements(100_002);
    group.bench("fused_countdown_100k", || {
        let mut m = Machine::new();
        m.run(&countdown, &mut [], 1_000_000).unwrap().instructions
    });

    // The Table 7 inner loops, end to end (assemble + run + divide).
    let mut group = h.group("table7_measurement");
    for variant in [KernelVariant::PureC, KernelVariant::Asm] {
        for with_bt in [false, true] {
            group.bench(&format!("measure/{variant:?}_bt{with_bt}"), || {
                measure(variant, with_bt).instr_per_cell
            });
        }
    }

    // Program sizes (static property, bench the assembler).
    let mut group = h.group("assembler");
    group.bench("assemble_inner_loops", || {
        let mut total = 0usize;
        for v in [KernelVariant::PureC, KernelVariant::Asm] {
            for bt in [false, true] {
                total += program(v, bt).len();
            }
        }
        total
    });
}
