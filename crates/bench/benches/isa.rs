//! Criterion benchmarks of the mini DPU ISA interpreter: how fast the
//! Table 7 instruction-count measurements run, and the relative cost of the
//! two inner-loop variants in interpreted instructions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpu_kernel::isa_loops::{measure, program};
use dpu_kernel::KernelVariant;
use pim_sim::isa::{assemble, Machine};
use std::hint::black_box;

fn bench_isa(c: &mut Criterion) {
    // Raw interpreter throughput on a tight counted loop.
    let countdown = assemble(
        "
        move r1, 100000
        loop:
          sub r1, r1, 1, jnz loop
        halt
        ",
    )
    .unwrap();
    let mut group = c.benchmark_group("interpreter");
    group.throughput(Throughput::Elements(100_002));
    group.bench_function("fused_countdown_100k", |bench| {
        bench.iter(|| {
            let mut m = Machine::new();
            black_box(m.run(&countdown, &mut [], 1_000_000).unwrap().instructions)
        });
    });
    group.finish();

    // The Table 7 inner loops, end to end (assemble + run + divide).
    let mut group = c.benchmark_group("table7_measurement");
    group.sample_size(20);
    for variant in [KernelVariant::PureC, KernelVariant::Asm] {
        for with_bt in [false, true] {
            let label = format!("{variant:?}_bt{with_bt}");
            group.bench_with_input(BenchmarkId::new("measure", label), &(variant, with_bt), |bench, &(v, bt)| {
                bench.iter(|| black_box(measure(v, bt).instr_per_cell));
            });
        }
    }
    group.finish();

    // Program sizes (static property, bench the assembler).
    let mut group = c.benchmark_group("assembler");
    group.bench_function("assemble_inner_loops", |bench| {
        bench.iter(|| {
            let mut total = 0usize;
            for v in [KernelVariant::PureC, KernelVariant::Asm] {
                for bt in [false, true] {
                    total += program(v, bt).len();
                }
            }
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_isa);
criterion_main!(benches);
